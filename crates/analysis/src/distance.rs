//! Distance statistics over a topology's deterministic routes.

use exaflow_netgraph::NodeId;
use exaflow_topo::Topology;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Average distance, diameter and hop histogram under uniform traffic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistanceStats {
    /// Mean hops over the measured ordered pairs, `src != dst`.
    pub average: f64,
    /// Maximum hops observed.
    pub diameter: u32,
    /// `histogram[d]` = number of measured ordered pairs at distance `d`.
    pub histogram: Vec<u64>,
    /// Number of source endpoints measured.
    pub sources_measured: usize,
    /// Whether every endpoint served as a source (exact statistics).
    pub exact: bool,
    /// Standard error of `average` across per-source means; only present
    /// for stratified sampled estimates (see `distance_estimate`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stderr: Option<f64>,
    /// Half-width of the 95% confidence interval, `1.96 · stderr`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub confidence_95: Option<f64>,
}

impl DistanceStats {
    pub(crate) fn from_histogram(mut histogram: Vec<u64>, sources: usize, exact: bool) -> Self {
        let mut total_pairs = 0u64;
        let mut total_hops = 0u64;
        let mut diameter = 0u32;
        for (d, &count) in histogram.iter().enumerate() {
            if count > 0 {
                total_pairs += count;
                total_hops += d as u64 * count;
                diameter = d as u32;
            }
        }
        // Histograms arrive pre-sized to the topology's diameter *bound*;
        // drop the slack above the observed diameter so the shape matches
        // the historical grow-on-demand layout: `len == diameter + 1`, or
        // empty when nothing was measured.
        histogram.truncate(if total_pairs == 0 {
            0
        } else {
            diameter as usize + 1
        });
        DistanceStats {
            average: if total_pairs == 0 {
                0.0
            } else {
                total_hops as f64 / total_pairs as f64
            },
            diameter,
            histogram,
            sources_measured: sources,
            exact,
            stderr: None,
            confidence_95: None,
        }
    }
}

/// Tally `src → d` route distances for every destination endpoint into a
/// histogram pre-sized to `diameter_bound() + 1` (no growth in the hot
/// loop), returning the total hops contributed by this source.
pub(crate) fn accumulate(topo: &dyn Topology, src: NodeId, histogram: &mut [u64]) -> u64 {
    let e = topo.num_endpoints() as u32;
    let mut hops = 0u64;
    for d in 0..e {
        if d == src.0 {
            continue;
        }
        let dist = topo.distance(src, NodeId(d));
        histogram[dist as usize] += 1;
        hops += dist as u64;
    }
    hops
}

/// A zeroed histogram sized so that [`accumulate`] can never index out of
/// bounds: one slot per distance in `0..=diameter_bound()`.
pub(crate) fn sized_histogram(topo: &dyn Topology) -> Vec<u64> {
    vec![0u64; topo.diameter_bound() as usize + 1]
}

/// Exact statistics over all ordered endpoint pairs (`O(E²)` distance
/// evaluations).
pub fn distance_stats_exact(topo: &dyn Topology) -> DistanceStats {
    let e = topo.num_endpoints();
    let mut histogram = sized_histogram(topo);
    for s in 0..e as u32 {
        accumulate(topo, NodeId(s), &mut histogram);
    }
    DistanceStats::from_histogram(histogram, e, true)
}

/// Statistics from `samples` random source endpoints (deterministic in
/// `seed`) plus `must_include` sources, against all destinations.
///
/// Falls back to the exact computation when the sample would cover all
/// endpoints anyway.
pub fn distance_survey(
    topo: &dyn Topology,
    samples: usize,
    seed: u64,
    must_include: &[NodeId],
) -> DistanceStats {
    let e = topo.num_endpoints();
    if samples + must_include.len() >= e {
        return distance_stats_exact(topo);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sources: Vec<u32> = must_include.iter().map(|n| n.0).collect();
    // Partial Fisher-Yates over the endpoint range for distinct samples.
    let mut pool: Vec<u32> = (0..e as u32).collect();
    pool.shuffle(&mut rng);
    for &cand in pool.iter() {
        if sources.len() >= samples + must_include.len() {
            break;
        }
        if !must_include.iter().any(|m| m.0 == cand) {
            sources.push(cand);
        }
    }
    let mut histogram = sized_histogram(topo);
    for &s in &sources {
        accumulate(topo, NodeId(s), &mut histogram);
    }
    DistanceStats::from_histogram(histogram, sources.len(), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaflow_netgraph::bfs_distances_physical;
    use exaflow_topo::{
        ConnectionRule, GeneralizedHypercube, KAryTree, Nested, Torus, UpperTierKind,
    };

    #[test]
    fn exact_matches_torus_closed_forms() {
        let t = Torus::new(&[4, 4, 4]);
        let s = distance_stats_exact(&t);
        assert_eq!(s.diameter, t.diameter());
        assert!((s.average - t.average_distance()).abs() < 1e-9);
        assert!(s.exact);
        // Histogram covers all ordered pairs.
        let pairs: u64 = s.histogram.iter().sum();
        assert_eq!(pairs, 64 * 63);
    }

    #[test]
    fn exact_matches_tree_closed_forms() {
        let t = KAryTree::new(4, 2);
        let s = distance_stats_exact(&t);
        assert_eq!(s.diameter, t.diameter());
        assert!((s.average - t.average_distance()).abs() < 1e-9);
    }

    #[test]
    fn exact_matches_ghc_closed_forms() {
        let g = GeneralizedHypercube::new(&[3, 4], 2);
        let s = distance_stats_exact(&g);
        assert_eq!(s.diameter, g.diameter());
        assert!((s.average - g.average_distance()).abs() < 1e-9);
    }

    #[test]
    fn survey_with_full_coverage_is_exact() {
        let t = Torus::new(&[4, 4]);
        let s = distance_survey(&t, 1000, 1, &[]);
        assert!(s.exact);
        assert_eq!(s.diameter, 4);
    }

    #[test]
    fn survey_sampling_close_to_exact() {
        let n = Nested::new(UpperTierKind::Fattree, 16, 2, ConnectionRule::QuarterNodes);
        let exact = distance_stats_exact(&n);
        let survey = distance_survey(&n, 32, 7, &[NodeId(0)]);
        assert!(!survey.exact);
        assert_eq!(survey.sources_measured, 33);
        assert!((survey.average - exact.average).abs() / exact.average < 0.05);
        assert!(survey.diameter <= exact.diameter);
        assert!(survey.diameter as f64 >= exact.diameter as f64 * 0.8);
    }

    #[test]
    fn distances_agree_with_bfs_on_hybrid() {
        // The hybrid's analytic distance equals its actual route length,
        // which check_route already guarantees; here we additionally verify
        // the route is within one hop-class of the BFS shortest path (the
        // hybrid routing is not always globally minimal because intra-torus
        // traffic must stay local, but from uplinked nodes it should match).
        let n = Nested::new(
            UpperTierKind::GeneralizedHypercube,
            8,
            2,
            ConnectionRule::EveryNode,
        );
        let bfs = bfs_distances_physical(n.network(), NodeId(0));
        for d in 0..n.num_endpoints() as u32 {
            let analytic = n.distance(NodeId(0), NodeId(d));
            assert!(analytic >= bfs[d as usize], "route shorter than BFS?!");
        }
    }

    #[test]
    fn empty_histogram_average_zero() {
        let s = DistanceStats::from_histogram(vec![], 0, true);
        assert_eq!(s.average, 0.0);
        assert_eq!(s.diameter, 0);
    }

    #[test]
    fn histogram_length_is_diameter_plus_one() {
        // The histogram is pre-sized to the diameter *bound* (which for
        // the nested hybrids overestimates: not every pair takes the worst
        // DOR leg on both sides), so the constructor must trim the slack
        // back to exactly `diameter + 1`.
        use exaflow_topo::Topology;
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Torus::new(&[4, 4, 2])),
            Box::new(KAryTree::with_endpoints(4, 2, 9)),
            Box::new(Nested::new(
                UpperTierKind::GeneralizedHypercube,
                8,
                2,
                ConnectionRule::QuarterNodes,
            )),
        ];
        for topo in &topos {
            let s = distance_stats_exact(topo.as_ref());
            assert_eq!(
                s.histogram.len(),
                s.diameter as usize + 1,
                "{}",
                topo.name()
            );
            assert!(s.diameter <= topo.diameter_bound(), "{}", topo.name());
        }
        // Pre-sized zero histograms from sourceless runs trim to empty.
        let s = DistanceStats::from_histogram(vec![0; 8], 0, true);
        assert!(s.histogram.is_empty());
    }
}
