//! Static topology analysis: distance distributions, average distance and
//! diameter (the paper's Table 1), computed from each topology's analytic
//! `distance` function.
//!
//! Two modes are provided:
//!
//! * [`distance_stats_exact`] — every ordered endpoint pair; O(E²), for
//!   small instances and ground-truthing.
//! * [`channel_load_survey`] — per-link load under uniform random traffic
//!   and the saturation-throughput estimate it implies.
//! * [`distance_survey`] — a set of source endpoints (sampled uniformly at
//!   random, plus caller-supplied must-include sources) against **all**
//!   destinations. For vertex-transitive topologies this is exact with any
//!   single source; for the hybrids at full scale (131 072 endpoints) a few
//!   hundred sampled sources estimate the average to well under 0.1% and
//!   reliably find the diameter, since worst-case pairs are abundant.
//! * [`distance_sweep`] / [`distance_estimate`] — the paper-scale engine:
//!   a `WorkerPool`-parallel all-sources sweep that is bit-identical to
//!   [`distance_stats_exact`] at any thread count, and a stratified
//!   deterministic source-sampling estimator that reports a standard error
//!   and 95% confidence half-width alongside the point estimate.
//! * [`physical_distance_sweep`] — the same harness over the frontier-
//!   bitset BFS kernel, measuring physical shortest-path distances (a
//!   lower bound certifying routing minimality where it matches).

pub mod distance;
pub mod load;
pub mod sweep;

pub use distance::{distance_stats_exact, distance_survey, DistanceStats};
pub use load::{channel_load_survey, LoadStats};
pub use sweep::{distance_estimate, distance_sweep, physical_distance_sweep, stratified_sources};
