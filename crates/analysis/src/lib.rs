//! Static topology analysis: distance distributions, average distance and
//! diameter (the paper's Table 1), computed from each topology's analytic
//! `distance` function.
//!
//! Two modes are provided:
//!
//! * [`distance_stats_exact`] — every ordered endpoint pair; O(E²), for
//!   small instances and ground-truthing.
//! * [`channel_load_survey`] — per-link load under uniform random traffic
//!   and the saturation-throughput estimate it implies.
//! * [`distance_survey`] — a set of source endpoints (sampled uniformly at
//!   random, plus caller-supplied must-include sources) against **all**
//!   destinations. For vertex-transitive topologies this is exact with any
//!   single source; for the hybrids at full scale (131 072 endpoints) a few
//!   hundred sampled sources estimate the average to well under 0.1% and
//!   reliably find the diameter, since worst-case pairs are abundant.

pub mod distance;
pub mod load;

pub use distance::{distance_stats_exact, distance_survey, DistanceStats};
pub use load::{channel_load_survey, LoadStats};
