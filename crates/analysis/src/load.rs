//! Channel-load analysis under uniform traffic.
//!
//! A classic static estimator of network throughput: route a large sample
//! of uniformly random endpoint pairs, count how many routes cross every
//! physical link, and normalise by the per-endpoint injection share. The
//! busiest channel's load bounds the saturation throughput — with
//! deterministic routing, a network accepting per-endpoint load `λ`
//! saturates when `λ · max_load = 1`, so `1 / max_load` (in normalised
//! units) estimates the fraction of line rate every endpoint can sustain
//! under uniform traffic.

use exaflow_netgraph::NodeId;
use exaflow_topo::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Channel-load statistics under uniform random traffic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadStats {
    /// Mean link load, in flows-per-link normalised so that each sampled
    /// pair contributes 1/pairs-per-endpoint.
    pub mean_load: f64,
    /// Maximum link load (same normalisation).
    pub max_load: f64,
    /// Index of the busiest link.
    pub hottest_link: usize,
    /// Estimated saturation throughput as a fraction of endpoint line rate:
    /// `mean path contribution / max_load` — 1.0 means perfectly balanced,
    /// non-blocking behaviour under uniform traffic.
    pub saturation_fraction: f64,
    /// Number of sampled pairs.
    pub pairs_sampled: u64,
}

/// Sample `pairs` uniformly random ordered endpoint pairs (src ≠ dst),
/// route each, and accumulate per-link crossing counts.
///
/// The load normalisation is flows-per-endpoint: a link's load is
/// `crossings / (pairs / endpoints)`, i.e. how many endpoints' worth of
/// uniform traffic the link carries. An ideal non-blocking network has
/// `max_load ≈ 1`; a torus has `max_load ≈ average distance / links per
/// node` — growing with scale, which is exactly the effect behind the
/// paper's heavy-workload results.
pub fn channel_load_survey(topo: &dyn Topology, pairs: u64, seed: u64) -> LoadStats {
    let e = topo.num_endpoints() as u64;
    assert!(e >= 2, "need at least two endpoints");
    assert!(pairs >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut crossings = vec![0u64; topo.network().num_links()];
    let mut path = Vec::with_capacity(64);
    for _ in 0..pairs {
        let src = rng.random_range(0..e) as u32;
        let mut dst = rng.random_range(0..e - 1) as u32;
        if dst >= src {
            dst += 1;
        }
        path.clear();
        topo.route(NodeId(src), NodeId(dst), &mut path);
        for l in &path {
            crossings[l.index()] += 1;
        }
    }
    let per_endpoint = pairs as f64 / e as f64;
    let used: Vec<(usize, u64)> = crossings
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect();
    let (hottest_link, max_crossings) = used
        .iter()
        .max_by_key(|&&(_, c)| c)
        .copied()
        .unwrap_or((0, 0));
    let mean = if used.is_empty() {
        0.0
    } else {
        used.iter().map(|&(_, c)| c as f64).sum::<f64>() / used.len() as f64
    };
    let max_load = max_crossings as f64 / per_endpoint;
    LoadStats {
        mean_load: mean / per_endpoint,
        max_load,
        hottest_link,
        saturation_fraction: if max_load > 0.0 { 1.0 / max_load } else { 1.0 },
        pairs_sampled: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaflow_topo::{ConnectionRule, KAryTree, Nested, Torus, UpperTierKind};

    #[test]
    fn fattree_near_nonblocking() {
        let t = KAryTree::new(4, 3);
        let s = channel_load_survey(&t, 200_000, 1);
        // d-mod-k on a full fattree balances uniform traffic: the busiest
        // link carries close to one endpoint's worth.
        assert!(s.max_load < 1.7, "{s:?}");
        assert!(s.saturation_fraction > 0.55, "{s:?}");
    }

    #[test]
    fn torus_load_grows_with_scale() {
        let small = channel_load_survey(&Torus::new(&[4, 4, 4]), 100_000, 2);
        let large = channel_load_survey(&Torus::new(&[8, 8, 8]), 100_000, 2);
        assert!(
            large.max_load > small.max_load * 1.5,
            "{} -> {}",
            small.max_load,
            large.max_load
        );
        assert!(large.saturation_fraction < small.saturation_fraction);
    }

    #[test]
    fn sparse_uplinks_concentrate_load() {
        let dense = Nested::new(UpperTierKind::Fattree, 32, 2, ConnectionRule::EveryNode);
        let sparse = Nested::new(UpperTierKind::Fattree, 32, 2, ConnectionRule::EighthNodes);
        let d = channel_load_survey(&dense, 100_000, 3);
        let s = channel_load_survey(&sparse, 100_000, 3);
        // With one uplink per 8 QFDBs, ~7/8 of remote traffic funnels over
        // each uplink: max load must be several times the dense case.
        assert!(
            s.max_load > 2.0 * d.max_load,
            "{} vs {}",
            d.max_load,
            s.max_load
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let t = Torus::new(&[4, 4]);
        let a = channel_load_survey(&t, 10_000, 7);
        let b = channel_load_survey(&t, 10_000, 7);
        assert_eq!(a, b);
        let c = channel_load_survey(&t, 10_000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn counts_scale_with_pairs() {
        let t = Torus::new(&[4, 4]);
        let a = channel_load_survey(&t, 5_000, 1);
        let b = channel_load_survey(&t, 50_000, 1);
        // Normalised loads are sample-size independent (within noise).
        assert!((a.max_load - b.max_load).abs() / b.max_load < 0.25);
    }
}
