//! Parallel distance sweeps and stratified sampled estimators.
//!
//! This module is the paper-scale engine behind Table 1: where
//! [`distance_stats_exact`](crate::distance_stats_exact) walks every
//! ordered pair from a single thread, [`distance_sweep`] partitions the
//! source endpoints into deterministic contiguous chunks across a
//! [`WorkerPool`] and merges per-worker histograms in fixed worker order.
//! Because the histograms hold `u64` counts, the merged result is
//! **bit-identical** to the sequential path at any thread count.
//!
//! For systems where even a parallel all-sources sweep is too expensive
//! (131,072 QFDBs means 1.7·10¹⁰ ordered pairs), [`distance_estimate`]
//! measures a stratified deterministic sample of sources: the endpoint
//! range is split into `samples` equal strata and one source per stratum
//! is picked by a SplitMix64 stream seeded from the caller's seed. Every
//! source still scans *all* destinations, so each per-source mean is an
//! unbiased estimate of the population mean and the spread between them
//! yields a standard error ([`DistanceStats::stderr`]) and a 95%
//! confidence half-width ([`DistanceStats::confidence_95`]).
//!
//! [`physical_distance_sweep`] applies the same parallel harness to the
//! frontier-bitset BFS kernel ([`exaflow_netgraph::PhysCsr`]), measuring
//! *physical shortest-path* distances instead of deterministic-route
//! distances — the gap between the two is the routing-minimality cost of
//! a topology's routing rule (zero for torus/fattree/GHC, nonzero for the
//! nested hybrids whose intra-subtorus traffic must stay local).

use crate::distance::{accumulate, sized_histogram, DistanceStats};
use exaflow_netgraph::{BfsScratch, NodeId, PhysCsr};
use exaflow_sim::WorkerPool;
use exaflow_topo::Topology;
use std::sync::Mutex;

/// Per-worker partial result, handed back through a dedicated slot.
struct WorkerOut {
    histogram: Vec<u64>,
    /// Total hops per source in this worker's chunk, in chunk order.
    source_hops: Vec<u64>,
}

/// Contiguous chunk `[start, end)` of `len` items owned by worker `w` of
/// `workers`; the first `len % workers` chunks take one extra item.
fn chunk_bounds(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let per = len / workers;
    let rem = len % workers;
    let start = w * per + w.min(rem);
    (start, start + per + usize::from(w < rem))
}

/// Run `per_source` over a static partition of `sources` on `threads`
/// threads and merge the per-worker histograms in fixed worker order.
/// Returns the merged histogram plus per-source hop totals in `sources`
/// order.
fn parallel_tally<F>(
    sources: &[u32],
    threads: usize,
    histogram_len: usize,
    per_source: F,
) -> (Vec<u64>, Vec<u64>)
where
    F: Fn(usize, u32, &mut [u64]) -> u64 + Sync,
{
    let workers = threads.max(1).min(sources.len().max(1));
    let pool = WorkerPool::new(workers);
    let slots: Vec<Mutex<Option<WorkerOut>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    pool.run(|w| {
        let (lo, hi) = chunk_bounds(sources.len(), workers, w);
        let mut histogram = vec![0u64; histogram_len];
        let mut source_hops = Vec::with_capacity(hi - lo);
        for &s in &sources[lo..hi] {
            source_hops.push(per_source(w, s, &mut histogram));
        }
        *slots[w].lock().unwrap() = Some(WorkerOut {
            histogram,
            source_hops,
        });
    });
    let mut histogram = vec![0u64; histogram_len];
    let mut hops = Vec::with_capacity(sources.len());
    for slot in &slots {
        let out = slot
            .lock()
            .unwrap()
            .take()
            .expect("every pool worker fills its slot exactly once");
        for (acc, v) in histogram.iter_mut().zip(&out.histogram) {
            *acc += v;
        }
        hops.extend(out.source_hops);
    }
    (histogram, hops)
}

/// Exact all-sources distance statistics computed on `threads` threads.
///
/// Bit-identical to [`distance_stats_exact`](crate::distance_stats_exact)
/// at every thread count: sources are partitioned statically, histogram
/// counts are integers, and per-worker histograms merge in fixed order, so
/// neither scheduling nor summation order can perturb the result.
pub fn distance_sweep(topo: &dyn Topology, threads: usize) -> DistanceStats {
    let e = topo.num_endpoints();
    let sources: Vec<u32> = (0..e as u32).collect();
    let len = sized_histogram(topo).len();
    let (histogram, _) = parallel_tally(&sources, threads, len, |_, s, hist| {
        accumulate(topo, NodeId(s), hist)
    });
    DistanceStats::from_histogram(histogram, e, true)
}

/// Stratified deterministic source sample: the endpoint range is split
/// into `samples` equal strata and one source per stratum is chosen by a
/// SplitMix64 stream over `seed`. Requires `samples < endpoints`; sources
/// are distinct by construction (strata are disjoint) and reproducible
/// for a given `(endpoints, samples, seed)`.
pub fn stratified_sources(endpoints: usize, samples: usize, seed: u64) -> Vec<u32> {
    assert!(
        samples < endpoints,
        "stratified sample of {samples} needs fewer sources than {endpoints} endpoints"
    );
    let n = samples.max(1);
    (0..n)
        .map(|i| {
            let lo = i * endpoints / n;
            let hi = (i + 1) * endpoints / n;
            let off = splitmix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            (lo as u64 + off % (hi - lo) as u64) as u32
        })
        .collect()
}

/// Sampled distance statistics with error bounds, computed on `threads`
/// threads.
///
/// When the sample would cover every endpoint this delegates to
/// [`distance_sweep`], so `sources = all` is bit-identical to the exact
/// path (`exact: true`, no error bounds). Otherwise it measures a
/// [`stratified_sources`] sample against all destinations and reports the
/// spread of the per-source means as [`DistanceStats::stderr`] /
/// [`DistanceStats::confidence_95`]. The stderr uses the iid sample
/// formula, which *over*states the error of a stratified sample — the
/// reported interval is conservative.
pub fn distance_estimate(
    topo: &dyn Topology,
    samples: usize,
    seed: u64,
    threads: usize,
) -> DistanceStats {
    let e = topo.num_endpoints();
    if samples >= e {
        return distance_sweep(topo, threads);
    }
    let sources = stratified_sources(e, samples, seed);
    let len = sized_histogram(topo).len();
    let (histogram, hops) = parallel_tally(&sources, threads, len, |_, s, hist| {
        accumulate(topo, NodeId(s), hist)
    });
    let mut stats = DistanceStats::from_histogram(histogram, sources.len(), false);
    if sources.len() >= 2 && e >= 2 {
        let dests = (e - 1) as f64;
        let means: Vec<f64> = hops.iter().map(|&h| h as f64 / dests).collect();
        let n = means.len() as f64;
        let mean = means.iter().sum::<f64>() / n;
        let var = means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / (n - 1.0);
        let stderr = (var / n).sqrt();
        stats.stderr = Some(stderr);
        stats.confidence_95 = Some(1.96 * stderr);
    }
    stats
}

/// Physical shortest-path statistics over `sources`, computed with the
/// allocation-free frontier-bitset BFS kernel on `threads` threads. Each
/// worker owns one [`BfsScratch`] reused across its whole chunk; no per-
/// source allocation happens after warm-up.
///
/// The metric is graph distance over physical links, a lower bound on the
/// deterministic-route distance reported by [`distance_sweep`]; equality
/// certifies that the routing rule is minimal.
pub fn physical_distance_sweep(
    topo: &dyn Topology,
    sources: &[NodeId],
    threads: usize,
) -> DistanceStats {
    let csr = PhysCsr::new(topo.network());
    let len = sized_histogram(topo).len();
    let sources: Vec<u32> = sources.iter().map(|n| n.0).collect();
    let scratches: Vec<Mutex<BfsScratch>> = (0..threads.max(1))
        .map(|_| Mutex::new(BfsScratch::new(csr.num_nodes())))
        .collect();
    let (histogram, _) = parallel_tally(&sources, threads, len, |w, s, hist| {
        let mut scratch = scratches[w].lock().unwrap();
        scratch.endpoint_histogram(&csr, NodeId(s), hist)
    });
    let exact = sources.len() == topo.num_endpoints();
    DistanceStats::from_histogram(histogram, sources.len(), exact)
}

/// SplitMix64 mix function (Steele, Lea & Flood; public-domain constants).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance_stats_exact;
    use exaflow_topo::{ConnectionRule, KAryTree, Nested, Torus, UpperTierKind};

    #[test]
    fn sweep_matches_exact_at_every_thread_count() {
        let n = Nested::new(UpperTierKind::Fattree, 8, 2, ConnectionRule::QuarterNodes);
        let exact = distance_stats_exact(&n);
        for threads in [1, 2, 3, 8] {
            assert_eq!(distance_sweep(&n, threads), exact, "threads = {threads}");
        }
    }

    #[test]
    fn estimate_with_full_coverage_is_exact() {
        let t = Torus::new(&[4, 4]);
        let s = distance_estimate(&t, 1_000, 42, 2);
        assert_eq!(s, distance_stats_exact(&t));
        assert!(s.exact);
        assert!(s.stderr.is_none());
    }

    #[test]
    fn stratified_sources_are_distinct_in_range_and_deterministic() {
        let a = stratified_sources(1_000, 64, 0xABCD);
        let b = stratified_sources(1_000, 64, 0xABCD);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "strata are disjoint");
        assert!(a.iter().all(|&s| s < 1_000));
        assert_ne!(a, stratified_sources(1_000, 64, 0xABCE), "seed matters");
    }

    #[test]
    fn estimate_reports_error_bounds_on_a_partial_tree() {
        let t = KAryTree::with_endpoints(4, 3, 50);
        let exact = distance_stats_exact(&t);
        let est = distance_estimate(&t, 16, 7, 2);
        assert!(!est.exact);
        assert_eq!(est.sources_measured, 16);
        let conf = est.confidence_95.expect("sampled run reports a CI");
        assert!(conf >= 0.0);
        assert!(
            (est.average - exact.average).abs() <= conf.max(0.35),
            "estimate {} vs exact {} outside CI {conf}",
            est.average,
            exact.average
        );
    }

    #[test]
    fn torus_estimate_is_exact_by_symmetry() {
        // A torus is vertex-transitive: every source sees the same distance
        // multiset, so any source sample reproduces the exact mean with
        // zero variance.
        let t = Torus::new(&[6, 6, 2]);
        let exact = distance_stats_exact(&t);
        let est = distance_estimate(&t, 5, 99, 1);
        assert!((est.average - exact.average).abs() < 1e-12);
        // Not exactly zero: summing identical per-source means and dividing
        // back can round in the last ulp.
        assert!(est.stderr.unwrap() < 1e-12);
        assert_eq!(est.diameter, exact.diameter);
    }

    #[test]
    fn physical_sweep_matches_route_sweep_on_minimal_topologies() {
        // Torus DOR and fattree up/down routing are minimal, so physical
        // shortest-path statistics equal route statistics exactly.
        let all = |e: usize| (0..e as u32).map(NodeId).collect::<Vec<_>>();
        let t = Torus::new(&[4, 4, 2]);
        let p = physical_distance_sweep(&t, &all(t.num_endpoints()), 2);
        assert_eq!(p, distance_stats_exact(&t));
        let f = KAryTree::new(4, 2);
        let p = physical_distance_sweep(&f, &all(f.num_endpoints()), 3);
        assert_eq!(p, distance_stats_exact(&f));
    }

    #[test]
    fn physical_sweep_lower_bounds_routes_on_hybrids() {
        let n = Nested::new(UpperTierKind::Fattree, 8, 2, ConnectionRule::EveryNode);
        let all: Vec<NodeId> = (0..n.num_endpoints() as u32).map(NodeId).collect();
        let phys = physical_distance_sweep(&n, &all, 2);
        let routed = distance_stats_exact(&n);
        assert!(phys.average <= routed.average + 1e-12);
        assert!(phys.diameter <= routed.diameter);
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for len in [0usize, 1, 7, 64, 100] {
            for workers in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for w in 0..workers {
                    let (lo, hi) = chunk_bounds(len, workers, w);
                    assert_eq!(lo, covered);
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
