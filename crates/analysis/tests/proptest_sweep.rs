//! Property tests for the paper-scale sweep layer: the sampled estimator
//! with full coverage must be *bit-identical* to the exact sequential
//! path, and stratified estimates on random topology instances must land
//! within the confidence interval they themselves report.

use exaflow_analysis::{distance_estimate, distance_stats_exact, distance_sweep};
use exaflow_topo::{GeneralizedHypercube, KAryTree, Topology, Torus};
use proptest::prelude::*;

fn torus_dims() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(2u32..6, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `sources = all` (any samples >= endpoints) delegates to the exact
    /// sweep: identical average, diameter, histogram, flags, and absent
    /// error bounds — at any thread count.
    #[test]
    fn full_coverage_estimate_is_bit_identical_to_exact(
        dims in torus_dims(),
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let t = Torus::new(&dims);
        let exact = distance_stats_exact(&t);
        let est = distance_estimate(&t, t.num_endpoints(), seed, threads);
        prop_assert_eq!(&est, &exact);
        prop_assert!(est.exact);
        prop_assert!(est.stderr.is_none() && est.confidence_95.is_none());
    }

    /// The parallel sweep is the exact path, bit for bit.
    #[test]
    fn parallel_sweep_is_bit_identical_to_exact(
        dims in torus_dims(),
        threads in 1usize..9,
    ) {
        let t = Torus::new(&dims);
        prop_assert_eq!(distance_sweep(&t, threads), distance_stats_exact(&t));
    }

    /// Stratified estimates on random tori: vertex-transitive, so any
    /// sample nails the exact mean and the reported CI contains it.
    #[test]
    fn torus_estimate_within_confidence_interval(
        dims in torus_dims(),
        seed in any::<u64>(),
    ) {
        let t = Torus::new(&dims);
        let e = t.num_endpoints();
        if e >= 8 {
            let exact = distance_stats_exact(&t);
            let est = distance_estimate(&t, (e / 2).max(2), seed, 2);
            let conf = est.confidence_95.expect("sampled run reports a CI");
            prop_assert!((est.average - exact.average).abs() <= conf + 1e-9);
        }
    }

    /// Stratified estimates on random partially-populated fattrees land
    /// within the reported CI (the iid stderr overstates stratified
    /// error, so the interval is conservative).
    #[test]
    fn fattree_estimate_within_confidence_interval(
        k in 2u32..5,
        n in 2u32..4,
        frac in 0.4f64..1.0,
        seed in any::<u64>(),
    ) {
        let max = (k as u64).pow(n) as usize;
        let eps = ((max as f64 * frac) as usize).clamp(2, max);
        let t = KAryTree::with_endpoints(k, n, eps);
        let e = t.num_endpoints();
        if e >= 8 {
            let exact = distance_stats_exact(&t);
            let est = distance_estimate(&t, (e / 2).max(4).min(e - 1), seed, 2);
            let conf = est.confidence_95.expect("sampled run reports a CI");
            // Allow a small absolute epsilon for near-degenerate samples.
            prop_assert!(
                (est.average - exact.average).abs() <= conf + 0.05,
                "estimate {} vs exact {} CI {}", est.average, exact.average, conf
            );
        }
    }

    /// Stratified estimates on random partially-populated GHCs.
    #[test]
    fn ghc_estimate_within_confidence_interval(
        a in 2u32..5,
        b in 2u32..5,
        ports in 1u32..3,
        frac in 0.4f64..1.0,
        seed in any::<u64>(),
    ) {
        let max = (a as u64 * b as u64 * ports as u64) as usize;
        let eps = ((max as f64 * frac) as usize).max(4);
        let g = GeneralizedHypercube::with_endpoints(&[a, b], ports, eps);
        let e = g.num_endpoints();
        if e >= 8 {
            let exact = distance_stats_exact(&g);
            let est = distance_estimate(&g, (e / 2).max(4).min(e - 1), seed, 2);
            let conf = est.confidence_95.expect("sampled run reports a CI");
            prop_assert!(
                (est.average - exact.average).abs() <= conf + 0.05,
                "estimate {} vs exact {} CI {}", est.average, exact.average, conf
            );
        }
    }
}
