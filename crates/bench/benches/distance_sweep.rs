//! Distance-analysis micro-benchmarks: the exact all-sources sweep, the
//! stratified sampled estimator, and the frontier-bitset BFS kernel, all at
//! the default simulation scale (2,048 QFDBs). The paper-scale wall-time
//! trajectory (2,048 / 16,384 / 131,072 QFDBs) lives in `BENCH_engine.json`
//! via `engine_snapshot` — the vendored criterion stub cannot write
//! machine-readable output.

use criterion::{criterion_group, criterion_main, Criterion};
use exaflow::netgraph::{BfsScratch, PhysCsr};
use exaflow::prelude::*;
use std::hint::black_box;

fn exact_sweep(c: &mut Criterion) {
    let scale = SystemScale::DEFAULT_SIM;
    let torus = scale.torus_spec().build().unwrap();
    let tree = scale.fattree_spec().build().unwrap();
    let mut group = c.benchmark_group("distance_sweep_exact_2048");
    group.bench_function("torus", |b| {
        b.iter(|| black_box(distance_sweep(torus.as_ref(), 1)).average)
    });
    group.bench_function("fattree", |b| {
        b.iter(|| black_box(distance_sweep(tree.as_ref(), 1)).average)
    });
    group.finish();
}

fn sampled_estimate(c: &mut Criterion) {
    let scale = SystemScale::DEFAULT_SIM;
    let torus = scale.torus_spec().build().unwrap();
    let seed = spec_seed(&scale.torus_spec());
    let mut group = c.benchmark_group("distance_estimate_2048_torus");
    for sources in [64usize, 256] {
        group.bench_function(&format!("{sources}src"), |b| {
            b.iter(|| black_box(distance_estimate(torus.as_ref(), sources, seed, 1)).average)
        });
    }
    group.finish();
}

fn bfs_kernel(c: &mut Criterion) {
    let scale = SystemScale::DEFAULT_SIM;
    let torus = scale.torus_spec().build().unwrap();
    let csr = PhysCsr::new(torus.network());
    let mut scratch = BfsScratch::new(csr.num_nodes());
    let mut histogram = vec![0u64; torus.diameter_bound() as usize + 1];
    c.bench_function("bfs_endpoint_histogram_2048_torus", |b| {
        b.iter(|| {
            histogram.iter_mut().for_each(|h| *h = 0);
            black_box(scratch.endpoint_histogram(&csr, NodeId(0), &mut histogram))
        })
    });
    let seed = spec_seed(&scale.torus_spec());
    let sources: Vec<NodeId> = stratified_sources(torus.num_endpoints(), 64, seed)
        .into_iter()
        .map(NodeId)
        .collect();
    c.bench_function("physical_sweep_64src_2048_torus", |b| {
        b.iter(|| black_box(physical_distance_sweep(torus.as_ref(), &sources, 1)).average)
    });
}

criterion_group!(benches, exact_sweep, sampled_estimate, bfs_kernel);
criterion_main!(benches);
