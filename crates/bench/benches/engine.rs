//! Engine micro-benchmarks and ablations.
//!
//! * `maxmin_solve` — progressive-filling cost vs active-flow count.
//! * `sim_allreduce` — end-to-end simulation throughput on a symmetric
//!   collective (the best case for completion batching).
//! * `batching_ablation` — DESIGN.md §6: exact batching (eps 1e-9) vs no
//!   batching (eps 0) vs loose batching (eps 1e-3) on a symmetric workload;
//!   justifies the default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaflow::prelude::*;
use std::hint::black_box;

fn maxmin_solve(c: &mut Criterion) {
    use exaflow::sim::maxmin::MaxMinSolver;
    let mut group = c.benchmark_group("maxmin_solve");
    for &flows in &[100usize, 1000, 10_000] {
        // Synthetic incidence: each flow crosses 12 of 4096 resources.
        let paths: Vec<Vec<u32>> = (0..flows)
            .map(|f| {
                (0..12)
                    .map(|h| ((f * 37 + h * 211) % 4096) as u32)
                    .collect()
            })
            .collect();
        let mut solver = MaxMinSolver::new(vec![10e9; 4096]).unwrap();
        let mut rates = vec![0.0; flows];
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, _| {
            b.iter(|| {
                solver.solve(black_box(&paths), &mut rates);
                black_box(rates[0])
            })
        });
    }
    group.finish();
}

fn sim_allreduce(c: &mut Criterion) {
    let topo = KAryTree::new(8, 3); // 512 endpoints
    let w = WorkloadSpec::AllReduce {
        tasks: 512,
        bytes: 1 << 20,
    };
    let mapping = TaskMapping::linear(512, 512);
    let dag = w.generate(&mapping);
    c.bench_function("sim_allreduce_512", |b| {
        b.iter(|| {
            let sim = Simulator::new(&topo);
            black_box(sim.run(black_box(&dag)).unwrap().makespan_seconds)
        })
    });
}

fn batching_ablation(c: &mut Criterion) {
    let topo = KAryTree::new(8, 3);
    let w = WorkloadSpec::NearNeighbors {
        gx: 8,
        gy: 8,
        gz: 8,
        bytes: 1 << 20,
        iterations: 1,
        periodic: true,
    };
    let mapping = TaskMapping::linear(512, 512);
    let dag = w.generate(&mapping);
    let mut group = c.benchmark_group("batching_ablation");
    for (label, eps) in [("exact_1e-9", 1e-9), ("none_0", 0.0), ("loose_1e-3", 1e-3)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig {
                    batch_epsilon: eps,
                    ..SimConfig::default()
                };
                let sim = Simulator::with_config(&topo, cfg);
                black_box(sim.run(black_box(&dag)).unwrap().events)
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = maxmin_solve, sim_allreduce, batching_ablation
);
criterion_main!(benches);
