//! Fault-path micro-benchmarks: the `FaultOverlay` hot paths the engine
//! hits on every mid-run fault — rerouting around a failed link (cache
//! miss vs memoised hit) and the fail/restore transition itself with a
//! warm reroute cache to invalidate.

use criterion::{criterion_group, criterion_main, Criterion};
use exaflow::prelude::*;
use exaflow::topo::FaultOverlay;
use std::hint::black_box;

/// One failed cable on each topology family; route pseudo-random pairs
/// through the overlay. Most pairs keep the deterministic route (the
/// common case), pairs crossing the cut take the BFS fallback.
fn overlay_route(c: &mut Criterion) {
    let torus = Torus::new(&[16, 16, 8]);
    let tree = KAryTree::new(13, 3);
    let topos: Vec<(&str, &dyn Topology)> = vec![("torus", &torus), ("fattree", &tree)];
    let mut group = c.benchmark_group("fault_overlay_route");
    for (name, topo) in topos {
        let n = topo.num_endpoints() as u32;
        let mut overlay = FaultOverlay::new(topo);
        // Fail the first physical cable so some routes must detour.
        let net = topo.network();
        let lid = (0..net.num_links() as u32)
            .map(LinkId)
            .find(|&l| !net.link(l).is_virtual)
            .unwrap();
        overlay.fail_link(lid);
        let mut path = Vec::with_capacity(64);
        let mut i = 0u32;
        group.bench_function(name, |b| {
            b.iter(|| {
                i = i.wrapping_mul(1664525).wrapping_add(1013904223);
                let s = i % n;
                let d = (i >> 16) % n;
                path.clear();
                overlay
                    .try_route(NodeId(s), NodeId(d), &mut path)
                    .expect("reachable");
                black_box(path.len())
            })
        });
    }
    group.finish();
}

/// The detour cache hit: the same affected pair routed repeatedly under a
/// stable failure set, the pattern the engine produces between faults.
fn overlay_cached_detour(c: &mut Criterion) {
    let topo = Torus::new(&[16, 16, 8]);
    let healthy = topo.route_vec(NodeId(0), NodeId(1));
    let mut overlay = FaultOverlay::new(&topo);
    overlay.fail_link(healthy[0]);
    let mut path = Vec::with_capacity(64);
    c.bench_function("fault_overlay_cached_detour", |b| {
        b.iter(|| {
            path.clear();
            overlay
                .try_route(NodeId(0), NodeId(1), &mut path)
                .expect("reachable");
            black_box(path.len())
        })
    });
}

/// The fail → restore transition with a warm cache: fail_link must scan
/// cached reroutes for the dying link, restore_link drops the cache.
fn overlay_transition(c: &mut Criterion) {
    let topo = Torus::new(&[16, 16, 8]);
    let net = topo.network();
    let n = topo.num_endpoints() as u32;
    let victim = topo.route_vec(NodeId(0), NodeId(1))[0];
    let other = topo.route_vec(NodeId(100), NodeId(101))[0];
    assert_ne!(victim, other);
    let mut overlay = FaultOverlay::new(&topo);
    // Warm the reroute cache: many pairs detouring around `other`.
    overlay.fail_link(other);
    let mut path = Vec::with_capacity(64);
    let mut i = 0u32;
    for _ in 0..1024 {
        i = i.wrapping_mul(1664525).wrapping_add(1013904223);
        path.clear();
        overlay
            .try_route(NodeId(i % n), NodeId((i >> 16) % n), &mut path)
            .expect("reachable");
    }
    assert!(!net.link(victim).is_virtual);
    c.bench_function("fault_overlay_fail_restore", |b| {
        b.iter(|| {
            black_box(overlay.fail_link(victim));
            black_box(overlay.restore_link(victim))
        })
    });
}

/// End-to-end engine cost of processing one mid-run fault transition:
/// a workload run with a cut-and-repair schedule vs the fault-free run.
fn engine_fault_transition(c: &mut Criterion) {
    use exaflow::sim::FaultSchedule;
    let topo = Torus::new(&[8, 8]);
    let w = WorkloadSpec::AllReduce {
        tasks: 64,
        bytes: 1 << 20,
    };
    let dag = w.generate(&TaskMapping::linear(64, 64));
    let sim = Simulator::new(&topo);
    let baseline = sim.run(&dag).unwrap().makespan_seconds;
    let cable = topo.route_vec(NodeId(0), NodeId(1))[0];
    let reverse = topo
        .network()
        .find_physical_link(NodeId(1), NodeId(0))
        .unwrap();
    let mut events = Vec::new();
    for (frac, action) in [(0.25, FaultAction::Down), (0.5, FaultAction::Up)] {
        for link in [cable.0, reverse.0] {
            events.push(FaultEvent {
                time_s: baseline * frac,
                link,
                action,
            });
        }
    }
    let schedule = FaultSchedule::new(events).unwrap();
    let mut group = c.benchmark_group("engine_fault_transition");
    group.bench_function("fault_free", |b| {
        b.iter(|| black_box(sim.run(&dag).unwrap().makespan_seconds))
    });
    group.bench_function("cut_and_repair", |b| {
        b.iter(|| {
            black_box(
                sim.run_with_faults(&dag, &schedule, RecoveryPolicy::RerouteResume)
                    .unwrap()
                    .makespan_seconds,
            )
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = overlay_route, overlay_cached_detour, overlay_transition, engine_fault_transition
);
criterion_main!(benches);
