//! Ablation (extension): how fattree oversubscription degrades a heavy
//! random workload — the exploration the paper explicitly set aside
//! ("no over-subscription is applied to the fattrees under consideration").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exaflow::prelude::*;
use std::hint::black_box;

fn oversubscription_sweep(c: &mut Criterion) {
    let w = WorkloadSpec::UnstructuredApp {
        tasks: 256,
        flows_per_task: 2,
        bytes: 1 << 20,
        seed: 5,
    };
    let mapping = TaskMapping::linear(256, 256);
    let dag = w.generate(&mapping);
    let mut group = c.benchmark_group("fattree_oversubscription");
    for os in [1.0f64, 2.0, 4.0] {
        let topo = KAryTree::with_oversubscription(8, 3, 256, 10e9, os);
        group.bench_with_input(BenchmarkId::from_parameter(os), &os, |b, _| {
            b.iter(|| black_box(Simulator::new(&topo).run(&dag).unwrap().makespan_seconds))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = oversubscription_sweep
);
criterion_main!(benches);
