//! Routing micro-benchmarks: cost of one route computation per topology
//! family, plus the route-cache ablation (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use exaflow::prelude::*;
use exaflow::topo::ConnectionRule;
use std::hint::black_box;

fn route_each_family(c: &mut Criterion) {
    let torus = Torus::new(&[16, 16, 8]);
    let tree = KAryTree::new(13, 3);
    let ghc = GeneralizedHypercube::new(&[8, 8, 4], 8);
    let nest = Nested::new(UpperTierKind::Fattree, 256, 2, ConnectionRule::HalfNodes);
    let topos: Vec<(&str, &dyn Topology)> = vec![
        ("torus", &torus),
        ("fattree", &tree),
        ("ghc", &ghc),
        ("nest_tree", &nest),
    ];
    let mut group = c.benchmark_group("route");
    for (name, topo) in topos {
        let n = topo.num_endpoints() as u32;
        let mut path = Vec::with_capacity(64);
        let mut i = 0u32;
        group.bench_function(name, |b| {
            b.iter(|| {
                i = i.wrapping_mul(1664525).wrapping_add(1013904223);
                let s = i % n;
                let d = (i >> 16) % n;
                path.clear();
                topo.route(NodeId(s), NodeId(d), &mut path);
                black_box(path.len())
            })
        });
    }
    group.finish();
}

fn route_cache_ablation(c: &mut Criterion) {
    // Iterative stencil: the same (src, dst) pairs recur every round, which
    // is exactly what the route cache is for.
    let topo = Torus::new(&[8, 8, 8]);
    let w = WorkloadSpec::NearNeighbors {
        gx: 8,
        gy: 8,
        gz: 8,
        bytes: 1 << 16,
        iterations: 8,
        periodic: true,
    };
    let dag = w.generate(&TaskMapping::linear(512, 512));
    let mut group = c.benchmark_group("route_cache");
    for (label, cached) in [("cached", true), ("uncached", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig {
                    cache_routes: cached,
                    ..SimConfig::default()
                };
                black_box(
                    Simulator::with_config(&topo, cfg)
                        .run(&dag)
                        .unwrap()
                        .makespan_seconds,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = route_each_family, route_cache_ablation
);
criterion_main!(benches);
