//! Incremental vs full-recompute max-min solving under event-local churn.
//!
//! The acceptance scenario from the issue: a ≥ 4096-endpoint AllReduce
//! active set (round-0 recursive-doubling pairs on a 16×16×16 torus, one
//! flow per direction = 4096 flows), where each completion event perturbs
//! one flow. The reference engine re-runs progressive filling over the
//! whole active set per event; the incremental solver re-solves only the
//! dirty connected component of the flow–resource sharing graph — here a
//! handful of entries — and is orders of magnitude faster while staying
//! bit-identical (asserted below).
//!
//! Run with `cargo bench --bench solver_incremental`; the headline
//! `speedup` line is what `scripts/bench_engine.sh` snapshots.

use criterion::{criterion_group, criterion_main, Criterion};
use exaflow::sim::maxmin::MaxMinSolver;
use exaflow_bench::allreduce_round0_paths;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Churn events per measured pass: enough to amortise setup, small enough
/// that the full-solve reference finishes promptly.
const EVENTS: usize = 256;

fn solver_incremental(c: &mut Criterion) {
    let (resources, paths) = allreduce_round0_paths(&[16, 16, 16]); // 4096 endpoints
    let caps = vec![10e9; resources];
    let flows = paths.len();
    let mut group = c.benchmark_group("solver_incremental");

    // Reference: one full water-filling pass over all flows per event.
    let mut full = MaxMinSolver::new(caps.clone()).unwrap();
    let mut rates = vec![0.0; flows];
    group.bench_function("full_per_event_4096ep", |b| {
        b.iter(|| {
            for _ in 0..EVENTS {
                full.solve(black_box(&paths), &mut rates);
            }
            black_box(rates[0])
        })
    });

    // Incremental: the active set persists across events; each event
    // retires one flow and admits a replacement, dirtying one component.
    let mut inc = MaxMinSolver::new(caps.clone()).unwrap();
    let mut ids: Vec<u32> = paths
        .iter()
        .map(|p| inc.insert_entry(Arc::from(p.as_slice()), true))
        .collect();
    inc.recompute(true, 0.5);
    group.bench_function("incremental_per_event_4096ep", |b| {
        b.iter(|| {
            for e in 0..EVENTS {
                let k = (e * 101) % flows;
                inc.remove_entry(ids[k]);
                ids[k] = inc.insert_entry(Arc::from(paths[k].as_slice()), true);
                inc.recompute(true, 0.5);
                black_box(inc.entry_rate(ids[k]));
            }
        })
    });
    group.finish();

    // Headline numbers, measured with explicit timers (the vendored
    // criterion stub runs each closure once and prints wall time only).
    let t = Instant::now();
    for _ in 0..EVENTS {
        full.solve(black_box(&paths), &mut rates);
    }
    let full_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for e in 0..EVENTS {
        let k = (e * 101) % flows;
        inc.remove_entry(ids[k]);
        ids[k] = inc.insert_entry(Arc::from(paths[k].as_slice()), true);
        inc.recompute(true, 0.5);
        black_box(inc.entry_rate(ids[k]));
    }
    let inc_s = t.elapsed().as_secs_f64();
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(
            inc.entry_rate(*id).to_bits(),
            rates[i].to_bits(),
            "incremental diverged from full solve at flow {i}"
        );
    }
    eprintln!(
        "solver_incremental: {flows} flows, {EVENTS} events: full {:.4}s, \
         incremental {:.4}s, speedup {:.0}x (bit-identical rates)",
        full_s,
        inc_s,
        full_s / inc_s
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = solver_incremental
);
criterion_main!(benches);
