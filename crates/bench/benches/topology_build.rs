//! Topology-construction throughput: how fast each generator can stamp out
//! a few-thousand-endpoint network (relevant because every experiment in a
//! sweep rebuilds its topology).

use criterion::{criterion_group, criterion_main, Criterion};
use exaflow::prelude::*;
use exaflow::topo::ConnectionRule;
use std::hint::black_box;

fn build_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_2048");
    group.bench_function("torus_16x16x8", |b| {
        b.iter(|| black_box(Torus::new(&[16, 16, 8]).num_endpoints()))
    });
    group.bench_function("fattree_13ary_3tree", |b| {
        b.iter(|| black_box(KAryTree::with_endpoints(13, 3, 2048).num_endpoints()))
    });
    group.bench_function("ghc_8x8x4_p8", |b| {
        b.iter(|| black_box(GeneralizedHypercube::new(&[8, 8, 4], 8).num_endpoints()))
    });
    group.bench_function("nest_tree_t2_u2", |b| {
        b.iter(|| {
            black_box(
                Nested::new(UpperTierKind::Fattree, 256, 2, ConnectionRule::HalfNodes)
                    .num_endpoints(),
            )
        })
    });
    group.bench_function("nest_ghc_t2_u2", |b| {
        b.iter(|| {
            black_box(
                Nested::new(
                    UpperTierKind::GeneralizedHypercube,
                    256,
                    2,
                    ConnectionRule::HalfNodes,
                )
                .num_endpoints(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = build_topologies
);
criterion_main!(benches);
