//! Cost of the event-tracing subsystem.
//!
//! Three engine configurations over the same AllReduce run: tracing off
//! (the default every figure sweep uses — must cost nothing), metrics
//! only (`SimConfig::trace` with no sink), and a full `JsonlSink` stream
//! into an in-memory buffer. The off/on reports must stay bit-identical
//! modulo the metrics block, asserted below.
//!
//! Run with `cargo bench --bench trace_overhead`; the headline line
//! reports the relative overhead of each tier.

use criterion::{criterion_group, criterion_main, Criterion};
use exaflow::prelude::*;
use std::hint::black_box;
use std::time::Instant;

const PASSES: usize = 8;

fn setup() -> (Torus, FlowDag) {
    let topo = Torus::new(&[8, 8]);
    let spec = WorkloadSpec::AllReduce {
        tasks: 64,
        bytes: 64 << 10,
    };
    let dag = spec.generate(&TaskMapping::linear(64, 64));
    (topo, dag)
}

fn run_off(topo: &Torus, dag: &FlowDag) -> SimReport {
    Simulator::new(topo).run(dag).unwrap()
}

fn run_metrics(topo: &Torus, dag: &FlowDag) -> SimReport {
    let cfg = SimConfig {
        trace: true,
        ..SimConfig::default()
    };
    Simulator::with_config(topo, cfg).run(dag).unwrap()
}

fn run_jsonl(topo: &Torus, dag: &FlowDag) -> (SimReport, usize) {
    let mut sink = JsonlSink::new(Vec::<u8>::new());
    let report = Simulator::new(topo).run_traced(dag, &mut sink).unwrap();
    (report, sink.finish().unwrap().len())
}

fn trace_overhead(c: &mut Criterion) {
    let (topo, dag) = setup();
    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function("tracing_off", |b| {
        b.iter(|| black_box(run_off(&topo, &dag).makespan_seconds))
    });
    group.bench_function("metrics_only", |b| {
        b.iter(|| black_box(run_metrics(&topo, &dag).makespan_seconds))
    });
    group.bench_function("jsonl_sink", |b| {
        b.iter(|| black_box(run_jsonl(&topo, &dag).1))
    });
    group.finish();

    // Tracing must observe, not perturb: same physics in all three tiers.
    let off = run_off(&topo, &dag);
    let mut with_metrics = run_metrics(&topo, &dag);
    let (mut with_jsonl, bytes) = run_jsonl(&topo, &dag);
    assert!(with_metrics.metrics.is_some() && with_jsonl.metrics.is_some());
    with_metrics.metrics = None;
    with_jsonl.metrics = None;
    for (name, traced) in [("metrics", &with_metrics), ("jsonl", &with_jsonl)] {
        assert_eq!(
            serde_json::to_string(traced).unwrap(),
            serde_json::to_string(&off).unwrap(),
            "{name} tier perturbed the report"
        );
    }

    // Headline numbers with explicit timers (the vendored criterion stub
    // runs each closure once and prints wall time only).
    let t = Instant::now();
    for _ in 0..PASSES {
        black_box(run_off(&topo, &dag).makespan_seconds);
    }
    let off_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..PASSES {
        black_box(run_metrics(&topo, &dag).makespan_seconds);
    }
    let metrics_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..PASSES {
        black_box(run_jsonl(&topo, &dag).1);
    }
    let jsonl_s = t.elapsed().as_secs_f64();
    eprintln!(
        "trace_overhead: {} flows, {PASSES} passes: off {:.4}s, metrics {:.4}s ({:+.1}%), \
         jsonl {:.4}s ({:+.1}%), {bytes} trace bytes/run (reports bit-identical)",
        off.flows,
        off_s,
        metrics_s,
        (metrics_s / off_s - 1.0) * 100.0,
        jsonl_s,
        (jsonl_s / off_s - 1.0) * 100.0,
    );
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = trace_overhead
);
criterion_main!(benches);
