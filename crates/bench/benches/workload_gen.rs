//! Workload-generation throughput for the heaviest DAG builders.

use criterion::{criterion_group, criterion_main, Criterion};
use exaflow::prelude::*;
use std::hint::black_box;

fn generate_workloads(c: &mut Criterion) {
    let mapping = TaskMapping::linear(512, 512);
    let specs = [
        WorkloadSpec::AllReduce {
            tasks: 512,
            bytes: 1,
        },
        WorkloadSpec::MapReduce {
            tasks: 256,
            distribute_bytes: 1,
            shuffle_bytes: 1,
            gather_bytes: 1,
        },
        WorkloadSpec::NearNeighbors {
            gx: 8,
            gy: 8,
            gz: 8,
            bytes: 1,
            iterations: 4,
            periodic: true,
        },
        WorkloadSpec::Bisection {
            tasks: 512,
            rounds: 8,
            bytes: 1,
            seed: 0,
        },
        WorkloadSpec::UnstructuredMgnt {
            tasks: 512,
            flows_per_task: 8,
            seed: 0,
        },
    ];
    let mut group = c.benchmark_group("workload_gen");
    for spec in &specs {
        group.bench_function(spec.name(), |b| {
            b.iter(|| black_box(spec.generate(&mapping).len()))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = generate_workloads
);
criterion_main!(benches);
