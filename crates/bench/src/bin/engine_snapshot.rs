//! Emits a `BENCH_engine.json` perf snapshot for the rate engine: the
//! solver-level incremental-vs-full churn scenario (the issue's ≥ 3x
//! acceptance number) plus end-to-end engine runs with the fast paths on
//! vs off, with equivalence verified on every scenario.
//!
//! The vendored criterion stub cannot write machine-readable output, so
//! this binary is the perf-trajectory recorder: run
//! `scripts/bench_engine.sh` after perf-relevant changes and diff the
//! snapshot.
//!
//! Usage: `engine_snapshot [output.json]` (default `BENCH_engine.json`).

use exaflow::prelude::*;
use exaflow::sim::maxmin::MaxMinSolver;
use exaflow_bench::allreduce_round0_paths;
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Churn events in the solver-level scenario.
const EVENTS: usize = 256;

#[derive(Serialize)]
struct SolverChurn {
    name: &'static str,
    flows: usize,
    events: usize,
    full_seconds: f64,
    incremental_seconds: f64,
    speedup: f64,
    bit_identical: bool,
}

#[derive(Serialize)]
struct EngineRun {
    name: &'static str,
    makespan_seconds: f64,
    events: u64,
    flows: u64,
    full_wall_seconds: f64,
    fast_wall_seconds: f64,
    speedup: f64,
    rate_recomputes: u64,
    flows_coalesced: u64,
    reports_identical: bool,
}

#[derive(Serialize)]
struct ThreadRun {
    name: &'static str,
    threads: usize,
    wall_seconds: f64,
    speedup_vs_1: f64,
    parallel_solves: u64,
    parallel_route_batches: u64,
    report_identical_to_1: bool,
}

#[derive(Serialize)]
struct TopoCacheRun {
    name: &'static str,
    entries: usize,
    endpoints: usize,
    cache_off_wall_seconds: f64,
    cache_on_wall_seconds: f64,
    speedup: f64,
    hits: u64,
    misses: u64,
    tables_built: u64,
    reports_identical: bool,
}

#[derive(Serialize)]
struct AnalysisRun {
    name: String,
    qfdbs: u64,
    sources: usize,
    /// Wall time of the exact all-sources sweep; `null` where it was
    /// skipped (the 131,072-QFDB sweep is ~1.7e10 pair evaluations).
    exact_seconds: Option<f64>,
    sampled_seconds: f64,
    exact_average: Option<f64>,
    sampled_average: f64,
    confidence_95: f64,
    /// Closed-form torus average distance — the ground truth the sampled
    /// estimate must bracket.
    reference_average: f64,
    within_confidence: bool,
}

#[derive(Serialize)]
struct Snapshot {
    solver: SolverChurn,
    engine: Vec<EngineRun>,
    /// Exact-vs-sampled distance analysis wall times on the torus at
    /// 2,048 / 16,384 / 131,072 QFDBs (the paper's Table 1 scale).
    analysis: Vec<AnalysisRun>,
    /// `std::thread::available_parallelism` on the recording box — the
    /// honest context for the thread speedups (on a 1-core box every
    /// `speedup_vs_1` hovers around 1.0 or below; the numbers record
    /// overhead and equivalence, not a parallel win).
    available_parallelism: usize,
    threads: Vec<ThreadRun>,
    topo_cache: TopoCacheRun,
}

/// The issue's acceptance scenario: a 4096-endpoint AllReduce active set
/// (8192 resources touched) where each event retires and re-admits one
/// flow. Full water-filling per event vs dirty-component recompute.
fn solver_churn() -> SolverChurn {
    let (resources, paths) = allreduce_round0_paths(&[16, 16, 16]);
    let caps = vec![10e9; resources];
    let flows = paths.len();

    let mut full = MaxMinSolver::new(caps.clone()).unwrap();
    let mut rates = vec![0.0; flows];
    let t = Instant::now();
    for _ in 0..EVENTS {
        full.solve(black_box(&paths), &mut rates);
    }
    let full_seconds = t.elapsed().as_secs_f64();

    let mut inc = MaxMinSolver::new(caps).unwrap();
    let mut ids: Vec<u32> = paths
        .iter()
        .map(|p| inc.insert_entry(Arc::from(p.as_slice()), true))
        .collect();
    inc.recompute(true, 0.5);
    let t = Instant::now();
    for e in 0..EVENTS {
        let k = (e * 101) % flows;
        inc.remove_entry(ids[k]);
        ids[k] = inc.insert_entry(Arc::from(paths[k].as_slice()), true);
        inc.recompute(true, 0.5);
        black_box(inc.entry_rate(ids[k]));
    }
    let incremental_seconds = t.elapsed().as_secs_f64();

    let bit_identical = ids
        .iter()
        .zip(&rates)
        .all(|(id, r)| inc.entry_rate(*id).to_bits() == r.to_bits());
    SolverChurn {
        name: "solver_churn_allreduce_4096ep",
        flows,
        events: EVENTS,
        full_seconds,
        incremental_seconds,
        speedup: full_seconds / incremental_seconds,
        bit_identical,
    }
}

/// Serialize a report with the solver-effort counters zeroed (the only
/// fields allowed to differ between engine modes).
fn canonical(report: &SimReport) -> String {
    let mut r = report.clone();
    r.maxmin_iterations = 0;
    r.rate_recomputes = 0;
    r.flows_coalesced = 0;
    r.solver_threads = 0;
    r.parallel_solves = 0;
    r.parallel_route_batches = 0;
    serde_json::to_string(&r).unwrap()
}

/// Serialize a report with ONLY the pool-bookkeeping fields zeroed: across
/// thread counts even the effort counters must match bit-for-bit.
fn canonical_threads(report: &SimReport) -> String {
    let mut r = report.clone();
    r.solver_threads = 0;
    r.parallel_solves = 0;
    r.parallel_route_batches = 0;
    serde_json::to_string(&r).unwrap()
}

/// One scenario at thread counts 1/2/4: walltime, pool engagement and the
/// equivalence bit (everything but pool bookkeeping identical to 1).
fn thread_runs(name: &'static str, topo: &dyn Topology, dag: &FlowDag) -> Vec<ThreadRun> {
    let run = |threads: usize| {
        let cfg = SimConfig {
            solver_threads: threads,
            ..SimConfig::default()
        };
        let t = Instant::now();
        let report = Simulator::with_config(topo, cfg).run(dag).unwrap();
        (t.elapsed().as_secs_f64(), report)
    };
    let (base_wall, base) = run(1);
    let base_canon = canonical_threads(&base);
    [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let (wall_seconds, report) = if threads == 1 {
                (base_wall, base.clone())
            } else {
                run(threads)
            };
            ThreadRun {
                name,
                threads,
                wall_seconds,
                speedup_vs_1: base_wall / wall_seconds,
                parallel_solves: report.parallel_solves,
                parallel_route_batches: report.parallel_route_batches,
                report_identical_to_1: canonical_threads(&report) == base_canon,
            }
        })
        .collect()
}

fn engine_run(name: &'static str, spec: &TopologySpec, workload: &WorkloadSpec) -> EngineRun {
    let topo = spec.build().unwrap();
    let eps = topo.num_endpoints();
    let dag = workload.generate(&TaskMapping::linear(workload.num_tasks(), eps));
    engine_run_dag(name, topo.as_ref(), &dag)
}

fn engine_run_dag(name: &'static str, topo: &dyn Topology, dag: &FlowDag) -> EngineRun {
    let cfg = |fast: bool| SimConfig {
        solver_incremental: fast,
        coalesce_flows: fast,
        ..SimConfig::default()
    };

    let t = Instant::now();
    let full = Simulator::with_config(topo, cfg(false)).run(dag).unwrap();
    let full_wall_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let fast = Simulator::with_config(topo, cfg(true)).run(dag).unwrap();
    let fast_wall_seconds = t.elapsed().as_secs_f64();

    EngineRun {
        name,
        makespan_seconds: fast.makespan_seconds,
        events: fast.events,
        flows: fast.flows,
        full_wall_seconds,
        fast_wall_seconds,
        speedup: full_wall_seconds / fast_wall_seconds,
        rate_recomputes: fast.rate_recomputes,
        flows_coalesced: fast.flows_coalesced,
        reports_identical: canonical(&full) == canonical(&fast),
    }
}

/// End-to-end sweep wall-clock with the shared topology cache on vs off:
/// a 50-entry grid over ONE topology spec — the shape the cache exists
/// for — where cache-off builds (and route-derives on) the same graph 50
/// times and cache-on builds it once with a precomputed route table. The
/// per-result comparison drops only wall clocks; everything physical must
/// be bit-identical.
fn topo_cache_run() -> TopoCacheRun {
    const ENTRIES: usize = 50;
    let spec = TopologySpec::Torus {
        dims: vec![12, 12], // 144 endpoints: under the table threshold
    };
    let eps = spec.build().unwrap().num_endpoints();
    let configs: Vec<ExperimentConfig> = (0..ENTRIES as u64)
        .map(|i| ExperimentConfig {
            topology: spec.clone(),
            workload: WorkloadSpec::UnstructuredApp {
                tasks: eps,
                flows_per_task: 4,
                bytes: 256 << 10,
                seed: i + 1,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
            fault_injection: None,
        })
        .collect();

    let canonical = |run: &SuiteRun| -> Vec<String> {
        run.results
            .iter()
            .map(|r| {
                let mut res = r.as_ref().unwrap().clone();
                res.wall_seconds = 0.0;
                serde_json::to_string(&res).unwrap()
            })
            .collect()
    };
    let t = Instant::now();
    let off = ExperimentSuite::new(configs.clone())
        .threads(1)
        .topo_cache(0)
        .run();
    let cache_off_wall_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let on = ExperimentSuite::new(configs).threads(1).run();
    let cache_on_wall_seconds = t.elapsed().as_secs_f64();
    let stats = on.report.topo_cache.expect("default cache is on");
    TopoCacheRun {
        name: "sweep_50x_unstructured_144ep_torus",
        entries: ENTRIES,
        endpoints: eps,
        cache_off_wall_seconds,
        cache_on_wall_seconds,
        speedup: cache_off_wall_seconds / cache_on_wall_seconds,
        hits: stats.hits,
        misses: stats.misses,
        tables_built: stats.tables_built,
        reports_identical: canonical(&on) == canonical(&off),
    }
}

/// Exact-vs-sampled distance-analysis wall time on the torus at one
/// scale. `exact` is skipped above 16,384 QFDBs (quadratic pair count);
/// the sampled estimator uses the spec-fingerprint seed so the recorded
/// averages are reproducible bit for bit.
fn analysis_run(qfdbs: u64, sources: usize, run_exact: bool) -> AnalysisRun {
    let scale = SystemScale::new(qfdbs).unwrap();
    let spec = scale.torus_spec();
    let topo = spec.build().unwrap();
    let reference_average = exaflow::topo::torus::average_distance_for_dims(&scale.torus_dims());

    let (exact_seconds, exact_average) = if run_exact {
        let t = Instant::now();
        let stats = distance_sweep(topo.as_ref(), 1);
        (Some(t.elapsed().as_secs_f64()), Some(stats.average))
    } else {
        (None, None)
    };

    let seed = spec_seed(&spec);
    let t = Instant::now();
    let sampled = distance_estimate(topo.as_ref(), sources, seed, 1);
    let sampled_seconds = t.elapsed().as_secs_f64();
    let confidence_95 = sampled.confidence_95.unwrap_or(0.0);
    AnalysisRun {
        name: format!("torus_distance_{qfdbs}"),
        qfdbs,
        sources,
        exact_seconds,
        sampled_seconds,
        exact_average,
        sampled_average: sampled.average,
        confidence_95,
        reference_average,
        within_confidence: (sampled.average - reference_average).abs() <= confidence_95 + 1e-9,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let scale = SystemScale::DEFAULT_SIM;
    let [gx, gy, gz] = scale.torus_dims();

    let solver = solver_churn();
    eprintln!(
        "{}: full {:.4}s, incremental {:.4}s, speedup {:.0}x ({})",
        solver.name,
        solver.full_seconds,
        solver.incremental_seconds,
        solver.speedup,
        if solver.bit_identical {
            "bit-identical"
        } else {
            "MISMATCH"
        }
    );

    // The incremental engine's target regime: staggered flow sizes mean
    // every completion is its own event perturbing one tiny component —
    // at exascale the dominant shape (EvalNet/OutFlank observation).
    let big_torus = Torus::new(&[16, 16, 16]); // 4096 endpoints
    let staggered_dag = {
        let mut b = FlowDagBuilder::new();
        for i in 0..big_torus.num_endpoints() as u32 {
            b.add_flow(
                NodeId(i),
                NodeId(i ^ 1),
                presets::MIB + 4096 * i as u64,
                &[],
            );
        }
        b.build()
    };
    let staggered = engine_run_dag("staggered_pairs_4096ep_torus", &big_torus, &staggered_dag);

    let engine = vec![
        staggered,
        engine_run(
            "allreduce_2048_torus",
            &scale.torus_spec(),
            &WorkloadSpec::AllReduce {
                tasks: scale.qfdbs as usize,
                bytes: presets::MIB,
            },
        ),
        engine_run(
            "flood_2048_torus",
            &scale.torus_spec(),
            &WorkloadSpec::Flood {
                gx,
                gy,
                gz,
                bytes: 256 << 10,
                waves: 4,
            },
        ),
    ];
    for run in &engine {
        eprintln!(
            "{}: full {:.4}s, fast {:.4}s, speedup {:.2}x, {} recomputes, \
             {} coalesced ({})",
            run.name,
            run.full_wall_seconds,
            run.fast_wall_seconds,
            run.speedup,
            run.rate_recomputes,
            run.flows_coalesced,
            if run.reports_identical {
                "reports identical"
            } else {
                "REPORTS DIVERGED"
            }
        );
    }

    // 1-vs-N thread runs: one batch-heavy AllReduce (big synchronized
    // rounds, the parallel water-fill's target) and the staggered pairs
    // (worst case for a pool: thousands of tiny solves).
    let allreduce_dag = {
        let workload = WorkloadSpec::AllReduce {
            tasks: big_torus.num_endpoints(),
            bytes: presets::MIB,
        };
        workload.generate(&TaskMapping::linear(
            workload.num_tasks(),
            big_torus.num_endpoints(),
        ))
    };
    let mut threads = thread_runs("allreduce_4096ep_torus", &big_torus, &allreduce_dag);
    threads.extend(thread_runs(
        "staggered_pairs_4096ep_torus",
        &big_torus,
        &staggered_dag,
    ));
    for run in &threads {
        eprintln!(
            "{} x{}: {:.4}s, speedup {:.2}x vs 1 thread, {} parallel solves, \
             {} route batches ({})",
            run.name,
            run.threads,
            run.wall_seconds,
            run.speedup_vs_1,
            run.parallel_solves,
            run.parallel_route_batches,
            if run.report_identical_to_1 {
                "identical to 1-thread"
            } else {
                "DIVERGED FROM 1-THREAD"
            }
        );
    }

    let topo_cache = topo_cache_run();
    eprintln!(
        "{}: cache-off {:.4}s, cache-on {:.4}s, speedup {:.2}x, \
         {} hits / {} misses, {} table(s) ({})",
        topo_cache.name,
        topo_cache.cache_off_wall_seconds,
        topo_cache.cache_on_wall_seconds,
        topo_cache.speedup,
        topo_cache.hits,
        topo_cache.misses,
        topo_cache.tables_built,
        if topo_cache.reports_identical {
            "reports identical"
        } else {
            "REPORTS DIVERGED"
        }
    );

    // Distance-analysis trajectory: exact sweep wall time where feasible,
    // sampled estimator (512 stratified sources) at every scale up to the
    // paper's 131,072 QFDBs.
    let analysis: Vec<AnalysisRun> = [(2_048u64, true), (16_384, true), (131_072, false)]
        .into_iter()
        .map(|(qfdbs, run_exact)| analysis_run(qfdbs, 512, run_exact))
        .collect();
    for run in &analysis {
        let exact = run
            .exact_seconds
            .map_or("skipped".to_string(), |s| format!("{s:.4}s"));
        eprintln!(
            "{}: exact {}, sampled {:.4}s, avg {:.4} ± {:.2e} vs {:.4} ({})",
            run.name,
            exact,
            run.sampled_seconds,
            run.sampled_average,
            run.confidence_95,
            run.reference_average,
            if run.within_confidence {
                "within confidence"
            } else {
                "OUTSIDE CONFIDENCE"
            }
        );
    }

    let snapshot = Snapshot {
        solver,
        engine,
        analysis,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        threads,
        topo_cache,
    };
    let body = serde_json::to_string_pretty(&snapshot).expect("serialise snapshot");
    std::fs::write(&out, body).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out}");
}
