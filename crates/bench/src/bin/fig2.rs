//! Regenerates **Figure 2**: Graphviz DOT drawings of the paper's four
//! example topologies —
//!
//! * (a) a 4×4×2 torus,
//! * (b) a torus nested in a generalised hypercube, NestGHC(t=2, u=8),
//! * (c) a 4-ary 2-tree,
//! * (d) a torus nested in a fattree, NestTree(t=2, u=8).
//!
//! DOT files are written to `figure2/` in the current directory; render
//! with `neato -Tpng figure2/<name>.dot`.

use exaflow::netgraph::dot::{to_dot, DotOptions};
use exaflow::prelude::*;
use exaflow::topo::ConnectionRule;

fn main() {
    std::fs::create_dir_all("figure2").expect("create figure2/");

    let panels: Vec<(&str, Box<dyn Topology>)> = vec![
        ("a_torus_4x4x2", Box::new(Torus::new(&[4, 4, 2]))),
        (
            "b_nest_ghc_t2_u8",
            Box::new(Nested::new(
                UpperTierKind::GeneralizedHypercube,
                16,
                2,
                ConnectionRule::EighthNodes,
            )),
        ),
        ("c_4ary_2tree", Box::new(KAryTree::new(4, 2))),
        (
            "d_nest_tree_t2_u8",
            Box::new(Nested::new(
                UpperTierKind::Fattree,
                16,
                2,
                ConnectionRule::EighthNodes,
            )),
        ),
    ];

    for (name, topo) in panels {
        let opts = DotOptions {
            name: topo.name(),
            ..DotOptions::default()
        };
        let dot = to_dot(topo.network(), &opts);
        let path = format!("figure2/{name}.dot");
        std::fs::write(&path, &dot).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!(
            "{path}: {} — {} nodes, {} links",
            topo.name(),
            topo.network().num_nodes(),
            topo.network().num_links()
        );
    }
    println!("render with: neato -Tpng figure2/<name>.dot -o <name>.png");
}
