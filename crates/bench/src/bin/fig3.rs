//! Regenerates **Figure 3**: the four uplink-density connection rules over
//! a 2×2×2 subgrid, printed as text — which nodes are uplinked and which
//! path each non-connected node uses to reach its uplink.

use exaflow::topo::{ConnectionRule, MixedRadix, UplinkMap};

fn main() {
    let shape = MixedRadix::new(&[2, 2, 2]);
    for rule in ConnectionRule::all() {
        let map = UplinkMap::new(&shape, rule);
        println!(
            "Density 1:{} (u = {}): {} of {} nodes uplinked",
            rule.u(),
            rule.u(),
            map.num_uplinks(),
            shape.len()
        );
        for local in 0..shape.len() as u32 {
            let c = shape.decode(local as u64);
            let target = map.target(local);
            if map.is_uplinked(local) {
                println!("  ({},{},{})  UPLINKED", c[0], c[1], c[2]);
            } else {
                let tc = shape.decode(target as u64);
                let hops: u32 = c.iter().zip(&tc).map(|(&a, &b)| a.abs_diff(b)).sum();
                println!(
                    "  ({},{},{})  -> ({},{},{})  [{} hop{}]",
                    c[0],
                    c[1],
                    c[2],
                    tc[0],
                    tc[1],
                    tc[2],
                    hops,
                    if hops == 1 { "" } else { "s" }
                );
            }
        }
        println!();
    }
}
