//! Regenerates **Figure 4**: normalised execution time of the six heavy
//! workloads (UnstructuredApp, UnstructuredHR, Bisection, AllReduce,
//! n-Bodies, Near-Neighbours) across the (t, u) hybrid grid for NestGHC,
//! NestTree, Fattree and Torus3D.
//!
//! `--scale <qfdbs>` (default 2048, the reproduction's simulation scale),
//! `--quick` for a 512-QFDB smoke run, `--json <path>` for raw data.

use exaflow::presets;
use exaflow_bench::{run_panels, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse(2048).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    eprintln!("Figure 4 (heavy workloads) at {} QFDBs", args.scale.qfdbs);
    let workloads = presets::heavy_workloads(args.scale);
    let panels = run_panels(args.scale, &workloads, args.threads).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    args.dump_json(&panels);
}
