//! Regenerates **Table 1**: average distance (uniform traffic) and diameter
//! for NestGHC(t,u) and NestTree(t,u) across the paper's (t,u) grid, plus
//! the fattree and torus reference values from the table caption.
//!
//! By default the analysis runs at the paper's full scale (131 072 QFDBs):
//! topologies are built in memory and distances are measured from a sample
//! of source endpoints against every destination (exact for small scales;
//! see `exaflow-analysis`). Use `--scale` to change, `--json` to dump.

use exaflow::prelude::*;
use exaflow::presets;
use exaflow_bench::HarnessArgs;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    t: u32,
    u: u32,
    avg_ghc: f64,
    avg_tree: f64,
    diam_ghc: u32,
    diam_tree: u32,
}

fn main() {
    let args = HarnessArgs::parse(131_072).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let scale = args.scale;
    let samples = if args.quick { 16 } else { 96 };
    eprintln!(
        "Table 1 at {} QFDBs ({} sampled sources per topology)",
        scale.qfdbs, samples
    );

    let grid: Vec<(u32, u32)> = presets::hybrid_grid()
        .into_iter()
        .filter(|&(t, _)| {
            let ok = scale.subtori(t).is_ok();
            if !ok {
                eprintln!("skipping t={t}: scale not divisible");
            }
            ok
        })
        .collect();
    // Each grid point builds two full topologies and surveys them — fan
    // the points out across the worker pool.
    let rows: Vec<Row> = scoped_map(&grid, args.grid_threads(), |_, &(t, u)| {
        let mut cell = Row {
            t,
            u,
            avg_ghc: 0.0,
            avg_tree: 0.0,
            diam_ghc: 0,
            diam_tree: 0,
        };
        for kind in [UpperTierKind::GeneralizedHypercube, UpperTierKind::Fattree] {
            let topo = scale.nested_spec(kind, t, u).unwrap().build().unwrap();
            // Always include the extreme endpoints: corners of the first and
            // last subtorus are the usual diameter witnesses.
            let last = NodeId(topo.num_endpoints() as u32 - 1);
            let stats = distance_survey(topo.as_ref(), samples, 0xE1F, &[NodeId(0), last]);
            match kind {
                UpperTierKind::GeneralizedHypercube => {
                    cell.avg_ghc = stats.average;
                    cell.diam_ghc = stats.diameter;
                }
                UpperTierKind::Fattree => {
                    cell.avg_tree = stats.average;
                    cell.diam_tree = stats.diameter;
                }
            }
        }
        cell
    })
    .into_iter()
    .map(|o| o.value.unwrap_or_else(|e| panic!("survey failed: {e}")))
    .collect();

    println!("Table 1: average distance and diameter of the hybrid topologies");
    println!(
        "{:>7} | {:>12} {:>12} | {:>9} {:>9}",
        "(t,u)", "avg NestGHC", "avg NestTree", "diam GHC", "diam Tree"
    );
    for r in &rows {
        println!(
            "({},{:>2})  | {:>12.2} {:>12.2} | {:>9} {:>9}",
            r.t, r.u, r.avg_ghc, r.avg_tree, r.diam_ghc, r.diam_tree
        );
    }

    // Reference rows from the table caption.
    let tree_spec = scale.fattree_spec();
    let tree = tree_spec.build().unwrap();
    let tree_stats = distance_survey(
        tree.as_ref(),
        samples,
        0xE1F,
        &[NodeId(0), NodeId(tree.num_endpoints() as u32 - 1)],
    );
    let torus_dims = scale.torus_dims();
    let torus_avg = exaflow::topo::torus::average_distance_for_dims(&torus_dims);
    let torus_diam: u32 = torus_dims.iter().map(|&d| d / 2).sum();
    println!(
        "reference Fattree: avg {:.2}, diameter {}",
        tree_stats.average, tree_stats.diameter
    );
    println!(
        "reference Torus:   avg {:.2}, diameter {}",
        torus_avg, torus_diam
    );
    println!("(paper at 131072 QFDBs: fattree avg 5.94 diam 6; torus avg 40 diam 80)");

    args.dump_json(&rows);
}
