//! Regenerates **Table 2**: upper-tier switch counts and estimated cost and
//! power overheads for every hybrid configuration, plus the fattree
//! reference.
//!
//! Two switch counts are printed per configuration:
//!
//! * `paper` — the closed-form counts reverse-engineered from Table 2
//!   itself (exact reproduction; see `exaflow-system::cost`),
//! * `built` — the switches actually instantiated by our topology
//!   generators at the requested scale (`--scale`, default the paper's
//!   131 072; `--quick` keeps this cheap).

use exaflow::prelude::*;
use exaflow::presets;
use exaflow_bench::HarnessArgs;
use exaflow_system::UpperTier;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    t: u32,
    u: u32,
    paper_switches_ghc: u64,
    paper_switches_tree: u64,
    built_switches_ghc: u64,
    built_switches_tree: u64,
    cost_pct_ghc: f64,
    cost_pct_tree: f64,
    power_pct_ghc: f64,
    power_pct_tree: f64,
}

fn main() {
    let args = HarnessArgs::parse(131_072).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let scale = args.scale;
    let model = CostModel::default();
    let n = scale.qfdbs;

    let grid: Vec<(u32, u32)> = presets::hybrid_grid()
        .into_iter()
        .filter(|&(t, _)| scale.subtori(t).is_ok())
        .collect();
    // Instantiating both topologies per grid point dominates the run at
    // paper scale — fan the points out across the worker pool.
    let rows: Vec<Row> = scoped_map(&grid, args.grid_threads(), |_, &(t, u)| {
        let built = |kind: UpperTierKind| -> u64 {
            let spec = scale.nested_spec(kind, t, u).unwrap();
            spec.build().unwrap().network().num_switches() as u64
        };
        let ghc_paper = model.paper_switch_count(UpperTier::GeneralizedHypercube, n, u);
        let tree_paper = model.paper_switch_count(UpperTier::Fattree, n, u);
        let ghc_over = model.overheads(ghc_paper, n);
        let tree_over = model.overheads(tree_paper, n);
        Row {
            t,
            u,
            paper_switches_ghc: ghc_paper,
            paper_switches_tree: tree_paper,
            built_switches_ghc: built(UpperTierKind::GeneralizedHypercube),
            built_switches_tree: built(UpperTierKind::Fattree),
            cost_pct_ghc: ghc_over.cost_increase_pct,
            cost_pct_tree: tree_over.cost_increase_pct,
            power_pct_ghc: ghc_over.power_increase_pct,
            power_pct_tree: tree_over.power_increase_pct,
        }
    })
    .into_iter()
    .map(|o| o.value.unwrap_or_else(|e| panic!("grid point failed: {e}")))
    .collect();

    println!("Table 2: switches and cost/power overhead ({n} QFDBs)");
    println!(
        "{:>7} | {:>11} {:>11} | {:>11} {:>11} | {:>7} {:>7} | {:>7} {:>7}",
        "(t,u)",
        "paper GHC",
        "paper Tree",
        "built GHC",
        "built Tree",
        "cost%G",
        "cost%T",
        "pwr%G",
        "pwr%T"
    );
    for r in &rows {
        println!(
            "({},{:>2})  | {:>11} {:>11} | {:>11} {:>11} | {:>6.2}% {:>6.2}% | {:>6.2}% {:>6.2}%",
            r.t,
            r.u,
            r.paper_switches_ghc,
            r.paper_switches_tree,
            r.built_switches_ghc,
            r.built_switches_tree,
            r.cost_pct_ghc,
            r.cost_pct_tree,
            r.power_pct_ghc,
            r.power_pct_tree
        );
    }
    let ft = model.paper_fattree_switch_count(n);
    let fo = model.overheads(ft, n);
    println!(
        "reference Fattree: {} switches, +{:.2}% cost, +{:.2}% power (paper: 9216, 5.27%, 1.76%)",
        ft, fo.cost_increase_pct, fo.power_increase_pct
    );

    args.dump_json(&rows);
}
