//! **Extension experiment**: aggregate-throughput comparison under random
//! permutation traffic, including the Dragonfly and Jellyfish comparators
//! the paper discusses only in related work.
//!
//! Each endpoint sends one fixed-size message to a random distinct partner
//! (re-drawn per round, several rounds, serialised per sender); the figure
//! of merit is the achieved per-endpoint goodput `total bytes / (makespan ·
//! endpoints)` relative to the 10 Gbps NIC line rate.
//!
//! `--scale <qfdbs>` (default 512), `--json <path>`.

use exaflow::prelude::*;
use exaflow_bench::HarnessArgs;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    topology: String,
    goodput_fraction: f64,
    makespan_seconds: f64,
}

fn main() {
    let args = HarnessArgs::parse(512).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let n = args.scale.qfdbs;
    let bytes: u64 = 1 << 20;
    let rounds = 4u32;
    let workload = WorkloadSpec::Bisection {
        tasks: n as usize,
        rounds,
        bytes,
        seed: 1234,
    };

    // Size the comparators to ~n endpoints.
    let mut specs: Vec<TopologySpec> = vec![
        args.scale.torus_spec(),
        args.scale.fattree_spec(),
        args.scale
            .nested_spec(UpperTierKind::Fattree, 2, 2)
            .unwrap(),
        args.scale
            .nested_spec(UpperTierKind::GeneralizedHypercube, 2, 2)
            .unwrap(),
    ];
    // Dragonfly: balanced with p chosen so 2p*p*(2p*p+1) >= ... pick p by scan.
    let mut p = 1u32;
    while (2 * (p + 1) as u64) * ((p + 1) as u64) * ((2 * (p + 1) as u64) * ((p + 1) as u64) + 1)
        <= n
    {
        p += 1;
    }
    let a = 2 * p;
    let h = p;
    let groups = ((n / (a as u64 * p as u64)) as u32).clamp(2, a * h + 1);
    specs.push(TopologySpec::Dragonfly { groups, a, p, h });
    // Jellyfish: same switch degree budget as the torus (6 fabric ports),
    // 4 endpoints per switch.
    let eps_per_switch = 4u32;
    let switches = (n / eps_per_switch as u64) as u32;
    specs.push(TopologySpec::Jellyfish {
        switches,
        endpoint_ports: eps_per_switch,
        fabric_degree: 6,
        seed: 7,
    });

    println!("Aggregate throughput, random pairwise traffic ({n} QFDBs nominal)");
    println!("{:<44} {:>10} {:>14}", "topology", "goodput", "makespan");
    let entries: Vec<(ExperimentConfig, usize)> = specs
        .into_iter()
        .map(|spec| {
            let eps = spec.num_endpoints() as u64;
            let tasks = (eps as usize / 2) * 2; // Bisection needs an even count
            let workload = match &workload {
                WorkloadSpec::Bisection {
                    rounds,
                    bytes,
                    seed,
                    ..
                } => WorkloadSpec::Bisection {
                    tasks,
                    rounds: *rounds,
                    bytes: *bytes,
                    seed: *seed,
                },
                _ => unreachable!(),
            };
            let cfg = ExperimentConfig {
                topology: spec,
                workload,
                mapping: MappingSpec::Linear,
                sim: SimConfig::default(),
                failures: None,
                fault_injection: None,
            };
            (cfg, tasks)
        })
        .collect();
    let configs: Vec<ExperimentConfig> = entries.iter().map(|(c, _)| c.clone()).collect();
    let mut suite = ExperimentSuite::new(configs);
    if let Some(t) = args.threads {
        suite = suite.threads(t);
    }
    let run = suite.run();
    eprintln!(
        "suite: {} experiments in {:.2}s on {} thread(s) ({:.0} events/s)",
        run.report.experiments,
        run.report.wall_seconds,
        run.report.threads,
        run.report.events_per_second,
    );
    let mut rows = Vec::new();
    for (res, (_, tasks)) in run.results.into_iter().zip(&entries) {
        let res = res.expect("experiment");
        let total_bits = *tasks as f64 * rounds as f64 * bytes as f64 * 8.0;
        let goodput = total_bits / res.makespan_seconds / (*tasks as f64 * 10e9);
        println!(
            "{:<44} {:>9.1}% {:>11.3} ms",
            res.topology,
            goodput * 100.0,
            res.makespan_seconds * 1e3
        );
        rows.push(Row {
            topology: res.topology,
            goodput_fraction: goodput,
            makespan_seconds: res.makespan_seconds,
        });
    }
    args.dump_json(&rows);
}
