//! Shared machinery for the table/figure regeneration binaries.
//!
//! Each binary regenerates one artefact of the paper:
//!
//! | binary   | artefact | contents |
//! |----------|----------|----------|
//! | `table1` | Table 1  | average distance + diameter per hybrid config |
//! | `table2` | Table 2  | switch counts, cost & power overheads |
//! | `fig2`   | Figure 2 | DOT drawings of the four example topologies |
//! | `fig3`   | Figure 3 | the four uplink-density connection rules |
//! | `fig4`   | Figure 4 | normalised execution time, heavy workloads |
//! | `fig5`   | Figure 5 | normalised execution time, light workloads |
//!
//! Binaries accept `--scale <qfdbs>` (simulation scale for figures,
//! analysis scale for tables) and `--json <path>` to additionally dump
//! machine-readable results.

use exaflow::prelude::*;
use exaflow::presets;
use std::collections::BTreeMap;

/// Parsed common command-line options.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// System scale in QFDBs.
    pub scale: SystemScale,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Quick mode: smaller scale and fewer samples.
    pub quick: bool,
    /// Worker threads for suite/grid fan-out (default: all cores).
    pub threads: Option<usize>,
}

impl HarnessArgs {
    /// Parse `std::env::args`, with a default scale.
    pub fn parse(default_scale: u64) -> Result<Self, String> {
        let mut scale = default_scale;
        let mut json = None;
        let mut quick = false;
        let mut threads = None;
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    scale = v.parse().map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--json" => json = Some(it.next().ok_or("--json needs a path")?),
                "--quick" => quick = true,
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    let n: usize = v.parse().map_err(|e| format!("bad --threads: {e}"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    threads = Some(n);
                }
                "--help" | "-h" => {
                    eprintln!("options: --scale <qfdbs> --json <path> --threads <n> --quick");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown option {other}")),
            }
        }
        if quick {
            scale = scale.min(512);
        }
        Ok(HarnessArgs {
            scale: SystemScale::new(scale)?,
            json,
            quick,
            threads,
        })
    }

    /// The worker count for [`exaflow::scoped_map`]-style grid fan-out:
    /// `--threads` if given, else one per available core.
    pub fn grid_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Write `value` to the JSON path when requested.
    pub fn dump_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let body = serde_json::to_string_pretty(value).expect("serialise results");
            std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

/// Engine-shaped resource paths of the AllReduce round-0 active set on a
/// torus: endpoint `i` sends to its recursive-doubling partner `i ^ 1`,
/// each path `[injection, links.., ejection]` exactly as [`Simulator`]
/// hands them to the max-min solver. Returns `(resource count, paths)`.
/// Shared by the `solver_incremental` bench and the `engine_snapshot` bin.
pub fn allreduce_round0_paths(dims: &[u32]) -> (usize, Vec<Vec<u32>>) {
    let topo = Torus::new(dims);
    let eps = topo.num_endpoints();
    let links = topo.network().num_links();
    let paths = (0..eps as u32)
        .map(|i| {
            let peer = i ^ 1;
            let mut p = vec![(links + i as usize) as u32];
            p.extend(topo.route_vec(NodeId(i), NodeId(peer)).iter().map(|l| l.0));
            p.push((links + eps + peer as usize) as u32);
            p
        })
        .collect();
    (links + 2 * eps, paths)
}

/// One panel of Figure 4 or 5: a workload swept across the hybrid grid.
///
/// The whole grid — two baselines plus NestGHC/NestTree per viable (t, u)
/// — is submitted as one [`ExperimentSuite`] and fanned out across
/// `threads` workers (all cores when `None`). Returns, per cell, the
/// normalised times of the four curves (NestGHC, NestTree, Fattree,
/// Torus), normalised to the fattree baseline.
pub fn figure_panel(
    scale: SystemScale,
    workload: &WorkloadSpec,
    threads: Option<usize>,
) -> Result<FigurePanel, String> {
    let config_for = |spec: TopologySpec| ExperimentConfig {
        topology: spec,
        workload: workload.clone(),
        mapping: MappingSpec::Linear,
        sim: SimConfig::default(),
        failures: None,
        fault_injection: None,
    };
    let grid: Vec<(u32, u32)> = presets::hybrid_grid()
        .into_iter()
        .filter(|&(t, _)| scale.subtori(t).is_ok()) // tiny scales cannot host big subtori
        .collect();
    // Baselines are (t,u)-independent: configs 0 and 1; then one
    // GHC/Tree pair per grid point.
    let mut configs = vec![
        config_for(scale.fattree_spec()),
        config_for(scale.torus_spec()),
    ];
    for &(t, u) in &grid {
        configs.push(config_for(scale.nested_spec(
            UpperTierKind::GeneralizedHypercube,
            t,
            u,
        )?));
        configs.push(config_for(scale.nested_spec(
            UpperTierKind::Fattree,
            t,
            u,
        )?));
    }

    let mut suite = ExperimentSuite::new(configs);
    if let Some(n) = threads {
        suite = suite.threads(n);
    }
    let run = suite.run();
    for res in run.results.iter().flatten() {
        eprintln!(
            "  {:<22} {:<16} makespan {:>12.6} s  ({} flows, {} events, {:.2}s wall)",
            res.topology,
            res.workload,
            res.makespan_seconds,
            res.flows,
            res.events,
            res.wall_seconds
        );
    }
    eprintln!(
        "  suite: {} experiments in {:.2}s on {} thread(s) ({:.0} events/s, speedup {:.2}x)",
        run.report.experiments,
        run.report.wall_seconds,
        run.report.threads,
        run.report.events_per_second,
        run.report.speedup(),
    );
    let results: Vec<ExperimentResult> = run
        .results
        .into_iter()
        .collect::<Result<_, exaflow::ExperimentError>>()
        .map_err(|e| e.to_string())?;

    let base = results[0].makespan_seconds;
    if base <= 0.0 {
        return Err("fattree baseline has zero makespan".into());
    }
    let torus = results[1].makespan_seconds;
    let cells = grid
        .iter()
        .zip(results[2..].chunks_exact(2))
        .map(|(&(t, u), pair)| FigureCell {
            t,
            u,
            nest_ghc: pair[0].makespan_seconds / base,
            nest_tree: pair[1].makespan_seconds / base,
            fattree: 1.0,
            torus: torus / base,
        })
        .collect();
    Ok(FigurePanel {
        workload: workload.name().to_owned(),
        scale_qfdbs: scale.qfdbs,
        baseline_seconds: base,
        torus_seconds: torus,
        cells,
    })
}

/// One (t, u) cell of a figure panel.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FigureCell {
    pub t: u32,
    pub u: u32,
    pub nest_ghc: f64,
    pub nest_tree: f64,
    pub fattree: f64,
    pub torus: f64,
}

/// A complete workload panel.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FigurePanel {
    pub workload: String,
    pub scale_qfdbs: u64,
    pub baseline_seconds: f64,
    pub torus_seconds: f64,
    pub cells: Vec<FigureCell>,
}

impl FigurePanel {
    /// Render as the text table the paper's figures correspond to.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "{}  (normalised to Fattree; {} QFDBs)",
            self.workload, self.scale_qfdbs
        )
        .unwrap();
        writeln!(
            out,
            "  {:>7} {:>10} {:>10} {:>10} {:>10}",
            "(t,u)", "NestGHC", "NestTree", "Fattree", "Torus3D"
        )
        .unwrap();
        for c in &self.cells {
            writeln!(
                out,
                "  ({},{:>2}) {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                c.t, c.u, c.nest_ghc, c.nest_tree, c.fattree, c.torus
            )
            .unwrap();
        }
        out
    }
}

/// Run a list of panels and collect them keyed by workload name. Each
/// panel's grid fans out across `threads` suite workers.
pub fn run_panels(
    scale: SystemScale,
    workloads: &[WorkloadSpec],
    threads: Option<usize>,
) -> Result<BTreeMap<String, FigurePanel>, String> {
    let mut out = BTreeMap::new();
    for w in workloads {
        eprintln!("== {} ==", w.name());
        let panel = figure_panel(scale, w, threads)?;
        println!("{}", panel.render());
        out.insert(w.name().to_owned(), panel);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_panel_tiny() {
        let scale = SystemScale::new(64).unwrap();
        let w = WorkloadSpec::Reduce {
            tasks: 64,
            bytes: 1 << 12,
        };
        let panel = figure_panel(scale, &w, Some(2)).unwrap();
        // t=8 is skipped at 64 QFDBs: 8 of 12 grid points remain.
        assert_eq!(panel.cells.len(), 8);
        // Reduce is topology-insensitive: every normalised value ~1.
        for c in &panel.cells {
            assert!((c.nest_ghc - 1.0).abs() < 1e-6, "{c:?}");
            assert!((c.torus - 1.0).abs() < 1e-6, "{c:?}");
        }
        let text = panel.render();
        assert!(text.contains("NestGHC"));
    }
}
