//! `exaflow` — command-line driver for the multi-tier interconnect study.
//!
//! ```text
//! exaflow run <config.json>      run an experiment from a JSON config
//! exaflow run -                  read the config from stdin
//! exaflow run c.json --trace t.jsonl
//!                                also stream every engine state transition
//!                                to t.jsonl as JSON Lines (one event per
//!                                line; see exaflow_sim::trace) and attach
//!                                engine metrics to the printed result
//! exaflow sweep <suite.json>     run a whole suite (JSON array of configs)
//!                                in parallel; --threads N picks the pool
//!                                size (1 = serial); --metrics enables
//!                                tracing on every entry and aggregates
//!                                engine counters into the suite report;
//!                                --retries N re-runs transient failures
//!                                (panics, deadline overruns) up to N extra
//!                                times before quarantining the entry;
//!                                --journal f.jsonl appends every finished
//!                                outcome to a crash-safe JSONL journal and
//!                                --resume reuses journaled outcomes instead
//!                                of re-running them; exits 3 when any entry
//!                                ended in a typed error, 4 when quarantined
//!                                entries remain
//! exaflow resilience <spec.json> run a Monte-Carlo resilience campaign
//!                                (fault rates x recovery policies x
//!                                replicas) and print per-cell degradation
//!                                metrics as deterministic JSON; --journal /
//!                                --resume work as for sweep (a resumed
//!                                campaign report is bit-identical)
//! exaflow analyze                paper-scale distance analysis: build the
//!                                Table 1 topologies at --scale <qfdbs>
//!                                (default 2048) and sweep their distance
//!                                distributions; --sources all measures
//!                                every endpoint (exact, bit-identical at
//!                                any --threads), --sources <n> measures a
//!                                stratified deterministic sample seeded
//!                                from each spec's fingerprint and reports
//!                                stderr + 95% confidence bounds;
//!                                --hybrids adds NestTree/NestGHC(t=2,u=4)
//! exaflow topo <config.json>     build the topology and print its stats
//! exaflow sample <name>          print a sample experiment config
//! exaflow help                   this text
//! ```
//!
//! An experiment config is the JSON form of `exaflow::ExperimentConfig`:
//!
//! ```json
//! {
//!   "topology": {"topology": "nested", "upper": "GeneralizedHypercube",
//!                 "subtori": 64, "t": 2, "u": 4},
//!   "workload": {"workload": "all_reduce", "tasks": 512, "bytes": 1048576}
//! }
//! ```

use exaflow::prelude::*;
use std::io::Read;

const SAMPLES: &[(&str, &str)] = &[
    (
        "allreduce-nestghc",
        r#"{
  "topology": {"topology": "nested", "upper": "GeneralizedHypercube", "subtori": 64, "t": 2, "u": 4},
  "workload": {"workload": "all_reduce", "tasks": 512, "bytes": 1048576}
}"#,
    ),
    (
        "sweep3d-torus",
        r#"{
  "topology": {"topology": "torus", "dims": [8, 8, 8]},
  "workload": {"workload": "sweep3d", "gx": 8, "gy": 8, "gz": 8, "bytes": 262144}
}"#,
    ),
    (
        "mapreduce-fattree",
        r#"{
  "topology": {"topology": "fattree", "k": 8, "n": 3},
  "workload": {"workload": "map_reduce", "tasks": 128, "distribute_bytes": 4194304,
               "shuffle_bytes": 65536, "gather_bytes": 65536}
}"#,
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("resilience") => cmd_resilience(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("topo") => cmd_topo(args.get(1).map(String::as_str)),
        Some("sample") => cmd_sample(args.get(1).map(String::as_str)),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'");
            print_help();
            2
        }
    };
    std::process::exit(code);
}

fn print_help() {
    eprintln!("usage:");
    eprintln!("  exaflow run <config.json | -> [--trace <file.jsonl>] [--threads <n>]");
    eprintln!("                                  run an experiment, print the result as JSON;");
    eprintln!("                                  --trace streams engine events to a JSONL file");
    eprintln!("                                  and attaches engine metrics to the result;");
    eprintln!("                                  --threads sets the intra-run solver pool size");
    eprintln!("                                  (results are bit-identical at every count)");
    eprintln!("  exaflow sweep <suite.json | -> [--threads <n>] [--metrics] [--retries <n>]");
    eprintln!(
        "                                 [--journal <f.jsonl>] [--resume] [--topo-cache <n>]"
    );
    eprintln!("                                  run a JSON array of configs in parallel,");
    eprintln!("                                  print per-config results + suite metrics;");
    eprintln!("                                  --metrics traces every entry and aggregates");
    eprintln!("                                  engine counters into the suite report;");
    eprintln!("                                  --retries re-runs transient failures before");
    eprintln!("                                  quarantining; --journal records each outcome");
    eprintln!("                                  crash-safely, --resume replays the journal;");
    eprintln!("                                  --topo-cache caps the shared topology cache");
    eprintln!("                                  (0 disables it; results are bit-identical");
    eprintln!("                                  either way, only build work changes);");
    eprintln!("                                  exit 3 if any entry ended in a typed error,");
    eprintln!("                                  4 if quarantined entries remain");
    eprintln!(
        "  exaflow resilience <spec.json | -> [--threads <n>] [--journal <f.jsonl>] [--resume]"
    );
    eprintln!("                                 [--topo-cache <n>]");
    eprintln!("                                  run a Monte-Carlo fault-injection campaign,");
    eprintln!("                                  print per-(rate, policy) degradation metrics;");
    eprintln!("                                  --journal/--resume as for sweep (resumed");
    eprintln!("                                  reports are bit-identical);");
    eprintln!("                                  exit 3 on non-fault harness errors");
    eprintln!(
        "  exaflow analyze [--scale <qfdbs>] [--sources all|<n>] [--threads <n>] [--hybrids]"
    );
    eprintln!("                                  distance analysis of the Table 1 topologies at");
    eprintln!("                                  a system scale (default 2048 QFDBs; the paper's");
    eprintln!("                                  is 131072); --sources all = exact sweep, a");
    eprintln!("                                  number = stratified sample with error bounds;");
    eprintln!("                                  --hybrids adds NestTree/NestGHC(t=2,u=4);");
    eprintln!("                                  prints a kind-tagged JSON report");
    eprintln!("  exaflow topo <config.json | ->  build the topology of a config, print stats");
    eprintln!("  exaflow sample [name]           print a sample config (or list names)");
}

fn read_body(path: Option<&str>) -> Result<String, String> {
    let path = path.ok_or("missing config path (use '-' for stdin)")?;
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("read stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))
    }
}

fn read_config(path: Option<&str>) -> Result<ExperimentConfig, String> {
    let body = read_body(path)?;
    serde_json::from_str(&body).map_err(|e| format!("parse config: {e}"))
}

/// Structured error document printed to stdout when an experiment fails:
/// the typed [`ExperimentError`] under an `"error"` key, so scripted
/// callers can match on `error.kind` instead of scraping stderr.
#[derive(serde::Serialize)]
struct ErrorOutput {
    error: ExperimentError,
}

fn cmd_run(args: &[String]) -> i32 {
    let mut path: Option<&str> = None;
    let mut trace_path: Option<&str> = None;
    let mut solver_threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p),
                None => {
                    eprintln!("error: --trace needs a file path");
                    return 1;
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => solver_threads = Some(n),
                _ => {
                    eprintln!("error: --threads needs a positive integer");
                    return 1;
                }
            },
            other if path.is_none() => path = Some(other),
            other => {
                eprintln!("error: unexpected argument '{other}'");
                return 1;
            }
        }
    }
    let mut cfg = match read_config(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if let Some(n) = solver_threads {
        cfg.sim.solver_threads = n;
    }
    let outcome = match trace_path {
        Some(tp) => {
            let file = match std::fs::File::create(tp) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error: create {tp}: {e}");
                    return 1;
                }
            };
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            let outcome = run_experiment_traced(&cfg, Some(&mut sink));
            if let Err(e) = sink.finish() {
                eprintln!("error: write trace {tp}: {e}");
                return 1;
            }
            outcome
        }
        None => run_experiment(&cfg),
    };
    match outcome {
        Ok(result) => {
            println!("{}", serde_json::to_string_pretty(&result).unwrap());
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            println!(
                "{}",
                serde_json::to_string_pretty(&ErrorOutput { error: e }).unwrap()
            );
            1
        }
    }
}

/// JSON document printed by `exaflow sweep`: per-config outcomes (in
/// input order, `{"Ok": ...}` or `{"Err": {typed error}}`) plus suite
/// metrics.
#[derive(serde::Serialize, serde::Deserialize)]
struct SweepOutput {
    results: Vec<Result<ExperimentResult, ExperimentError>>,
    report: SuiteReport,
}

/// Shared argument shape for `sweep` and `resilience`:
/// `<path | -> [--threads <n>] [--journal <f.jsonl>] [--resume] [--retries <n>]
/// [--topo-cache <n>]`.
#[derive(Default)]
struct CampaignArgs<'a> {
    path: Option<&'a str>,
    threads: Option<usize>,
    journal: Option<&'a str>,
    resume: bool,
    retries: Option<u32>,
    topo_cache: Option<usize>,
}

fn parse_campaign_args(args: &[String], allow_retries: bool) -> Result<CampaignArgs<'_>, String> {
    let mut parsed = CampaignArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => parsed.threads = Some(n),
                _ => return Err("--threads needs a positive integer".into()),
            },
            "--journal" => match it.next() {
                Some(p) => parsed.journal = Some(p),
                None => return Err("--journal needs a file path".into()),
            },
            "--resume" => parsed.resume = true,
            "--retries" if allow_retries => match it.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => parsed.retries = Some(n),
                None => return Err("--retries needs a non-negative integer".into()),
            },
            "--topo-cache" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => parsed.topo_cache = Some(n),
                None => return Err("--topo-cache needs a non-negative integer (0 = off)".into()),
            },
            other if parsed.path.is_none() => parsed.path = Some(other),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if parsed.resume && parsed.journal.is_none() {
        return Err("--resume requires --journal <path>".into());
    }
    Ok(parsed)
}

fn cmd_sweep(args: &[String]) -> i32 {
    let metrics = args.iter().any(|a| a == "--metrics");
    let rest: Vec<String> = args.iter().filter(|a| *a != "--metrics").cloned().collect();
    let parsed_args = match parse_campaign_args(&rest, true) {
        Ok(pa) => pa,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let parsed: Result<Vec<ExperimentConfig>, String> = read_body(parsed_args.path)
        .and_then(|body| serde_json::from_str(&body).map_err(|e| format!("parse suite: {e}")));
    let mut configs = match parsed {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if metrics {
        for cfg in &mut configs {
            cfg.sim.trace = true;
        }
    }
    let mut suite = ExperimentSuite::new(configs);
    if let Some(n) = parsed_args.threads {
        suite = suite.threads(n);
    }
    if let Some(cap) = parsed_args.topo_cache {
        suite = suite.topo_cache(cap);
    }
    if let Some(extra) = parsed_args.retries {
        // --retries counts *extra* attempts beyond the first.
        suite = suite.retry_policy(RetryPolicy::attempts(extra + 1));
    }
    let run = match parsed_args.journal {
        Some(journal_path) => {
            match suite.run_journaled(std::path::Path::new(journal_path), parsed_args.resume) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("error: journal {journal_path}: {e}");
                    return 1;
                }
            }
        }
        None => suite.run(),
    };
    eprintln!(
        "sweep: {}/{} experiments succeeded in {:.2}s on {} thread(s)",
        run.report.succeeded, run.report.experiments, run.report.wall_seconds, run.report.threads
    );
    if let Some(tc) = &run.report.topo_cache {
        eprintln!(
            "sweep: topo-cache {} hit(s), {} miss(es), {} eviction(s), {} route table(s) built",
            tc.hits, tc.misses, tc.evictions, tc.tables_built
        );
    }
    if run.report.retries > 0 || run.report.quarantined > 0 {
        eprintln!(
            "sweep: {} retr{} executed, {} entr{} quarantined",
            run.report.retries,
            if run.report.retries == 1 { "y" } else { "ies" },
            run.report.quarantined,
            if run.report.quarantined == 1 {
                "y"
            } else {
                "ies"
            },
        );
    }
    for (i, res) in run.results.iter().enumerate() {
        if let Err(e) = res {
            eprintln!("error: experiment {i}: {e}");
        }
    }
    let failed = run.report.failed;
    let quarantined = run.report.quarantined;
    let out = SweepOutput {
        results: run.results,
        report: run.report,
    };
    println!("{}", serde_json::to_string_pretty(&out).unwrap());
    if quarantined > 0 {
        4
    } else if failed > 0 {
        3
    } else {
        0
    }
}

/// JSON document printed by `exaflow resilience`: the campaign report
/// under a `"report"` key, kind-tagged so scripted callers can tell it
/// apart from sweep/run output.
#[derive(serde::Serialize)]
struct ResilienceOutput {
    kind: &'static str,
    report: ResilienceCampaignReport,
}

fn cmd_resilience(args: &[String]) -> i32 {
    let parsed_args = match parse_campaign_args(args, false) {
        Ok(pa) => pa,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let parsed: Result<ResilienceCampaignSpec, String> = read_body(parsed_args.path)
        .and_then(|body| serde_json::from_str(&body).map_err(|e| format!("parse campaign: {e}")));
    let spec = match parsed {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let journal = parsed_args
        .journal
        .map(|p| (std::path::Path::new(p), parsed_args.resume));
    match run_resilience_campaign_with_cache(
        &spec,
        parsed_args.threads,
        journal,
        parsed_args.topo_cache,
    ) {
        Ok((report, cache_stats)) => {
            eprintln!(
                "resilience: {} runs ({} rates x {} policies x {} replicas), {} failed",
                report.total_runs,
                spec.fault_rates_per_s.len(),
                spec.policies.len(),
                report.replicas_per_cell,
                report.failed_runs,
            );
            if let Some(tc) = &cache_stats {
                eprintln!(
                    "resilience: topo-cache {} hit(s), {} miss(es), {} eviction(s), {} route table(s) built",
                    tc.hits, tc.misses, tc.evictions, tc.tables_built
                );
            }
            for cell in &report.cells {
                eprintln!(
                    "  rate {:>10.4}/s {:<16} delivered {:>6.2}% inflation p50 {:.3} p99 {:.3}",
                    cell.fault_rate_per_s,
                    cell.policy.name(),
                    cell.delivered_flow_fraction * 100.0,
                    cell.inflation_p50,
                    cell.inflation_p99,
                );
            }
            let failed_runs = report.failed_runs;
            let out = ResilienceOutput {
                kind: "resilience_campaign",
                report,
            };
            println!("{}", serde_json::to_string_pretty(&out).unwrap());
            if failed_runs > 0 {
                3
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            println!(
                "{}",
                serde_json::to_string_pretty(&ErrorOutput { error: e }).unwrap()
            );
            1
        }
    }
}

fn cmd_analyze(args: &[String]) -> i32 {
    let mut scale_qfdbs = SystemScale::DEFAULT_SIM.qfdbs;
    let mut sources = SourceBudget::All;
    let mut threads = 0usize; // 0 = auto (EXAFLOW_THREADS or hardware)
    let mut hybrids = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(q) => scale_qfdbs = q,
                None => {
                    eprintln!("error: --scale needs a QFDB count");
                    return 1;
                }
            },
            "--sources" => match it.next().map(String::as_str) {
                Some("all") => sources = SourceBudget::All,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => sources = SourceBudget::Sample(n),
                    _ => {
                        eprintln!("error: --sources needs 'all' or a positive integer");
                        return 1;
                    }
                },
                None => {
                    eprintln!("error: --sources needs 'all' or a positive integer");
                    return 1;
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("error: --threads needs a positive integer");
                    return 1;
                }
            },
            "--hybrids" => hybrids = true,
            other => {
                eprintln!("error: unexpected argument '{other}'");
                return 1;
            }
        }
    }
    let scale = match SystemScale::new(scale_qfdbs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let specs = match table1_specs(scale, hybrids) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let threads = exaflow::sim::pool::resolve_threads(threads);
    let started = std::time::Instant::now();
    match analyze_distances(scale, &specs, sources, threads) {
        Ok(report) => {
            eprintln!(
                "analyze: {} topolog{} at {} QFDBs, {} source(s) each, {} thread(s), {:.2}s",
                report.rows.len(),
                if report.rows.len() == 1 { "y" } else { "ies" },
                scale.qfdbs,
                match sources {
                    SourceBudget::All => "all".to_string(),
                    SourceBudget::Sample(n) => n.to_string(),
                },
                threads,
                started.elapsed().as_secs_f64(),
            );
            for row in &report.rows {
                let ci = row
                    .stats
                    .confidence_95
                    .map(|c| format!(" ± {c:.3}"))
                    .unwrap_or_default();
                eprintln!(
                    "  {:<40} avg {:.2}{ci}, diameter {}{}",
                    row.topology,
                    row.stats.average,
                    row.stats.diameter,
                    if row.stats.exact {
                        " (exact)"
                    } else {
                        " (sampled)"
                    }
                );
            }
            println!("{}", serde_json::to_string_pretty(&report).unwrap());
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            println!(
                "{}",
                serde_json::to_string_pretty(&ErrorOutput { error: e }).unwrap()
            );
            1
        }
    }
}

fn cmd_topo(path: Option<&str>) -> i32 {
    let cfg = match read_config(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    match cfg.topology.build() {
        Ok(topo) => {
            let stats = exaflow::netgraph::NetworkStats::of(topo.network());
            println!("{}", topo.name());
            println!("{stats}");
            let survey = distance_survey(
                topo.as_ref(),
                64,
                7,
                &[NodeId(0), NodeId(topo.num_endpoints() as u32 - 1)],
            );
            println!(
                "distance: avg {:.2}, diameter {}{}",
                survey.average,
                survey.diameter,
                if survey.exact {
                    " (exact)"
                } else {
                    " (sampled)"
                }
            );
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_sample(name: Option<&str>) -> i32 {
    match name {
        None => {
            for (n, _) in SAMPLES {
                println!("{n}");
            }
            0
        }
        Some(n) => match SAMPLES.iter().find(|(k, _)| k == &n) {
            Some((_, body)) => {
                println!("{body}");
                0
            }
            None => {
                eprintln!("unknown sample '{n}'; available:");
                for (k, _) in SAMPLES {
                    eprintln!("  {k}");
                }
                1
            }
        },
    }
}
