//! End-to-end tests of the `exaflow` command-line binary.

use std::process::{Command, Stdio};

fn exaflow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exaflow"))
}

#[test]
fn help_prints_usage() {
    let out = exaflow().arg("help").output().unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("exaflow run"));
}

#[test]
fn sample_lists_and_prints() {
    let out = exaflow().arg("sample").output().unwrap();
    assert!(out.status.success());
    let list = String::from_utf8_lossy(&out.stdout);
    assert!(list.contains("allreduce-nestghc"));
    let out = exaflow()
        .args(["sample", "sweep3d-torus"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("\"topology\": \"torus\""));
}

#[test]
fn unknown_sample_fails() {
    let out = exaflow().args(["sample", "nope"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn run_from_stdin_outputs_json_result() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["run", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            br#"{"topology": {"topology": "torus", "dims": [4, 4]},
                "workload": {"workload": "reduce", "tasks": 8, "bytes": 1024}}"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON result");
    assert_eq!(body["workload"], "Reduce");
    assert_eq!(body["flows"], 7);
    assert!(body["makespan_seconds"].as_f64().unwrap() > 0.0);
}

#[test]
fn run_with_trace_writes_oracle_clean_jsonl_and_metrics() {
    use std::io::Write;
    let trace_path =
        std::env::temp_dir().join(format!("exaflow-trace-{}.jsonl", std::process::id()));
    let mut child = exaflow()
        .args(["run", "-", "--trace", trace_path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            br#"{"topology": {"topology": "torus", "dims": [4, 4]},
                "workload": {"workload": "all_reduce", "tasks": 16, "bytes": 65536}}"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The result gains the kind-tagged metrics block when tracing is on.
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON result");
    assert_eq!(body["metrics"]["kind"], "sim_metrics");
    assert!(body["metrics"]["rate_recomputes"].as_u64().unwrap() > 0);
    assert_eq!(
        body["metrics"]["flows_finished"].as_u64(),
        body["flows"].as_u64()
    );

    // The trace file is valid JSONL and satisfies the replay oracle.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    std::fs::remove_file(&trace_path).ok();
    let events = exaflow::sim::parse_jsonl(&text).expect("trace parses as JSONL");
    let summary = exaflow::sim::check_trace(&events).expect("trace passes the oracle");
    assert_eq!(summary.flows_finished, body["flows"].as_u64().unwrap());
    assert_eq!(summary.flows_skipped, 0);
}

#[test]
fn run_without_trace_emits_no_metrics_key() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["run", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            br#"{"topology": {"topology": "torus", "dims": [4, 4]},
                "workload": {"workload": "reduce", "tasks": 8, "bytes": 1024}}"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    // Tracing off must leave the result document byte-compatible with
    // pre-tracing output: not even a `"metrics": null` placeholder.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("metrics"), "stdout: {text}");
}

#[test]
fn run_threads_flag_sets_pool_size_and_keeps_results_identical() {
    use std::io::Write;
    let config = br#"{"topology": {"topology": "torus", "dims": [4, 4]},
        "workload": {"workload": "all_reduce", "tasks": 16, "bytes": 65536}}"#;
    let trace_path =
        std::env::temp_dir().join(format!("exaflow-threads-{}.jsonl", std::process::id()));
    let mut bodies = Vec::new();
    for threads in ["1", "2"] {
        let mut child = exaflow()
            .args(["run", "-", "--threads", threads])
            .args(["--trace", trace_path.to_str().unwrap()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child.stdin.as_mut().unwrap().write_all(config).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let body: serde_json::Value =
            serde_json::from_slice(&out.stdout).expect("valid JSON result");
        assert_eq!(
            body["metrics"]["solver_threads"].as_u64(),
            Some(threads.parse().unwrap())
        );
        bodies.push(body);
    }
    std::fs::remove_file(&trace_path).ok();
    // Physics is thread-count independent.
    assert_eq!(bodies[0]["makespan_seconds"], bodies[1]["makespan_seconds"]);
    assert_eq!(bodies[0]["flows"], bodies[1]["flows"]);
}

#[test]
fn run_rejects_zero_threads() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["run", "-", "--threads", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // The child rejects the flag without reading stdin, so it may already
    // have exited: a broken pipe here is expected, not a failure.
    let _ = child.stdin.as_mut().unwrap().write_all(b"{}");
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads"), "stderr: {err}");
}

#[test]
fn run_rejects_unknown_flag() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["run", "-", "--frobnicate"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // See run_rejects_zero_threads: the early-exiting child may close the
    // pipe before this write lands.
    let _ = child.stdin.as_mut().unwrap().write_all(b"{}");
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("frobnicate"), "stderr: {err}");
}

#[test]
fn run_rejects_bad_config() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["run", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"{ nonsense")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn run_prints_structured_error_json() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["run", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Well-formed JSON, inconsistent experiment: 64 tasks on 16 endpoints.
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            br#"{"topology": {"topology": "torus", "dims": [4, 4]},
                "workload": {"workload": "all_reduce", "tasks": 64, "bytes": 1024}}"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    // stdout carries the typed error as JSON, matchable on `error.kind`.
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid error JSON");
    assert_eq!(body["error"]["kind"], "too_many_tasks");
    assert_eq!(body["error"]["tasks"], 64);
    assert_eq!(body["error"]["endpoints"], 16);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("64 tasks"), "stderr: {err}");
}

#[test]
fn run_reports_invalid_sim_config_kind() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["run", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // A negative NIC rate is caught at the JSON boundary by the SimConfig
    // deserializer and reported as a parse error naming the field.
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            br#"{"topology": {"topology": "torus", "dims": [4, 4]},
                "workload": {"workload": "reduce", "tasks": 8, "bytes": 1024},
                "sim": {"injection_bps": -5.0, "ejection_bps": 1e10,
                        "batch_epsilon": 1e-9, "record_flow_times": false,
                        "cache_routes": true, "route_cache_cap": 1024}}"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("injection_bps"), "stderr: {err}");
}

#[test]
fn topo_reports_stats() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["topo", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            br#"{"topology": {"topology": "fattree", "k": 4, "n": 2},
                "workload": {"workload": "reduce", "tasks": 8, "bytes": 1}}"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("16 endpoints"));
    assert!(body.contains("diameter 4"));
}

/// Shape of the `exaflow sweep` stdout document, for round-tripping.
#[derive(serde::Deserialize)]
struct Sweep {
    results: Vec<Result<exaflow::ExperimentResult, exaflow::ExperimentError>>,
    report: exaflow::SuiteReport,
}

const SWEEP_SUITE: &str = r#"[
  {"topology": {"topology": "torus", "dims": [4, 4]},
   "workload": {"workload": "all_reduce", "tasks": 8, "bytes": 65536}},
  {"topology": {"topology": "torus", "dims": [4, 4]},
   "workload": {"workload": "all_reduce", "tasks": 64, "bytes": 65536}},
  {"topology": {"topology": "fattree", "k": 4, "n": 2},
   "workload": {"workload": "reduce", "tasks": 16, "bytes": 65536}}
]"#;

#[test]
fn sweep_runs_suite_from_file() {
    let path = std::env::temp_dir().join(format!("exaflow-sweep-{}.json", std::process::id()));
    std::fs::write(&path, SWEEP_SUITE).unwrap();
    let out = exaflow()
        .args(["sweep", path.to_str().unwrap(), "--threads", "2"])
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    // One entry ends in a typed error, so the sweep exits 3 — scripted
    // callers see the partial failure without scraping stderr.
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The printed document round-trips into results + suite metrics.
    let sweep: Sweep = serde_json::from_slice(&out.stdout).expect("valid sweep JSON");
    assert_eq!(sweep.results.len(), 3);
    assert!(sweep.results[0].is_ok());
    // 64 tasks don't fit a 16-endpoint torus: a typed Err entry, not an
    // abort.
    let err = sweep.results[1].as_ref().unwrap_err();
    assert!(
        matches!(
            err,
            exaflow::ExperimentError::TooManyTasks {
                tasks: 64,
                endpoints: 16,
                ..
            }
        ),
        "unexpected error: {err:?}"
    );
    assert!(err.to_string().contains("64 tasks"), "{err}");
    assert!(sweep.results[2].is_ok());
    assert_eq!(sweep.report.experiments, 3);
    assert_eq!(sweep.report.succeeded, 2);
    assert_eq!(sweep.report.failed, 1);
    assert_eq!(sweep.report.threads, 2);
    assert_eq!(sweep.report.per_experiment_wall_seconds.len(), 3);

    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("2/3 experiments succeeded"), "stderr: {err}");
}

#[test]
fn sweep_with_metrics_aggregates_into_suite_report() {
    let path = std::env::temp_dir().join(format!("exaflow-sweepm-{}.json", std::process::id()));
    std::fs::write(&path, SWEEP_SUITE).unwrap();
    let out = exaflow()
        .args([
            "sweep",
            path.to_str().unwrap(),
            "--metrics",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(3)); // the oversubscribed entry still errors
    let sweep: Sweep = serde_json::from_slice(&out.stdout).expect("valid sweep JSON");
    // Each successful experiment carries its own metrics snapshot...
    for res in sweep.results.iter().flatten() {
        let m = res.metrics.as_ref().expect("per-experiment metrics");
        assert_eq!(m.flows_finished, res.flows);
    }
    // ...and the suite report rolls them up.
    let rollup = sweep.report.metrics.expect("suite metrics rollup");
    assert_eq!(rollup.experiments_with_metrics, 2);
    let total: u64 = sweep.results.iter().flatten().map(|r| r.flows).sum();
    assert_eq!(rollup.flows_finished, total);
    assert!(rollup.rate_recomputes > 0);
    assert!(rollup.peak_resource_utilization > 0.99);

    // Without --metrics the same suite emits no metrics at all.
    std::fs::write(&path, SWEEP_SUITE).unwrap();
    let out = exaflow()
        .args(["sweep", path.to_str().unwrap(), "--threads", "2"])
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!String::from_utf8_lossy(&out.stdout).contains("metrics"));
}

#[test]
fn sweep_over_requested_failures_is_a_typed_error() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["sweep", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // 50 cable failures cannot be applied to a 4x4 torus (32 cables, and
    // the last link of a node is never removed). That is an inconsistent
    // spec, not a best-effort request: the entry fails with a typed
    // `invalid_failures` error and the sweep exits non-zero.
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            br#"[{"topology": {"topology": "torus", "dims": [4, 4]},
                 "workload": {"workload": "reduce", "tasks": 1, "bytes": 1},
                 "failures": {"count": 50, "seed": 9}}]"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let sweep: Sweep = serde_json::from_slice(&out.stdout).expect("valid sweep JSON");
    let err = sweep.results[0].as_ref().unwrap_err();
    assert!(
        matches!(err, exaflow::ExperimentError::InvalidFailures { .. }),
        "unexpected error: {err:?}"
    );
    assert!(err.to_string().contains("50"), "{err}");
    assert_eq!(sweep.report.failed, 1);
}

#[test]
fn sweep_rejects_malformed_json() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["sweep", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"[{ nonsense")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse suite"), "stderr: {err}");
}

#[test]
fn sweep_empty_suite_succeeds() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["sweep", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"[]").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let sweep: Sweep = serde_json::from_slice(&out.stdout).expect("valid sweep JSON");
    assert!(sweep.results.is_empty());
    assert_eq!(sweep.report.experiments, 0);
}

#[test]
fn sweep_rejects_bad_thread_count() {
    let out = exaflow()
        .args(["sweep", "-", "--threads", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads"), "stderr: {err}");
}

const RESILIENCE_SPEC: &str = r#"{
  "base": {"topology": {"topology": "torus", "dims": [4, 4]},
           "workload": {"workload": "all_reduce", "tasks": 16, "bytes": 65536}},
  "fault_rates_per_s": [0.0, 200.0],
  "policies": ["reroute_resume", "skip_unreachable"],
  "replicas": 2,
  "seed": 7
}"#;

fn run_resilience(spec: &str, extra: &[&str]) -> std::process::Output {
    use std::io::Write;
    let mut args = vec!["resilience", "-"];
    args.extend_from_slice(extra);
    let mut child = exaflow()
        .args(&args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(spec.as_bytes())
        .unwrap();
    child.wait_with_output().unwrap()
}

#[test]
fn resilience_runs_campaign_and_prints_kind_tagged_report() {
    let out = run_resilience(RESILIENCE_SPEC, &["--threads", "2"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid resilience JSON");
    assert_eq!(body["kind"], "resilience_campaign");
    let report = &body["report"];
    assert_eq!(report["total_runs"], 8); // 2 rates x 2 policies x 2 replicas
    assert_eq!(report["failed_runs"], 0);
    assert!(report["baseline_makespan_seconds"].as_f64().unwrap() > 0.0);
    let cells = report["cells"].as_array().unwrap();
    assert_eq!(cells.len(), 4);
    // Zero-rate cells reproduce the baseline exactly.
    for cell in cells.iter().filter(|c| c["fault_rate_per_s"] == 0.0) {
        assert_eq!(cell["inflation_mean"], 1.0, "{cell:?}");
        assert_eq!(cell["delivered_flow_fraction"], 1.0, "{cell:?}");
        assert_eq!(cell["mean_fault_events"], 0.0, "{cell:?}");
    }
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("8 runs"), "stderr: {err}");
}

#[test]
fn resilience_output_is_identical_across_thread_counts() {
    let serial = run_resilience(RESILIENCE_SPEC, &["--threads", "1"]);
    let parallel = run_resilience(RESILIENCE_SPEC, &["--threads", "8"]);
    assert!(serial.status.success());
    assert!(parallel.status.success());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "campaign stdout must be bit-identical across thread counts"
    );
}

#[test]
fn resilience_rejects_invalid_campaign_with_typed_error() {
    // replicas: 0 is caught by campaign validation, not serde.
    let spec = r#"{
      "base": {"topology": {"topology": "torus", "dims": [4, 4]},
               "workload": {"workload": "reduce", "tasks": 8, "bytes": 1024}},
      "fault_rates_per_s": [1.0],
      "replicas": 0,
      "seed": 1
    }"#;
    let out = run_resilience(spec, &[]);
    assert_eq!(out.status.code(), Some(1));
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid error JSON");
    assert_eq!(body["error"]["kind"], "invalid_campaign");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("replicas"), "stderr: {err}");
}

#[test]
fn resilience_rejects_malformed_json() {
    let out = run_resilience("{ nonsense", &[]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse campaign"), "stderr: {err}");
}

#[test]
fn unknown_command_exits_2() {
    let out = exaflow().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

// --------------------------------------------------------------------------
// Crash-safe campaign tests (journaling, retries, kill-and-resume). All
// named `campaign_*` so the check script can gate on them as a group.
// --------------------------------------------------------------------------

/// A sweep whose entries each take on the order of a second in a debug
/// build: slow enough that a kill lands mid-campaign, fast enough for CI.
/// Seeds differ so every entry has a distinct journal fingerprint.
fn slow_suite_json(entries: usize) -> String {
    let configs: Vec<String> = (0..entries)
        .map(|i| {
            format!(
                r#"{{"topology": {{"topology": "torus", "dims": [12, 12]}},
                    "workload": {{"workload": "unstructured_app", "tasks": 144,
                                  "flows_per_task": 10, "bytes": 1048576, "seed": {}}}}}"#,
                i + 1
            )
        })
        .collect();
    format!("[{}]", configs.join(","))
}

fn tmpfile(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("exaflow-cli-{tag}-{}", std::process::id()))
}

/// Strip every wall-clock-derived field from a sweep document, leaving
/// only the deterministic surface (results, counters, report tallies).
/// `threads` goes too: it echoes the invocation's `--threads`, and the
/// resume runs here deliberately use a different pool size to prove the
/// report does not depend on it.
fn scrub_wall_fields(v: &serde_json::Value) -> serde_json::Value {
    use serde_json::{Map, Value};
    match v {
        Value::Object(map) => {
            let mut out = Map::new();
            for (k, val) in map.iter() {
                let wall_derived = matches!(
                    k.as_str(),
                    "wall_seconds"
                        | "experiment_wall_seconds"
                        | "events_per_second"
                        | "per_experiment_wall_seconds"
                        | "solver_seconds_total"
                        | "threads"
                );
                if !wall_derived {
                    out.insert(k.clone(), scrub_wall_fields(val));
                }
            }
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(items.iter().map(scrub_wall_fields).collect()),
        leaf => leaf.clone(),
    }
}

fn scrubbed(stdout: &[u8]) -> String {
    let v: serde_json::Value = serde_json::from_slice(stdout).expect("valid sweep JSON");
    serde_json::to_string(&scrub_wall_fields(&v)).unwrap()
}

fn count_complete_lines(path: &std::path::Path) -> usize {
    std::fs::read_to_string(path)
        .map(|text| text.matches('\n').count())
        .unwrap_or(0)
}

/// The tentpole end-to-end scenario: SIGKILL a journaled sweep mid-flight,
/// resume it, and require the deterministic report surface to be identical
/// to an uninterrupted run's.
#[test]
fn campaign_kill_and_resume_reconstructs_the_report() {
    let suite_path = tmpfile("kill-suite.json");
    let journal_path = tmpfile("kill-journal.jsonl");
    std::fs::write(&suite_path, slow_suite_json(6)).unwrap();

    // Reference: the same sweep, uninterrupted (journal to a throwaway).
    let ref_journal = tmpfile("kill-ref-journal.jsonl");
    let reference = exaflow()
        .args(["sweep", suite_path.to_str().unwrap(), "--threads", "1"])
        .args(["--journal", ref_journal.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        reference.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    assert_eq!(count_complete_lines(&ref_journal), 6);

    // Victim: kill it the moment the journal shows completed entries but
    // before the campaign can possibly have finished.
    let mut child = exaflow()
        .args(["sweep", suite_path.to_str().unwrap(), "--threads", "1"])
        .args(["--journal", journal_path.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while count_complete_lines(&journal_path) < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "journal never gained a complete line"
        );
        if child.try_wait().unwrap().is_some() {
            break; // finished before we could kill it; resume still works
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    child.kill().ok(); // SIGKILL on unix: no cleanup, no flushing
    child.wait().unwrap();
    let survived = count_complete_lines(&journal_path);
    assert!(
        survived >= 1,
        "at least one outcome must have been journaled before the kill"
    );

    // Resume and compare against the uninterrupted run.
    let resumed = exaflow()
        .args(["sweep", suite_path.to_str().unwrap(), "--threads", "2"])
        .args(["--journal", journal_path.to_str().unwrap(), "--resume"])
        .output()
        .unwrap();
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(count_complete_lines(&journal_path), 6, "journal healed");
    assert_eq!(
        scrubbed(&resumed.stdout),
        scrubbed(&reference.stdout),
        "resumed report must match the uninterrupted run on every \
         deterministic field"
    );

    for p in [&suite_path, &journal_path, &ref_journal] {
        std::fs::remove_file(p).ok();
    }
}

/// A journal whose final line was torn by a crash mid-write must resume
/// cleanly: the torn line is discarded, its experiment re-runs, and the
/// report still matches an uninterrupted run.
#[test]
fn campaign_torn_journal_resumes_cleanly() {
    let suite_path = tmpfile("torn-suite.json");
    let journal_path = tmpfile("torn-journal.jsonl");
    std::fs::write(&suite_path, SWEEP_SUITE).unwrap();

    let reference = exaflow()
        .args(["sweep", suite_path.to_str().unwrap(), "--threads", "1"])
        .args(["--journal", journal_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(reference.status.code(), Some(3)); // one TooManyTasks entry
    assert_eq!(count_complete_lines(&journal_path), 3);

    // Tear the final line as an interrupted write would.
    let text = std::fs::read_to_string(&journal_path).unwrap();
    std::fs::write(&journal_path, &text[..text.len() - 23]).unwrap();

    let resumed = exaflow()
        .args(["sweep", suite_path.to_str().unwrap(), "--threads", "2"])
        .args(["--journal", journal_path.to_str().unwrap(), "--resume"])
        .output()
        .unwrap();
    assert_eq!(resumed.status.code(), Some(3));
    assert_eq!(count_complete_lines(&journal_path), 3, "journal healed");
    assert_eq!(scrubbed(&resumed.stdout), scrubbed(&reference.stdout));

    std::fs::remove_file(&suite_path).ok();
    std::fs::remove_file(&journal_path).ok();
}

/// Full sim object with the workspace defaults, ready for extra budget
/// fields — the strict SimConfig deserializer takes all or nothing.
fn sim_json(extra: &str) -> String {
    format!(
        r#"{{"injection_bps": 1e10, "ejection_bps": 1e10, "batch_epsilon": 1e-9,
            "record_flow_times": true, "cache_routes": true, "route_cache_cap": 4096{}{extra}}}"#,
        if extra.is_empty() { "" } else { ", " }
    )
}

/// An exhausted event budget is a deterministic, typed per-entry error:
/// exit 3 (failed), never retried, never quarantined.
#[test]
fn campaign_event_budget_is_a_typed_error_not_a_retry() {
    use std::io::Write;
    let suite = format!(
        r#"[{{"topology": {{"topology": "torus", "dims": [4, 4]}},
             "workload": {{"workload": "all_reduce", "tasks": 16, "bytes": 65536}},
             "sim": {}}}]"#,
        sim_json(r#""max_events": 3"#)
    );
    let mut child = exaflow()
        .args(["sweep", "-", "--retries", "4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(suite.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let err = &body["results"][0]["Err"];
    assert_eq!(err["kind"], "sim");
    assert_eq!(err["sim"]["kind"], "budget_exhausted");
    assert_eq!(err["sim"]["max_events"], 3);
    assert_eq!(body["report"]["retries"], 0, "deterministic: no retries");
    assert_eq!(body["report"]["quarantined"], 0);
}

/// A wall-clock deadline overrun is transient: with --retries it is
/// re-attempted, then quarantined with its attempt history, and the sweep
/// exits 4 so schedulers can tell "needs investigation" from "failed".
#[test]
fn campaign_deadline_overruns_quarantine_and_exit_4() {
    use std::io::Write;
    let suite = format!(
        r#"[{{"topology": {{"topology": "torus", "dims": [4, 4]}},
             "workload": {{"workload": "all_reduce", "tasks": 16, "bytes": 65536}},
             "sim": {}}},
           {{"topology": {{"topology": "torus", "dims": [4, 4]}},
             "workload": {{"workload": "all_reduce", "tasks": 8, "bytes": 65536}}}}]"#,
        sim_json(r#""max_wall_s": 1e-12"#)
    );
    let mut child = exaflow()
        .args(["sweep", "-", "--retries", "2", "--threads", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(suite.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    let err = &body["results"][0]["Err"];
    assert_eq!(err["kind"], "quarantined");
    let attempts = err["attempts"].as_array().unwrap();
    assert_eq!(attempts.len(), 3, "1 initial + 2 retries");
    for attempt in attempts {
        assert_eq!(attempt["kind"], "sim");
        assert_eq!(attempt["sim"]["kind"], "deadline_exceeded");
    }
    assert!(
        body["results"][1]["Ok"].as_object().is_some(),
        "neighbour unaffected"
    );
    assert_eq!(body["report"]["retries"], 2);
    assert_eq!(body["report"]["quarantined"], 1);
    let err_text = String::from_utf8_lossy(&out.stderr);
    assert!(err_text.contains("quarantined"), "stderr: {err_text}");
}

/// Resilience reports carry no wall-clock fields, so a resumed campaign
/// must reproduce the uninterrupted stdout *byte for byte* — both from a
/// complete journal and from one torn mid-line.
#[test]
fn campaign_resilience_resume_is_bit_identical() {
    let journal_path = tmpfile("res-journal.jsonl");
    let jflag = journal_path.to_str().unwrap().to_owned();

    let reference = run_resilience(RESILIENCE_SPEC, &["--threads", "2", "--journal", &jflag]);
    assert!(
        reference.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&reference.stderr)
    );
    // baseline + 2 rates x 2 policies x 2 replicas
    assert_eq!(count_complete_lines(&journal_path), 9);

    // Complete journal: pure replay.
    let resumed = run_resilience(
        RESILIENCE_SPEC,
        &["--threads", "1", "--journal", &jflag, "--resume"],
    );
    assert!(resumed.status.success());
    assert_eq!(
        resumed.stdout, reference.stdout,
        "replay must be bit-identical"
    );

    // Torn journal: drop the tail mid-line, resume re-runs the remainder.
    let text = std::fs::read_to_string(&journal_path).unwrap();
    let fourth_newline = text
        .match_indices('\n')
        .nth(3)
        .map(|(i, _)| i)
        .expect("at least four journal lines");
    std::fs::write(&journal_path, &text[..fourth_newline + 9]).unwrap();
    let resumed = run_resilience(
        RESILIENCE_SPEC,
        &["--threads", "4", "--journal", &jflag, "--resume"],
    );
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        resumed.stdout, reference.stdout,
        "torn-journal resume must be bit-identical"
    );
    assert_eq!(count_complete_lines(&journal_path), 9, "journal healed");

    std::fs::remove_file(&journal_path).ok();
}

/// `--resume` without `--journal` is a usage error, for sweep and
/// resilience alike.
#[test]
fn campaign_resume_requires_a_journal() {
    for cmd in ["sweep", "resilience"] {
        let out = exaflow().args([cmd, "-", "--resume"]).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{cmd}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--journal"), "{cmd} stderr: {err}");
    }
}

/// Mid-journal corruption (not a torn tail) must fail loudly instead of
/// silently shortening the campaign.
#[test]
fn campaign_corrupt_journal_is_a_loud_error() {
    let suite_path = tmpfile("corrupt-suite.json");
    let journal_path = tmpfile("corrupt-journal.jsonl");
    std::fs::write(&suite_path, SWEEP_SUITE).unwrap();
    std::fs::write(&journal_path, "{\"garbage\": true}\n{\"more\": 1}\n").unwrap();

    let out = exaflow()
        .args(["sweep", suite_path.to_str().unwrap()])
        .args(["--journal", journal_path.to_str().unwrap(), "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("journal"), "stderr: {err}");

    std::fs::remove_file(&suite_path).ok();
    std::fs::remove_file(&journal_path).ok();
}

// --------------------------------------------------------------------------
// Topology-cache tests: the shared cache must be invisible on stdout
// (bit-identical reports) and visible only on stderr. Named `campaign_*`
// so the check script gates them with the crash-safety group.
// --------------------------------------------------------------------------

/// A sweep built to exercise the cache: six entries over two topology
/// specs, including full-population spellings that must share a cache key.
const CACHED_SWEEP: &str = r#"[
  {"topology": {"topology": "torus", "dims": [4, 4]},
   "workload": {"workload": "all_reduce", "tasks": 16, "bytes": 65536}},
  {"topology": {"topology": "torus", "dims": [4, 4]},
   "workload": {"workload": "reduce", "tasks": 8, "bytes": 65536}},
  {"topology": {"topology": "torus", "dims": [4, 4]},
   "workload": {"workload": "unstructured_app", "tasks": 8,
                "flows_per_task": 2, "bytes": 65536, "seed": 3},
   "failures": {"count": 1, "seed": 3}},
  {"topology": {"topology": "fattree", "k": 4, "n": 2},
   "workload": {"workload": "reduce", "tasks": 16, "bytes": 65536}},
  {"topology": {"topology": "fattree", "k": 4, "n": 2, "endpoints": 16},
   "workload": {"workload": "reduce", "tasks": 16, "bytes": 65536}},
  {"topology": {"topology": "torus", "dims": [4, 4]},
   "workload": {"workload": "all_reduce", "tasks": 16, "bytes": 131072}}
]"#;

/// Sweep stdout must be bit-identical (after wall-clock scrubbing) with
/// the cache on (default) and off (`--topo-cache 0`), serial and 8-way;
/// the cache announces itself only on stderr, and only when enabled.
#[test]
fn campaign_sweep_topo_cache_is_invisible_on_stdout() {
    let suite_path = tmpfile("topocache-suite.json");
    std::fs::write(&suite_path, CACHED_SWEEP).unwrap();
    for threads in ["1", "8"] {
        let off = exaflow()
            .args(["sweep", suite_path.to_str().unwrap(), "--threads", threads])
            .args(["--topo-cache", "0"])
            .output()
            .unwrap();
        let on = exaflow()
            .args(["sweep", suite_path.to_str().unwrap(), "--threads", threads])
            .output()
            .unwrap();
        assert!(off.status.success() && on.status.success());
        assert_eq!(
            scrubbed(&on.stdout),
            scrubbed(&off.stdout),
            "threads {threads}: sweep stdout must not depend on the topology cache"
        );
        let err_on = String::from_utf8_lossy(&on.stderr);
        let err_off = String::from_utf8_lossy(&off.stderr);
        // 6 entries, 2 distinct topologies: the fattree full-population
        // spellings normalize onto one key, so 2 misses and 4 hits.
        assert!(
            err_on.contains("topo-cache 4 hit(s), 2 miss(es)"),
            "threads {threads}: stderr: {err_on}"
        );
        assert!(
            !err_off.contains("topo-cache"),
            "threads {threads}: disabled cache must stay silent: {err_off}"
        );
    }
    std::fs::remove_file(&suite_path).ok();
}

/// Resilience campaign stdout is wall-clock free, so cache-on and
/// cache-off must match byte-for-byte, serial and parallel.
#[test]
fn campaign_resilience_topo_cache_is_invisible_on_stdout() {
    for threads in ["1", "8"] {
        let off = run_resilience(
            RESILIENCE_SPEC,
            &["--threads", threads, "--topo-cache", "0"],
        );
        let on = run_resilience(RESILIENCE_SPEC, &["--threads", threads]);
        assert!(off.status.success() && on.status.success());
        assert_eq!(
            on.stdout, off.stdout,
            "threads {threads}: campaign stdout must be byte-identical cache on/off"
        );
        let err_on = String::from_utf8_lossy(&on.stderr);
        assert!(
            err_on.contains("topo-cache") && err_on.contains("hit(s)"),
            "threads {threads}: stderr: {err_on}"
        );
        assert!(!String::from_utf8_lossy(&off.stderr).contains("topo-cache"));
    }
}

/// Satellite of the crash-safety story: SIGKILL a sweep running with a
/// *warm* cache, resume with the cache *disabled* (cold), and require the
/// deterministic report surface to match an uninterrupted cache-off run —
/// the journal layer and the cache layer must not interfere.
#[test]
fn campaign_kill_warm_cache_resume_cold_reconstructs_the_report() {
    let suite_path = tmpfile("topocache-kill-suite.json");
    let journal_path = tmpfile("topocache-kill-journal.jsonl");
    std::fs::write(&suite_path, slow_suite_json(4)).unwrap();

    // Reference: uninterrupted, cache off.
    let ref_journal = tmpfile("topocache-kill-ref-journal.jsonl");
    let reference = exaflow()
        .args(["sweep", suite_path.to_str().unwrap(), "--threads", "1"])
        .args(["--journal", ref_journal.to_str().unwrap()])
        .args(["--topo-cache", "0"])
        .output()
        .unwrap();
    assert!(
        reference.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&reference.stderr)
    );

    // Victim: default (warm) cache, killed once the journal has entries.
    let mut child = exaflow()
        .args(["sweep", suite_path.to_str().unwrap(), "--threads", "1"])
        .args(["--journal", journal_path.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while count_complete_lines(&journal_path) < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "journal never gained a complete line"
        );
        if child.try_wait().unwrap().is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    child.kill().ok();
    child.wait().unwrap();

    // Resume with the cache disabled: cold rebuilds, same results.
    let resumed = exaflow()
        .args(["sweep", suite_path.to_str().unwrap(), "--threads", "2"])
        .args(["--journal", journal_path.to_str().unwrap(), "--resume"])
        .args(["--topo-cache", "0"])
        .output()
        .unwrap();
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(count_complete_lines(&journal_path), 4, "journal healed");
    assert_eq!(
        scrubbed(&resumed.stdout),
        scrubbed(&reference.stdout),
        "cold-cache resume must match the uninterrupted cache-off run"
    );

    for p in [&suite_path, &journal_path, &ref_journal] {
        std::fs::remove_file(p).ok();
    }
}

/// `--topo-cache` without a valid non-negative integer is a usage error
/// for both campaign commands.
#[test]
fn campaign_rejects_bad_topo_cache_values() {
    for cmd in ["sweep", "resilience"] {
        for bad in [&["--topo-cache"][..], &["--topo-cache", "-1"][..]] {
            let mut args = vec![cmd, "-"];
            args.extend_from_slice(bad);
            let out = exaflow().args(&args).stdin(Stdio::null()).output().unwrap();
            assert_eq!(out.status.code(), Some(1), "{cmd} {bad:?}");
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(err.contains("--topo-cache"), "{cmd} stderr: {err}");
        }
    }
}

#[test]
fn analyze_emits_kind_tagged_report() {
    let out = exaflow()
        .args([
            "analyze",
            "--scale",
            "256",
            "--sources",
            "16",
            "--threads",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON report");
    assert_eq!(body["kind"], "distance_analysis");
    assert_eq!(body["scale_qfdbs"], 256);
    assert_eq!(body["requested_sources"], 16);
    let rows = body["rows"].as_array().unwrap();
    assert_eq!(rows.len(), 2, "torus + fattree by default");
    for row in rows {
        assert_eq!(row["stats"]["exact"].as_bool(), Some(false));
        assert!(row["stats"]["confidence_95"].as_f64().is_some());
    }
}

#[test]
fn analyze_all_sources_is_exact_and_thread_invariant() {
    let run = |threads: &str| {
        let out = exaflow()
            .args([
                "analyze",
                "--scale",
                "64",
                "--threads",
                threads,
                "--hybrids",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        let body: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
        body
    };
    let a = run("1");
    let b = run("4");
    // The thread count itself is recorded in the report, so compare the
    // measurement rows for bit-identity rather than the whole document.
    assert_eq!(
        a["rows"], b["rows"],
        "rows must be identical at every thread count"
    );
    let rows = a["rows"].as_array().unwrap();
    assert_eq!(rows.len(), 4, "--hybrids adds NestTree and NestGHC");
    for row in rows {
        assert_eq!(row["stats"]["exact"].as_bool(), Some(true));
        assert!(
            row["stats"]["stderr"].is_null(),
            "exact rows carry no stderr"
        );
    }
}

#[test]
fn analyze_rejects_bad_scale() {
    let out = exaflow()
        .args(["analyze", "--scale", "100"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("power of two"));
}
