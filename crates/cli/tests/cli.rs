//! End-to-end tests of the `exaflow` command-line binary.

use std::process::{Command, Stdio};

fn exaflow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exaflow"))
}

#[test]
fn help_prints_usage() {
    let out = exaflow().arg("help").output().unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("exaflow run"));
}

#[test]
fn sample_lists_and_prints() {
    let out = exaflow().arg("sample").output().unwrap();
    assert!(out.status.success());
    let list = String::from_utf8_lossy(&out.stdout);
    assert!(list.contains("allreduce-nestghc"));
    let out = exaflow().args(["sample", "sweep3d-torus"]).output().unwrap();
    assert!(out.status.success());
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("\"topology\": \"torus\""));
}

#[test]
fn unknown_sample_fails() {
    let out = exaflow().args(["sample", "nope"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn run_from_stdin_outputs_json_result() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["run", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            br#"{"topology": {"topology": "torus", "dims": [4, 4]},
                "workload": {"workload": "reduce", "tasks": 8, "bytes": 1024}}"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let body: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON result");
    assert_eq!(body["workload"], "Reduce");
    assert_eq!(body["flows"], 7);
    assert!(body["makespan_seconds"].as_f64().unwrap() > 0.0);
}

#[test]
fn run_rejects_bad_config() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["run", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"{ nonsense").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn topo_reports_stats() {
    use std::io::Write;
    let mut child = exaflow()
        .args(["topo", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            br#"{"topology": {"topology": "fattree", "k": 4, "n": 2},
                "workload": {"workload": "reduce", "tasks": 8, "bytes": 1}}"#,
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("16 endpoints"));
    assert!(body.contains("diameter 4"));
}

#[test]
fn unknown_command_exits_2() {
    let out = exaflow().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
