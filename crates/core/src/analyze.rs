//! Paper-scale distance analysis driver: build each requested topology at
//! a [`SystemScale`], sweep or sample its distance distribution with the
//! parallel engine in `exaflow_analysis`, and emit a kind-tagged report.
//!
//! This is the layer that makes [`SystemScale::PAPER`] actually runnable
//! for Table 1: topologies are built one at a time and dropped after their
//! sweep (peak memory is a single full-scale network), sources are either
//! *all* endpoints (bit-identical to the sequential exact path at any
//! thread count) or a stratified deterministic sample whose seed derives
//! from the topology spec's content fingerprint — re-running the same spec
//! always measures the same sources, and the report carries the seed so a
//! result can be reproduced from its JSON alone.

use crate::error::ExperimentError;
use crate::journal::fingerprint_value;
use crate::scale::SystemScale;
use crate::topospec::TopologySpec;
use exaflow_analysis::{distance_estimate, distance_sweep, DistanceStats};
use exaflow_topo::UpperTierKind;
use serde::{Deserialize, Serialize};

/// How many source endpoints a distance analysis measures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SourceBudget {
    /// Every endpoint: exact statistics, bit-identical to
    /// [`exaflow_analysis::distance_stats_exact`] at any thread count.
    All,
    /// A stratified deterministic sample of this many sources (estimates
    /// carry `stderr` / `confidence_95`). A budget covering every endpoint
    /// degenerates to [`SourceBudget::All`].
    Sample(usize),
}

/// One analyzed topology: its spec, the sampling seed derived from the
/// spec fingerprint, and the measured statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistanceAnalysisRow {
    /// Human-readable topology name, e.g. `Torus(64x64x32)`.
    pub topology: String,
    /// The spec the topology was built from.
    pub spec: TopologySpec,
    /// Sampling seed: the upper half of the spec's content fingerprint.
    /// Unused (but still reported) for all-sources runs.
    pub seed: u64,
    /// Measured distance statistics.
    pub stats: DistanceStats,
}

/// Kind-tagged report printed by `exaflow analyze`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DistanceAnalysisReport {
    /// Always `"distance_analysis"`.
    pub kind: String,
    /// System size every row was built at.
    pub scale_qfdbs: u64,
    /// Requested sources per topology; absent means every endpoint.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub requested_sources: Option<usize>,
    /// Worker threads used for the sweeps (statistics are identical at
    /// every thread count; only wall time changes).
    pub threads: usize,
    /// One row per analyzed topology, in input order.
    pub rows: Vec<DistanceAnalysisRow>,
}

/// Deterministic sampling seed for a spec: the upper 16 hex digits of its
/// canonical-JSON content fingerprint. Two specs share a seed iff they are
/// the same spec, so sampled results are reproducible per configuration
/// without any global RNG state.
pub fn spec_seed(spec: &TopologySpec) -> u64 {
    let fp = fingerprint_value(&serde_json::to_value(spec).expect("topology specs serialize"));
    u64::from_str_radix(&fp[..16], 16).expect("fingerprint is lowercase hex")
}

/// The Table 1 baseline specs at `scale`: the monolithic torus and the
/// standalone 3-stage fattree, plus (when `hybrids`) the paper's
/// NestTree(t=2, u=4) and NestGHC(t=2, u=4) multi-tier designs.
pub fn table1_specs(scale: SystemScale, hybrids: bool) -> Result<Vec<TopologySpec>, String> {
    let mut specs = vec![scale.torus_spec(), scale.fattree_spec()];
    if hybrids {
        specs.push(scale.nested_spec(UpperTierKind::Fattree, 2, 4)?);
        specs.push(scale.nested_spec(UpperTierKind::GeneralizedHypercube, 2, 4)?);
    }
    Ok(specs)
}

/// Build and analyze each spec at `scale` in order, dropping every
/// topology before the next is built (peak memory is one network). The
/// report is deterministic: no timestamps, no machine-dependent fields.
pub fn analyze_distances(
    scale: SystemScale,
    specs: &[TopologySpec],
    sources: SourceBudget,
    threads: usize,
) -> Result<DistanceAnalysisReport, ExperimentError> {
    let mut rows = Vec::with_capacity(specs.len());
    for spec in specs {
        let topo = spec.build()?;
        let seed = spec_seed(spec);
        let stats = match sources {
            SourceBudget::All => distance_sweep(topo.as_ref(), threads),
            SourceBudget::Sample(n) => distance_estimate(topo.as_ref(), n, seed, threads),
        };
        rows.push(DistanceAnalysisRow {
            topology: topo.name(),
            spec: spec.clone(),
            seed,
            stats,
        });
    }
    Ok(DistanceAnalysisReport {
        kind: "distance_analysis".to_string(),
        scale_qfdbs: scale.qfdbs,
        requested_sources: match sources {
            SourceBudget::All => None,
            SourceBudget::Sample(n) => Some(n),
        },
        threads,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaflow_analysis::distance_stats_exact;

    #[test]
    fn seeds_are_stable_and_spec_sensitive() {
        let s = SystemScale::new(64).unwrap();
        let a = spec_seed(&s.torus_spec());
        assert_eq!(a, spec_seed(&s.torus_spec()), "same spec, same seed");
        assert_ne!(a, spec_seed(&s.fattree_spec()), "different spec");
        assert_ne!(
            a,
            spec_seed(&SystemScale::new(128).unwrap().torus_spec()),
            "different scale"
        );
    }

    #[test]
    fn all_sources_report_matches_exact_stats() {
        let scale = SystemScale::new(64).unwrap();
        let specs = table1_specs(scale, true).unwrap();
        let report = analyze_distances(scale, &specs, SourceBudget::All, 2).unwrap();
        assert_eq!(report.kind, "distance_analysis");
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.requested_sources, None);
        for (row, spec) in report.rows.iter().zip(&specs) {
            let topo = spec.build().unwrap();
            assert_eq!(
                row.stats,
                distance_stats_exact(topo.as_ref()),
                "{}",
                row.topology
            );
            assert!(row.stats.exact);
        }
    }

    #[test]
    fn sampled_report_is_reproducible_and_flagged() {
        let scale = SystemScale::new(256).unwrap();
        let specs = table1_specs(scale, false).unwrap();
        let a = analyze_distances(scale, &specs, SourceBudget::Sample(16), 1).unwrap();
        let b = analyze_distances(scale, &specs, SourceBudget::Sample(16), 4).unwrap();
        assert_eq!(a.rows, b.rows, "thread count must not perturb sampled rows");
        assert_eq!(a.requested_sources, Some(16));
        for row in &a.rows {
            assert!(!row.stats.exact);
            assert_eq!(row.stats.sources_measured, 16);
            assert!(row.stats.stderr.is_some());
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let scale = SystemScale::new(64).unwrap();
        let specs = table1_specs(scale, false).unwrap();
        let report = analyze_distances(scale, &specs, SourceBudget::Sample(8), 1).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: DistanceAnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
