//! Typed experiment errors.
//!
//! [`ExperimentError`] is the single failure channel from
//! [`run_experiment`](crate::run_experiment) up through
//! [`ExperimentSuite`](crate::ExperimentSuite) and out of the `exaflow`
//! CLI: every way a declarative experiment can be unrunnable — a malformed
//! topology spec, an inconsistent workload/topology pairing, an invalid
//! engine config, a partitioned network — is a variant, so a bulk sweep
//! reports *which* grid points failed and *why* as structured JSON instead
//! of aborting on the first bad one.
//!
//! The `Sim` variant wraps the engine's own
//! [`SimError`](exaflow_sim::SimError) rather than flattening it to text;
//! tooling that post-processes sweep output can match on the inner `kind`.

use exaflow_sim::SimError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an experiment could not produce a result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ExperimentError {
    /// The topology spec cannot be instantiated (bad dimensions,
    /// unsupported uplink density, …).
    InvalidTopology {
        /// Human-readable reason.
        reason: String,
    },
    /// The failure-injection spec is inconsistent.
    InvalidFailures {
        /// Human-readable reason.
        reason: String,
    },
    /// A resilience campaign spec is inconsistent (no rates, no replicas,
    /// an unusable horizon, …).
    InvalidCampaign {
        /// Human-readable reason.
        reason: String,
    },
    /// The workload spec's own parameters are unusable (non-power-of-two
    /// AllReduce, a zero grid dimension, a probability outside [0, 1], …).
    InvalidWorkload {
        /// Human-readable reason.
        reason: String,
    },
    /// The mapping spec cannot place this workload on this topology
    /// (zero stride, stride pushing tasks past the last endpoint, …).
    InvalidMapping {
        /// Human-readable reason.
        reason: String,
    },
    /// The workload needs more endpoints than the topology provides.
    TooManyTasks {
        /// Tasks the workload places.
        tasks: u64,
        /// Endpoints the topology has.
        endpoints: u64,
        /// Topology display name.
        topology: String,
    },
    /// The simulation itself failed; see the wrapped [`SimError`].
    Sim {
        /// The engine-level failure.
        sim: SimError,
    },
    /// The experiment panicked (an internal invariant violation, not an
    /// input error); the suite runner isolated it to this entry.
    Panicked {
        /// Best-effort panic message.
        message: String,
    },
    /// Every attempt the suite's [`RetryPolicy`](crate::RetryPolicy)
    /// allowed failed transiently (worker panics, wall-clock deadline
    /// overruns), so the entry was quarantined instead of blocking the
    /// campaign. `attempts` holds each attempt's error in order; the last
    /// one is the terminal failure.
    Quarantined {
        /// Per-attempt errors, oldest first.
        attempts: Vec<ExperimentError>,
    },
    /// The campaign journal could not be read or written (I/O failure,
    /// mid-file corruption). A harness problem, never a measured result.
    Journal {
        /// Human-readable reason.
        reason: String,
    },
}

impl From<SimError> for ExperimentError {
    fn from(sim: SimError) -> Self {
        ExperimentError::Sim { sim }
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::InvalidTopology { reason } => {
                write!(f, "invalid topology: {reason}")
            }
            ExperimentError::InvalidFailures { reason } => {
                write!(f, "invalid failure spec: {reason}")
            }
            ExperimentError::InvalidCampaign { reason } => {
                write!(f, "invalid resilience campaign: {reason}")
            }
            ExperimentError::InvalidWorkload { reason } => {
                write!(f, "invalid workload: {reason}")
            }
            ExperimentError::InvalidMapping { reason } => {
                write!(f, "invalid mapping: {reason}")
            }
            ExperimentError::TooManyTasks {
                tasks,
                endpoints,
                topology,
            } => write!(
                f,
                "workload has {tasks} tasks but topology {topology} has only {endpoints} endpoints"
            ),
            ExperimentError::Sim { sim } => write!(f, "simulation failed: {sim}"),
            ExperimentError::Panicked { message } => write!(f, "experiment panicked: {message}"),
            ExperimentError::Quarantined { attempts } => match attempts.last() {
                Some(last) => write!(
                    f,
                    "quarantined after {} failed attempt(s); last: {last}",
                    attempts.len()
                ),
                None => write!(f, "quarantined with no recorded attempts"),
            },
            ExperimentError::Journal { reason } => write!(f, "campaign journal error: {reason}"),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Sim { sim } => Some(sim),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_errors_nest_under_their_own_tag() {
        let e = ExperimentError::from(SimError::invalid_config(
            "injection_bps",
            -1.0,
            "must be finite and > 0",
        ));
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"sim\""), "{json}");
        assert!(json.contains("\"kind\":\"invalid_config\""), "{json}");
        let back: ExperimentError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn too_many_tasks_roundtrips_and_displays() {
        let e = ExperimentError::TooManyTasks {
            tasks: 64,
            endpoints: 16,
            topology: "Torus(4x4)".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: ExperimentError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        let s = e.to_string();
        assert!(s.contains("64 tasks"), "{s}");
        assert!(s.contains("16 endpoints"), "{s}");
    }

    #[test]
    fn quarantined_roundtrips_with_nested_attempt_history() {
        let e = ExperimentError::Quarantined {
            attempts: vec![
                ExperimentError::Panicked {
                    message: "worker died".into(),
                },
                ExperimentError::from(SimError::DeadlineExceeded {
                    wall_limit_s: 0.5,
                    events: 10,
                    time: 0.1,
                    delivered_bytes: 100,
                    flows_completed: 1,
                }),
            ],
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"quarantined\""), "{json}");
        assert!(json.contains("\"kind\":\"deadline_exceeded\""), "{json}");
        let back: ExperimentError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        let s = e.to_string();
        assert!(s.contains("after 2 failed attempt(s)"), "{s}");
        assert!(s.contains("deadline"), "{s}");
    }

    #[test]
    fn journal_error_roundtrips() {
        let e = ExperimentError::Journal {
            reason: "corrupt journal line 3".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"journal\""), "{json}");
        let back: ExperimentError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert!(e.to_string().contains("journal"), "{e}");
    }

    #[test]
    fn source_chains_to_the_sim_error() {
        use std::error::Error;
        let e = ExperimentError::from(SimError::EndpointOutOfRange {
            endpoint: 9,
            num_endpoints: 4,
        });
        assert!(e.source().is_some());
        assert!(ExperimentError::Panicked {
            message: "x".into()
        }
        .source()
        .is_none());
    }
}
