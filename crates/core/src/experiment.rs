//! Declarative experiments: topology × workload × mapping × engine config.

use crate::error::ExperimentError;
use crate::topocache::TopoCache;
use crate::topospec::TopologySpec;
use exaflow_sim::{
    FaultSchedule, FaultScheduleSpec, MetricsSnapshot, RecoveryPolicy, SimConfig, SimReport,
    Simulator, TraceSink,
};
use exaflow_topo::{Degraded, Topology};
use exaflow_workloads::{TaskMapping, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Task placement policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "mapping", rename_all = "snake_case")]
#[derive(Default)]
pub enum MappingSpec {
    /// Task `i` → endpoint `i`.
    #[default]
    Linear,
    /// Task `i` → endpoint `i·stride`.
    Strided { stride: usize },
    /// Uniform random placement, collision-free.
    Random { seed: u64 },
}

impl MappingSpec {
    /// Whether this placement can host `tasks` tasks on `endpoints`
    /// endpoints, with the reason when it cannot. `tasks <= endpoints` is
    /// assumed (checked separately as [`ExperimentError::TooManyTasks`]);
    /// this covers the constraints [`build`](Self::build) would otherwise
    /// `assert!` on.
    pub fn validate(&self, tasks: usize, endpoints: usize) -> Result<(), String> {
        match *self {
            MappingSpec::Linear | MappingSpec::Random { .. } => Ok(()),
            MappingSpec::Strided { stride } => {
                if stride == 0 {
                    return Err("stride must be >= 1".into());
                }
                match tasks.checked_mul(stride) {
                    Some(span) if span <= endpoints => Ok(()),
                    _ => Err(format!(
                        "{tasks} tasks with stride {stride} exceed {endpoints} endpoints"
                    )),
                }
            }
        }
    }

    /// Materialise the mapping table.
    pub fn build(&self, tasks: usize, endpoints: usize) -> TaskMapping {
        match *self {
            MappingSpec::Linear => TaskMapping::linear(tasks, endpoints),
            MappingSpec::Strided { stride } => TaskMapping::strided(tasks, endpoints, stride),
            MappingSpec::Random { seed } => TaskMapping::random(tasks, endpoints, seed),
        }
    }
}

/// A fully-specified experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The network under test.
    pub topology: TopologySpec,
    /// The traffic.
    pub workload: WorkloadSpec,
    /// Task placement (default linear).
    #[serde(default)]
    pub mapping: MappingSpec,
    /// Engine configuration (default: 10 Gbps NICs, exact batching).
    #[serde(default = "default_sim_config")]
    pub sim: SimConfig,
    /// Optional link-failure injection (extension; see
    /// `exaflow_topo::failures`): fail `count` random cables before running.
    #[serde(default)]
    pub failures: Option<FailureSpec>,
    /// Optional *mid-run* fault injection: a schedule of link-down/link-up
    /// events consumed while the workload executes, with a recovery policy
    /// for interrupted flows. Composes with `failures` (static failures
    /// stay down for the whole run; scheduled faults come and go).
    #[serde(default)]
    pub fault_injection: Option<FaultInjectionSpec>,
}

/// Random cable failures applied to the topology before simulation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Number of duplex cables to fail.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Mid-run fault injection: what fails when, and how flows recover.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultInjectionSpec {
    /// How interrupted flows recover (default: reroute and resume).
    #[serde(default)]
    pub policy: RecoveryPolicy,
    /// The fault events: explicit, or Poisson-generated from a seed.
    pub schedule: FaultScheduleSpec,
}

fn default_sim_config() -> SimConfig {
    SimConfig::default()
}

/// The outcome of one experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Topology display name.
    pub topology: String,
    /// Workload name.
    pub workload: String,
    /// Completion time, seconds.
    pub makespan_seconds: f64,
    /// Flows simulated.
    pub flows: u64,
    /// Completion events processed.
    pub events: u64,
    /// Progressive-filling freeze iterations across all events (engine
    /// effort; absent in pre-suite result files).
    #[serde(default)]
    pub maxmin_iterations: u64,
    /// Wall-clock seconds the simulation itself took.
    pub wall_seconds: f64,
    /// Duplex cables the [`FailureSpec`] asked to fail (0 without one).
    #[serde(default)]
    pub failed_cables_requested: u64,
    /// Duplex cables actually failed. Always equals
    /// `failed_cables_requested` now that an unsatisfiable request is a
    /// typed [`ExperimentError::InvalidFailures`]; kept for result-file
    /// compatibility.
    #[serde(default)]
    pub failed_cables_applied: u64,
    /// Flows dropped by the `skip_unreachable` recovery policy (0 without
    /// mid-run fault injection).
    #[serde(default)]
    pub skipped_flows: u64,
    /// Scheduled fault events that actually fired during the run.
    #[serde(default)]
    pub fault_events_applied: u64,
    /// Water-filling passes the solver executed (effort metric; see
    /// [`exaflow_sim::SimReport::rate_recomputes`]).
    #[serde(default)]
    pub rate_recomputes: u64,
    /// Flows coalesced into identical-path solver entries (0 with
    /// `coalesce_flows` off; absent in pre-incremental result files).
    #[serde(default)]
    pub flows_coalesced: u64,
    /// Engine counters and histograms, present only when the experiment ran
    /// with tracing ([`SimConfig::trace`] or [`run_experiment_traced`]);
    /// untraced result files are byte-identical to pre-tracing ones.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsSnapshot>,
}

/// Build the topology, generate the workload, simulate, report.
///
/// Every inconsistent configuration — invalid topology parameters, a
/// malformed engine config, more tasks than endpoints, a failure spec
/// that cannot apply, a simulation-level failure — is a typed
/// [`ExperimentError`], so bulk drivers can report *which* grid point
/// failed and *why* without string matching.
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<ExperimentResult, ExperimentError> {
    run_experiment_cached_traced(cfg, None, None)
}

/// [`run_experiment`] streaming engine trace events into `sink` (when
/// given). A sink implies tracing, so the result carries
/// [`ExperimentResult::metrics`]; `cfg.sim.trace` alone collects metrics
/// without an event stream.
pub fn run_experiment_traced(
    cfg: &ExperimentConfig,
    sink: Option<&mut dyn TraceSink>,
) -> Result<ExperimentResult, ExperimentError> {
    run_experiment_cached_traced(cfg, None, sink)
}

/// [`run_experiment`] sourcing the topology from a shared [`TopoCache`]
/// (when given): campaign workers hammering the same spec build it once
/// and share the immutable result. Bit-identical to the uncached path —
/// the cache only changes *who built* the topology, never what it is.
pub fn run_experiment_cached(
    cfg: &ExperimentConfig,
    cache: Option<&TopoCache>,
) -> Result<ExperimentResult, ExperimentError> {
    run_experiment_cached_traced(cfg, cache, None)
}

/// The full-featured runner: optional topology cache, optional trace sink.
pub fn run_experiment_cached_traced(
    cfg: &ExperimentConfig,
    cache: Option<&TopoCache>,
    sink: Option<&mut dyn TraceSink>,
) -> Result<ExperimentResult, ExperimentError> {
    // Reject a malformed engine config before paying for topology
    // construction; the engine re-checks at `run` as a second line.
    cfg.sim.validate().map_err(ExperimentError::from)?;
    // Likewise reject a workload whose generator would panic: the specs
    // validate their own parameters before any DAG is built.
    cfg.workload
        .validate()
        .map_err(|reason| ExperimentError::InvalidWorkload { reason })?;
    let (built, cache_hit): (Arc<dyn Topology>, bool) = match cache {
        Some(cache) => cache.get_or_build(&cfg.topology)?,
        None => (Arc::from(cfg.topology.build()?), false),
    };
    let (mut cables_requested, mut cables_applied) = (0u64, 0u64);
    let topo: Arc<dyn Topology> = match cfg.failures {
        Some(f) => {
            if f.count == 0 {
                return Err(ExperimentError::InvalidFailures {
                    reason: "failure count must be > 0 (omit the failures field for a healthy run)"
                        .into(),
                });
            }
            // `Degraded` wraps the shared topology without mutating it: it
            // post-checks the inner (possibly table-served) nominal route
            // and detours only the pairs a down link actually affects.
            let degraded = Degraded::with_random_failures(built, f.count, f.seed);
            cables_requested = degraded.cables_requested() as u64;
            cables_applied = degraded.cables_applied() as u64;
            if cables_applied < cables_requested {
                // Silently measuring a milder scenario than configured
                // would corrupt a resilience sweep; refuse instead.
                return Err(ExperimentError::InvalidFailures {
                    reason: format!(
                        "requested {cables_requested} cable failures but only \
                         {cables_applied} cables are safely removable on {}",
                        degraded.name()
                    ),
                });
            }
            Arc::new(degraded)
        }
        None => built,
    };
    let tasks = cfg.workload.num_tasks();
    if tasks > topo.num_endpoints() {
        return Err(ExperimentError::TooManyTasks {
            tasks: tasks as u64,
            endpoints: topo.num_endpoints() as u64,
            topology: topo.name(),
        });
    }
    cfg.mapping
        .validate(tasks, topo.num_endpoints())
        .map_err(|reason| ExperimentError::InvalidMapping { reason })?;
    let mapping = cfg.mapping.build(tasks, topo.num_endpoints());
    let dag = cfg.workload.generate(&mapping);
    let started = std::time::Instant::now();
    let mut simulator = Simulator::with_config(&*topo, cfg.sim.clone());
    simulator.set_topo_cache_hit(cache_hit);
    // Normalise the two optional dimensions (fault schedule, trace sink)
    // into one dispatch so every combination reaches the same engine path.
    let (schedule, policy) = match &cfg.fault_injection {
        Some(fi) => (fi.schedule.build(topo.network())?, fi.policy),
        None => (FaultSchedule::empty(), RecoveryPolicy::default()),
    };
    let report: SimReport = match sink {
        Some(sink) => simulator.run_with_faults_traced(&dag, &schedule, policy, sink)?,
        None => simulator.run_with_faults(&dag, &schedule, policy)?,
    };
    Ok(ExperimentResult {
        topology: topo.name(),
        workload: cfg.workload.name().to_owned(),
        makespan_seconds: report.makespan_seconds,
        flows: report.flows,
        events: report.events,
        maxmin_iterations: report.maxmin_iterations,
        wall_seconds: started.elapsed().as_secs_f64(),
        failed_cables_requested: cables_requested,
        failed_cables_applied: cables_applied,
        skipped_flows: report.skipped_flows,
        fault_events_applied: report.fault_events_applied,
        rate_recomputes: report.rate_recomputes,
        flows_coalesced: report.flows_coalesced,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExperimentError;
    use exaflow_topo::UpperTierKind;

    fn reduce_cfg(topology: TopologySpec) -> ExperimentConfig {
        ExperimentConfig {
            topology,
            workload: WorkloadSpec::Reduce {
                tasks: 16,
                bytes: 1 << 20,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
            fault_injection: None,
        }
    }

    #[test]
    fn reduce_is_topology_insensitive() {
        // The paper's observation: Reduce serialises at the root's
        // consumption port, so all networks score (nearly) the same.
        let topologies = [
            TopologySpec::Torus {
                dims: vec![4, 2, 2],
            },
            TopologySpec::Fattree {
                k: 4,
                n: 2,
                endpoints: None,
            },
            TopologySpec::Nested {
                upper: UpperTierKind::GeneralizedHypercube,
                subtori: 2,
                t: 2,
                u: 2,
            },
        ];
        let times: Vec<f64> = topologies
            .iter()
            .map(|t| {
                run_experiment(&reduce_cfg(t.clone()))
                    .unwrap()
                    .makespan_seconds
            })
            .collect();
        for w in times.windows(2) {
            assert!((w[0] - w[1]).abs() / w[0] < 1e-6, "{times:?}");
        }
    }

    #[test]
    fn too_many_tasks_rejected() {
        let cfg = ExperimentConfig {
            topology: TopologySpec::Torus { dims: vec![2, 2] },
            workload: WorkloadSpec::Reduce {
                tasks: 16,
                bytes: 1,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
            fault_injection: None,
        };
        let err = run_experiment(&cfg).unwrap_err();
        assert!(
            matches!(
                err,
                ExperimentError::TooManyTasks {
                    tasks: 16,
                    endpoints: 4,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn zero_failure_count_is_invalid() {
        let mut cfg = reduce_cfg(TopologySpec::Torus { dims: vec![4, 4] });
        cfg.failures = Some(FailureSpec { count: 0, seed: 1 });
        let err = run_experiment(&cfg).unwrap_err();
        assert!(
            matches!(err, ExperimentError::InvalidFailures { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn invalid_sim_config_rejected_before_building() {
        let mut cfg = reduce_cfg(TopologySpec::Torus { dims: vec![4, 4] });
        cfg.sim.ejection_bps = f64::NEG_INFINITY;
        let err = run_experiment(&cfg).unwrap_err();
        match err {
            ExperimentError::Sim {
                sim: exaflow_sim::SimError::InvalidConfig { field, .. },
            } => assert_eq!(field, "ejection_bps"),
            other => panic!("expected nested InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn result_records_applied_failure_count() {
        let mut cfg = reduce_cfg(TopologySpec::Torus { dims: vec![4, 4] });
        cfg.workload = WorkloadSpec::Reduce {
            tasks: 8,
            bytes: 1 << 16,
        };
        cfg.failures = Some(FailureSpec { count: 2, seed: 5 });
        let res = run_experiment(&cfg).unwrap();
        assert_eq!(res.failed_cables_requested, 2);
        assert_eq!(res.failed_cables_applied, 2);

        // An oversized request is a typed error at the spec boundary — the
        // run must not silently measure a milder scenario than configured.
        cfg.workload = WorkloadSpec::Reduce { tasks: 1, bytes: 1 };
        cfg.failures = Some(FailureSpec {
            count: 1000,
            seed: 5,
        });
        let err = run_experiment(&cfg).unwrap_err();
        match err {
            ExperimentError::InvalidFailures { reason } => {
                assert!(reason.contains("1000"), "{reason}");
            }
            other => panic!("expected InvalidFailures, got {other:?}"),
        }
    }

    #[test]
    fn mapping_specs_build() {
        assert_eq!(MappingSpec::Linear.build(4, 8).node_of(3).0, 3);
        assert_eq!(
            MappingSpec::Strided { stride: 2 }.build(4, 8).node_of(3).0,
            6
        );
        let r = MappingSpec::Random { seed: 1 }.build(4, 8);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn failures_slow_things_down_but_complete() {
        let base = ExperimentConfig {
            topology: TopologySpec::Torus { dims: vec![4, 4] },
            workload: WorkloadSpec::UnstructuredApp {
                tasks: 16,
                flows_per_task: 4,
                bytes: 1 << 20,
                seed: 2,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
            fault_injection: None,
        };
        let healthy = run_experiment(&base).unwrap().makespan_seconds;
        let mut broken = base.clone();
        broken.failures = Some(FailureSpec { count: 6, seed: 3 });
        let degraded = run_experiment(&broken).unwrap().makespan_seconds;
        assert!(degraded >= healthy, "{degraded} < {healthy}");
    }

    #[test]
    fn fault_injection_with_zero_rate_matches_fault_free_run() {
        let mut cfg = reduce_cfg(TopologySpec::Torus { dims: vec![4, 4] });
        cfg.workload = WorkloadSpec::UnstructuredApp {
            tasks: 16,
            flows_per_task: 4,
            bytes: 1 << 20,
            seed: 2,
        };
        let plain = run_experiment(&cfg).unwrap();
        cfg.fault_injection = Some(FaultInjectionSpec {
            policy: RecoveryPolicy::RerouteResume,
            schedule: FaultScheduleSpec::Explicit { events: vec![] },
        });
        let faulted = run_experiment(&cfg).unwrap();
        assert_eq!(plain.makespan_seconds, faulted.makespan_seconds);
        assert_eq!(plain.events, faulted.events);
        assert_eq!(faulted.fault_events_applied, 0);
        assert_eq!(faulted.skipped_flows, 0);
    }

    #[test]
    fn fault_injection_random_schedule_perturbs_the_run() {
        let mut cfg = reduce_cfg(TopologySpec::Torus { dims: vec![4, 4] });
        cfg.workload = WorkloadSpec::UnstructuredApp {
            tasks: 16,
            flows_per_task: 8,
            bytes: 1 << 22,
            seed: 2,
        };
        let healthy = run_experiment(&cfg).unwrap();
        cfg.fault_injection = Some(FaultInjectionSpec {
            policy: RecoveryPolicy::RerouteRestart,
            schedule: FaultScheduleSpec::Random {
                seed: 11,
                rate_per_s: 500.0,
                horizon_s: healthy.makespan_seconds,
                repair_s: Some(healthy.makespan_seconds / 10.0),
            },
        });
        let faulted = run_experiment(&cfg).unwrap();
        assert!(faulted.fault_events_applied > 0);
        assert!(
            faulted.makespan_seconds >= healthy.makespan_seconds,
            "{} < {}",
            faulted.makespan_seconds,
            healthy.makespan_seconds
        );
        // Determinism: the same config reproduces the same result.
        let again = run_experiment(&cfg).unwrap();
        assert_eq!(faulted.makespan_seconds, again.makespan_seconds);
        assert_eq!(faulted.fault_events_applied, again.fault_events_applied);
    }

    #[test]
    fn fault_injection_composes_with_static_failures() {
        let mut cfg = reduce_cfg(TopologySpec::Torus { dims: vec![4, 4] });
        cfg.workload = WorkloadSpec::UnstructuredApp {
            tasks: 16,
            flows_per_task: 4,
            bytes: 1 << 20,
            seed: 7,
        };
        cfg.failures = Some(FailureSpec { count: 2, seed: 3 });
        cfg.fault_injection = Some(FaultInjectionSpec {
            policy: RecoveryPolicy::SkipUnreachable,
            schedule: FaultScheduleSpec::Random {
                seed: 4,
                rate_per_s: 500.0,
                horizon_s: 0.1,
                repair_s: Some(0.01),
            },
        });
        let res = run_experiment(&cfg).unwrap();
        assert_eq!(res.failed_cables_applied, 2);
        assert!(res.makespan_seconds > 0.0);
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = reduce_cfg(TopologySpec::Torus { dims: vec![4, 4] });
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn default_fields_optional_in_json() {
        let json = r#"{
            "topology": {"topology": "torus", "dims": [4, 4]},
            "workload": {"workload": "reduce", "tasks": 8, "bytes": 100}
        }"#;
        let cfg: ExperimentConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.mapping, MappingSpec::Linear);
        assert_eq!(cfg.failures, None);
        let res = run_experiment(&cfg).unwrap();
        assert_eq!(res.workload, "Reduce");
        assert_eq!(res.flows, 7);
    }
}
