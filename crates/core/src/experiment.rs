//! Declarative experiments: topology × workload × mapping × engine config.

use crate::topospec::TopologySpec;
use exaflow_sim::{SimConfig, SimReport, Simulator};
use exaflow_topo::{Degraded, Topology};
use exaflow_workloads::{TaskMapping, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Task placement policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "mapping", rename_all = "snake_case")]
#[derive(Default)]
pub enum MappingSpec {
    /// Task `i` → endpoint `i`.
    #[default]
    Linear,
    /// Task `i` → endpoint `i·stride`.
    Strided { stride: usize },
    /// Uniform random placement, collision-free.
    Random { seed: u64 },
}

impl MappingSpec {
    /// Materialise the mapping table.
    pub fn build(&self, tasks: usize, endpoints: usize) -> TaskMapping {
        match *self {
            MappingSpec::Linear => TaskMapping::linear(tasks, endpoints),
            MappingSpec::Strided { stride } => TaskMapping::strided(tasks, endpoints, stride),
            MappingSpec::Random { seed } => TaskMapping::random(tasks, endpoints, seed),
        }
    }
}

/// A fully-specified experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The network under test.
    pub topology: TopologySpec,
    /// The traffic.
    pub workload: WorkloadSpec,
    /// Task placement (default linear).
    #[serde(default)]
    pub mapping: MappingSpec,
    /// Engine configuration (default: 10 Gbps NICs, exact batching).
    #[serde(default = "default_sim_config")]
    pub sim: SimConfig,
    /// Optional link-failure injection (extension; see
    /// `exaflow_topo::failures`): fail `count` random cables before running.
    #[serde(default)]
    pub failures: Option<FailureSpec>,
}

/// Random cable failures applied to the topology before simulation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Number of duplex cables to fail.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

fn default_sim_config() -> SimConfig {
    SimConfig::default()
}

/// The outcome of one experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Topology display name.
    pub topology: String,
    /// Workload name.
    pub workload: String,
    /// Completion time, seconds.
    pub makespan_seconds: f64,
    /// Flows simulated.
    pub flows: u64,
    /// Completion events processed.
    pub events: u64,
    /// Progressive-filling freeze iterations across all events (engine
    /// effort; absent in pre-suite result files).
    #[serde(default)]
    pub maxmin_iterations: u64,
    /// Wall-clock seconds the simulation itself took.
    pub wall_seconds: f64,
}

/// Build the topology, generate the workload, simulate, report.
///
/// Returns an error for inconsistent configurations (more tasks than
/// endpoints, invalid topology parameters, …).
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<ExperimentResult, String> {
    let built = cfg.topology.build()?;
    let topo: Box<dyn Topology> = match cfg.failures {
        Some(f) => Box::new(Degraded::with_random_failures(built, f.count, f.seed)),
        None => built,
    };
    let tasks = cfg.workload.num_tasks();
    if tasks > topo.num_endpoints() {
        return Err(format!(
            "workload has {tasks} tasks but topology {} has only {} endpoints",
            topo.name(),
            topo.num_endpoints()
        ));
    }
    let mapping = cfg.mapping.build(tasks, topo.num_endpoints());
    let dag = cfg.workload.generate(&mapping);
    let started = std::time::Instant::now();
    let report: SimReport = Simulator::with_config(&topo, cfg.sim.clone()).run(&dag);
    Ok(ExperimentResult {
        topology: topo.name(),
        workload: cfg.workload.name().to_owned(),
        makespan_seconds: report.makespan_seconds,
        flows: report.flows,
        events: report.events,
        maxmin_iterations: report.maxmin_iterations,
        wall_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaflow_topo::UpperTierKind;

    fn reduce_cfg(topology: TopologySpec) -> ExperimentConfig {
        ExperimentConfig {
            topology,
            workload: WorkloadSpec::Reduce {
                tasks: 16,
                bytes: 1 << 20,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
        }
    }

    #[test]
    fn reduce_is_topology_insensitive() {
        // The paper's observation: Reduce serialises at the root's
        // consumption port, so all networks score (nearly) the same.
        let topologies = [
            TopologySpec::Torus {
                dims: vec![4, 2, 2],
            },
            TopologySpec::Fattree {
                k: 4,
                n: 2,
                endpoints: None,
            },
            TopologySpec::Nested {
                upper: UpperTierKind::GeneralizedHypercube,
                subtori: 2,
                t: 2,
                u: 2,
            },
        ];
        let times: Vec<f64> = topologies
            .iter()
            .map(|t| {
                run_experiment(&reduce_cfg(t.clone()))
                    .unwrap()
                    .makespan_seconds
            })
            .collect();
        for w in times.windows(2) {
            assert!((w[0] - w[1]).abs() / w[0] < 1e-6, "{times:?}");
        }
    }

    #[test]
    fn too_many_tasks_rejected() {
        let cfg = ExperimentConfig {
            topology: TopologySpec::Torus { dims: vec![2, 2] },
            workload: WorkloadSpec::Reduce {
                tasks: 16,
                bytes: 1,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
        };
        assert!(run_experiment(&cfg).is_err());
    }

    #[test]
    fn mapping_specs_build() {
        assert_eq!(MappingSpec::Linear.build(4, 8).node_of(3).0, 3);
        assert_eq!(
            MappingSpec::Strided { stride: 2 }.build(4, 8).node_of(3).0,
            6
        );
        let r = MappingSpec::Random { seed: 1 }.build(4, 8);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn failures_slow_things_down_but_complete() {
        let base = ExperimentConfig {
            topology: TopologySpec::Torus { dims: vec![4, 4] },
            workload: WorkloadSpec::UnstructuredApp {
                tasks: 16,
                flows_per_task: 4,
                bytes: 1 << 20,
                seed: 2,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
        };
        let healthy = run_experiment(&base).unwrap().makespan_seconds;
        let mut broken = base.clone();
        broken.failures = Some(FailureSpec { count: 6, seed: 3 });
        let degraded = run_experiment(&broken).unwrap().makespan_seconds;
        assert!(degraded >= healthy, "{degraded} < {healthy}");
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = reduce_cfg(TopologySpec::Torus { dims: vec![4, 4] });
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn default_fields_optional_in_json() {
        let json = r#"{
            "topology": {"topology": "torus", "dims": [4, 4]},
            "workload": {"workload": "reduce", "tasks": 8, "bytes": 100}
        }"#;
        let cfg: ExperimentConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.mapping, MappingSpec::Linear);
        assert_eq!(cfg.failures, None);
        let res = run_experiment(&cfg).unwrap();
        assert_eq!(res.workload, "Reduce");
        assert_eq!(res.flows, 7);
    }
}
