//! Crash-safe campaign journals: an append-only JSONL record of completed
//! experiment outcomes, keyed by a content [`fingerprint`] of the spec, so
//! a killed `exaflow sweep`/`resilience` process can be restarted with
//! `--resume` and reconstruct its final report without redoing finished
//! work.
//!
//! Design constraints, in order:
//!
//! 1. **Crash safety.** Every outcome is appended as one complete line in
//!    a single `write` the moment its experiment finalises — never
//!    buffered until the end of a batch. A `SIGKILL` can tear at most the
//!    line being written; [`read_journal`] tolerates exactly that (an
//!    unparseable *final* segment with no trailing newline) and rejects
//!    any earlier corruption loudly.
//! 2. **Stable identity.** Entries are keyed by [`fingerprint`], a hash of
//!    the spec's *canonical* JSON (object keys sorted recursively), so the
//!    key survives serde round-trips, key-order permutations, and field
//!    reordering between program versions that keep the same spec shape.
//!    It is content-addressed, not index-addressed: editing one cell of a
//!    sweep file invalidates only that cell on resume.
//! 3. **Deterministic reconstruction.** A resumed suite merges journaled
//!    outcomes with freshly-run ones in input order; every deterministic
//!    report field (results, counters, makespans) is bit-identical to an
//!    uninterrupted run. Only wall-clock-derived fields can differ.
//!
//! Duplicate configs in one sweep share a fingerprint; the journal index
//! hands out their outcomes in journaled order, one per occurrence.

use crate::error::ExperimentError;
use crate::experiment::{ExperimentConfig, ExperimentResult};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::Path;

/// One experiment outcome, `Ok` or typed `Err`, as finalised by the suite
/// runner (after any retries; a quarantined entry journals its full
/// attempt history inside [`ExperimentError::Quarantined`]).
pub type JournaledOutcome = Result<ExperimentResult, ExperimentError>;

/// One line of the journal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Content fingerprint of the [`ExperimentConfig`] this outcome
    /// belongs to (see [`fingerprint`]).
    pub fingerprint: String,
    /// The finalised outcome.
    pub outcome: JournaledOutcome,
}

/// FNV-1a over `bytes`, from an arbitrary basis (the standard 64-bit
/// offset for the low half of the fingerprint, a displaced one for the
/// high half — two independent 64-bit streams over the same input).
fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Append `value` to `out` as canonical JSON: compact, object keys sorted
/// (recursively) by byte order. Scalar leaves reuse the workspace's JSON
/// printer so numbers and string escapes are formatted exactly as the
/// serializer would, keeping the canonical form in lockstep with what
/// `serde_json::to_string` produces for the same value.
fn write_canonical(value: &serde_json::Value, out: &mut String) {
    use serde_json::Value;
    match value {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            let mut pairs: Vec<(&String, &Value)> = map.iter().collect();
            pairs.sort_unstable_by(|a, b| a.0.cmp(b.0));
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let quoted = serde_json::to_string(&Value::String((*key).clone()))
                    .expect("string serialization is infallible");
                out.push_str(&quoted);
                out.push(':');
                write_canonical(val, out);
            }
            out.push('}');
        }
        leaf => {
            out.push_str(&serde_json::to_string(leaf).expect("scalar serialization is infallible"))
        }
    }
}

/// Stable content fingerprint of an arbitrary JSON value: 128 bits (two
/// independent FNV-1a streams over the canonical JSON), printed as 32 hex
/// characters. Two values get the same fingerprint iff their canonical
/// JSON forms are byte-identical — i.e. they describe the same content
/// regardless of key order or serde round-trips. This is the keying
/// primitive shared by the campaign journal ([`fingerprint`]) and the
/// topology cache (`crate::topocache`).
pub fn fingerprint_value(value: &serde_json::Value) -> String {
    let mut canon = String::new();
    write_canonical(value, &mut canon);
    let lo = fnv1a64(canon.as_bytes(), 0xCBF2_9CE4_8422_2325);
    let hi = fnv1a64(
        canon.as_bytes(),
        0xCBF2_9CE4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15,
    );
    format!("{hi:016x}{lo:016x}")
}

/// Stable content fingerprint of an experiment spec (see
/// [`fingerprint_value`] for the hash construction).
pub fn fingerprint(cfg: &ExperimentConfig) -> String {
    let value = serde_json::to_value(cfg).expect("config serialization is infallible");
    fingerprint_value(&value)
}

/// Append-only journal writer.
///
/// Each [`record`](Journal::record) serialises the entry to one line and
/// hands the whole line (including its terminating newline) to the OS in a
/// single `write`, then flushes — so a crash between records loses
/// nothing, and a crash mid-record tears only the final line, which the
/// reader tolerates.
pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Open `path` for appending. With `truncate`, any existing contents
    /// are discarded first — a fresh campaign must not inherit entries
    /// from an unrelated earlier one (resume passes `truncate = false`).
    /// When appending, a torn final line left by a killed writer is
    /// trimmed first: appending after a partial line would weld the next
    /// record onto it and corrupt both.
    pub fn open(path: &Path, truncate: bool) -> std::io::Result<Journal> {
        if !truncate {
            if let Ok(bytes) = std::fs::read(path) {
                if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
                    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                    std::fs::OpenOptions::new()
                        .write(true)
                        .open(path)?
                        .set_len(keep as u64)?;
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(!truncate)
            .write(true)
            .truncate(truncate)
            .open(path)?;
        Ok(Journal { file })
    }

    /// Append one finalised outcome under `fingerprint`.
    pub fn record(&mut self, fingerprint: &str, outcome: &JournaledOutcome) -> std::io::Result<()> {
        let entry = JournalEntry {
            fingerprint: fingerprint.to_owned(),
            outcome: outcome.clone(),
        };
        let mut line = serde_json::to_string(&entry)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        // One write for the whole line: the journal's only torn state is a
        // partial final line, which read_journal discards.
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// Read every complete entry of a journal file.
///
/// A final segment that does not parse **and** is not newline-terminated
/// is treated as a torn write from a killed process and silently dropped;
/// an unparseable line anywhere else (or a complete-but-corrupt final
/// line) is an `InvalidData` error — mid-journal corruption must never be
/// mistaken for a shorter campaign.
pub fn read_journal(path: &Path) -> std::io::Result<Vec<JournalEntry>> {
    let text = std::fs::read_to_string(path)?;
    let complete_tail = text.ends_with('\n');
    let lines: Vec<&str> = text
        .split('\n')
        .filter(|line| !line.trim().is_empty())
        .collect();
    let mut entries = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match serde_json::from_str::<JournalEntry>(line) {
            Ok(entry) => entries.push(entry),
            Err(_) if i + 1 == lines.len() && !complete_tail => break,
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: corrupt journal line {}: {e}", path.display(), i + 1),
                ))
            }
        }
    }
    Ok(entries)
}

/// Journaled outcomes indexed by fingerprint, consumed in journaled order
/// (duplicate configs in one sweep each take the next outcome in turn).
#[derive(Debug, Default)]
pub struct JournalIndex {
    map: HashMap<String, VecDeque<JournaledOutcome>>,
    entries: usize,
}

impl JournalIndex {
    /// Load `path`, returning an empty index when the file does not exist
    /// yet (first run of a campaign started with `--resume`).
    pub fn load(path: &Path) -> std::io::Result<JournalIndex> {
        if !path.exists() {
            return Ok(JournalIndex::default());
        }
        let mut index = JournalIndex::default();
        for entry in read_journal(path)? {
            index
                .map
                .entry(entry.fingerprint)
                .or_default()
                .push_back(entry.outcome);
            index.entries += 1;
        }
        Ok(index)
    }

    /// Take the next journaled outcome for `fingerprint`, if any.
    pub fn take(&mut self, fingerprint: &str) -> Option<JournaledOutcome> {
        let taken = self.map.get_mut(fingerprint)?.pop_front();
        if taken.is_some() {
            self.entries -= 1;
        }
        taken
    }

    /// Outcomes still available.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no journaled outcome remains unclaimed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::MappingSpec;
    use crate::topospec::TopologySpec;
    use exaflow_sim::SimConfig;
    use exaflow_workloads::WorkloadSpec;

    fn cfg(tasks: usize) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::Torus { dims: vec![4, 4] },
            workload: WorkloadSpec::AllReduce {
                tasks,
                bytes: 1 << 16,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
            fault_injection: None,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("exaflow-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn fingerprint_ignores_key_order() {
        let a = cfg(8);
        // Round-trip through JSON with every object's keys reversed.
        fn reverse_keys(v: &serde_json::Value) -> serde_json::Value {
            use serde_json::{Map, Value};
            match v {
                Value::Object(map) => {
                    let mut out = Map::new();
                    let pairs: Vec<_> = map.iter().collect();
                    for (k, val) in pairs.into_iter().rev() {
                        out.insert(k.clone(), reverse_keys(val));
                    }
                    Value::Object(out)
                }
                Value::Array(items) => Value::Array(items.iter().map(reverse_keys).collect()),
                leaf => leaf.clone(),
            }
        }
        let permuted =
            serde_json::to_string(&reverse_keys(&serde_json::to_value(&a).unwrap())).unwrap();
        let b: ExperimentConfig = serde_json::from_str(&permuted).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&cfg(16)));
        assert_eq!(fingerprint(&a).len(), 32);
    }

    #[test]
    fn journal_roundtrips_ok_and_err_outcomes() {
        let path = tmp("roundtrip.jsonl");
        let ok: JournaledOutcome = Ok(crate::run_experiment(&cfg(8)).unwrap());
        let err: JournaledOutcome = Err(ExperimentError::Panicked {
            message: "boom".into(),
        });
        let mut j = Journal::open(&path, true).unwrap();
        j.record("aa", &ok).unwrap();
        j.record("bb", &err).unwrap();
        drop(j);
        let entries = read_journal(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].fingerprint, "aa");
        assert_eq!(entries[0].outcome, ok);
        assert_eq!(entries[1].outcome, err);

        // Reopening without truncation appends; with truncation resets.
        let mut j = Journal::open(&path, false).unwrap();
        j.record("cc", &err).unwrap();
        drop(j);
        assert_eq!(read_journal(&path).unwrap().len(), 3);
        Journal::open(&path, true).unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_dropped_but_midfile_corruption_is_loud() {
        let path = tmp("torn.jsonl");
        let ok: JournaledOutcome = Ok(crate::run_experiment(&cfg(8)).unwrap());
        let mut j = Journal::open(&path, true).unwrap();
        j.record("aa", &ok).unwrap();
        j.record("bb", &ok).unwrap();
        drop(j);

        // Tear the final line mid-way, as a SIGKILL mid-write would.
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 17;
        std::fs::write(&path, &text[..cut]).unwrap();
        let entries = read_journal(&path).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].fingerprint, "aa");

        // Reopening for append trims the torn tail first, so the next
        // record lands on its own line instead of welding onto the tear.
        let mut j = Journal::open(&path, false).unwrap();
        j.record("cc", &ok).unwrap();
        drop(j);
        let entries = read_journal(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].fingerprint, "cc");

        // The same garbage followed by a newline is corruption, not a tear.
        let mut with_newline = text[..cut].to_owned();
        with_newline.push('\n');
        std::fs::write(&path, &with_newline).unwrap();
        let err = read_journal(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn index_hands_out_duplicates_in_journal_order() {
        let path = tmp("dups.jsonl");
        let first: JournaledOutcome = Ok(crate::run_experiment(&cfg(8)).unwrap());
        let mut second = first.clone();
        if let Ok(r) = &mut second {
            r.flows += 1; // distinguishable copy
        }
        let mut j = Journal::open(&path, true).unwrap();
        j.record("dup", &first).unwrap();
        j.record("dup", &second).unwrap();
        drop(j);
        let mut index = JournalIndex::load(&path).unwrap();
        assert_eq!(index.len(), 2);
        assert_eq!(index.take("dup"), Some(first));
        assert_eq!(index.take("dup"), Some(second));
        assert_eq!(index.take("dup"), None);
        assert!(index.is_empty());
        assert_eq!(index.take("absent"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_loads_empty() {
        let index = JournalIndex::load(&tmp("never-created.jsonl")).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
    }
}
