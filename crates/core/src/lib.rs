//! # exaflow
//!
//! A from-scratch Rust reproduction of *"Design Exploration of Multi-tier
//! Interconnection Networks for Exascale Systems"* (ICPP 2019): a
//! flow-level network simulator, the paper's four topology families
//! (torus, fattree, NestTree, NestGHC), its eleven application-inspired
//! workloads, and the experiment harness that regenerates every table and
//! figure.
//!
//! This facade crate ties the subsystem crates together:
//!
//! * [`exaflow_netgraph`] — graph substrate,
//! * [`exaflow_topo`] — topologies and routing,
//! * [`exaflow_sim`] — the fluid flow-level engine,
//! * [`exaflow_workloads`] — workload generators,
//! * [`exaflow_system`] — ExaNeSt packaging and cost model,
//! * [`exaflow_analysis`] — distance statistics,
//!
//! and adds declarative experiment configuration ([`ExperimentConfig`]),
//! execution ([`run_experiment`]), normalisation helpers and the paper's
//! preset experiment grids ([`presets`]).
//!
//! ## Quick start
//!
//! ```
//! use exaflow::prelude::*;
//!
//! // A small NestGHC(t=2, u=4) system: 16 subtori of 2x2x2 QFDBs.
//! let topo = TopologySpec::Nested {
//!     upper: UpperTierKind::GeneralizedHypercube,
//!     subtori: 16,
//!     t: 2,
//!     u: 4,
//! }
//! .build()
//! .unwrap();
//!
//! // An 8-task AllReduce, tasks placed linearly.
//! let workload = WorkloadSpec::AllReduce { tasks: 8, bytes: 1 << 20 };
//! let mapping = TaskMapping::linear(8, topo.num_endpoints());
//! let dag = workload.generate(&mapping);
//!
//! let report = Simulator::new(topo.as_ref()).run(&dag).unwrap();
//! assert!(report.makespan_seconds > 0.0);
//! ```

pub mod analyze;
pub mod error;
pub mod experiment;
pub mod journal;
pub mod normalize;
pub mod presets;
pub mod resilience;
pub mod scale;
pub mod suite;
pub mod topocache;
pub mod topospec;

pub use analyze::{
    analyze_distances, spec_seed, table1_specs, DistanceAnalysisReport, DistanceAnalysisRow,
    SourceBudget,
};
pub use error::ExperimentError;
pub use experiment::{
    run_experiment, run_experiment_cached, run_experiment_cached_traced, run_experiment_traced,
    ExperimentConfig, ExperimentResult, FailureSpec, FaultInjectionSpec, MappingSpec,
};
pub use journal::{
    fingerprint, fingerprint_value, read_journal, Journal, JournalEntry, JournalIndex,
};
pub use normalize::{normalize_to, NormalizedRow};
pub use resilience::{
    run_resilience_campaign, run_resilience_campaign_journaled, run_resilience_campaign_with_cache,
    CellReport, ResilienceCampaignReport, ResilienceCampaignSpec,
};
pub use scale::SystemScale;
pub use suite::{scoped_map, ExperimentSuite, RetryPolicy, SuiteMetrics, SuiteReport, SuiteRun};
pub use topocache::{topology_cache_key, TopoCache, TopoCacheStats};
pub use topospec::TopologySpec;

// Re-export the subsystem crates under their natural names.
pub use exaflow_analysis as analysis;
pub use exaflow_netgraph as netgraph;
pub use exaflow_sim as sim;
pub use exaflow_system as system;
pub use exaflow_topo as topo;
pub use exaflow_workloads as workloads;

/// Everything a typical user needs.
pub mod prelude {
    pub use crate::analyze::{
        analyze_distances, spec_seed, table1_specs, DistanceAnalysisReport, DistanceAnalysisRow,
        SourceBudget,
    };
    pub use crate::error::ExperimentError;
    pub use crate::experiment::{
        run_experiment, run_experiment_cached, run_experiment_cached_traced, run_experiment_traced,
        ExperimentConfig, ExperimentResult, FailureSpec, FaultInjectionSpec, MappingSpec,
    };
    pub use crate::journal::{
        fingerprint, fingerprint_value, read_journal, Journal, JournalEntry, JournalIndex,
    };
    pub use crate::presets;
    pub use crate::resilience::{
        run_resilience_campaign, run_resilience_campaign_journaled,
        run_resilience_campaign_with_cache, CellReport, ResilienceCampaignReport,
        ResilienceCampaignSpec,
    };
    pub use crate::scale::SystemScale;
    pub use crate::suite::{
        scoped_map, ExperimentSuite, RetryPolicy, SuiteMetrics, SuiteReport, SuiteRun,
    };
    pub use crate::topocache::{topology_cache_key, TopoCache, TopoCacheStats};
    pub use crate::topospec::TopologySpec;
    pub use exaflow_analysis::{
        channel_load_survey, distance_estimate, distance_stats_exact, distance_survey,
        distance_sweep, physical_distance_sweep, stratified_sources, DistanceStats, LoadStats,
    };
    pub use exaflow_netgraph::{LinkId, Network, NodeId};
    pub use exaflow_sim::{
        check_trace, check_trace_with_topology, parse_jsonl, FaultAction, FaultEvent,
        FaultSchedule, FaultScheduleSpec, FlowDag, FlowDagBuilder, JsonlSink, MetricsRegistry,
        MetricsSnapshot, RecoveryPolicy, SimConfig, SimError, SimReport, Simulator, TraceEvent,
        TraceSink, TraceSummary, TraceViolation, VecSink,
    };
    pub use exaflow_system::{CostModel, SystemHierarchy};
    pub use exaflow_topo::{
        ConnectionRule, Degraded, Dragonfly, GeneralizedHypercube, Jellyfish, KAryTree, Nested,
        Topology, Torus, UpperTierKind,
    };
    pub use exaflow_workloads::{TaskMapping, Workload, WorkloadSpec};
}
