//! Normalisation of execution times against a baseline — the paper's
//! Figures 4 and 5 plot *normalised* execution time (we normalise to the
//! standalone fattree per workload; see DESIGN.md §5).

use crate::experiment::ExperimentResult;
use serde::{Deserialize, Serialize};

/// A result expressed relative to a baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NormalizedRow {
    /// Topology display name.
    pub topology: String,
    /// Workload name.
    pub workload: String,
    /// Execution time divided by the baseline's.
    pub normalized_time: f64,
    /// Raw execution time, seconds.
    pub makespan_seconds: f64,
}

/// Normalise `results` by the makespan of the result whose topology name
/// equals `baseline`. Returns an error if the baseline is absent or took
/// zero time.
pub fn normalize_to(
    results: &[ExperimentResult],
    baseline: &str,
) -> Result<Vec<NormalizedRow>, String> {
    let base = results
        .iter()
        .find(|r| r.topology == baseline)
        .ok_or_else(|| format!("baseline '{baseline}' not among results"))?;
    if base.makespan_seconds <= 0.0 {
        return Err(format!("baseline '{baseline}' has zero makespan"));
    }
    Ok(results
        .iter()
        .map(|r| NormalizedRow {
            topology: r.topology.clone(),
            workload: r.workload.clone(),
            normalized_time: r.makespan_seconds / base.makespan_seconds,
            makespan_seconds: r.makespan_seconds,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(topology: &str, t: f64) -> ExperimentResult {
        ExperimentResult {
            topology: topology.into(),
            workload: "W".into(),
            makespan_seconds: t,
            flows: 1,
            events: 1,
            maxmin_iterations: 0,
            wall_seconds: 0.0,
            failed_cables_requested: 0,
            failed_cables_applied: 0,
            skipped_flows: 0,
            fault_events_applied: 0,
            rate_recomputes: 0,
            flows_coalesced: 0,
            metrics: None,
        }
    }

    #[test]
    fn normalises_against_named_baseline() {
        let rows = normalize_to(&[res("A", 2.0), res("B", 1.0), res("C", 4.0)], "B").unwrap();
        assert_eq!(rows[0].normalized_time, 2.0);
        assert_eq!(rows[1].normalized_time, 1.0);
        assert_eq!(rows[2].normalized_time, 4.0);
    }

    #[test]
    fn missing_baseline_errors() {
        assert!(normalize_to(&[res("A", 1.0)], "Z").is_err());
    }

    #[test]
    fn zero_baseline_errors() {
        assert!(normalize_to(&[res("A", 0.0)], "A").is_err());
    }
}
