//! The paper's experiment grids, parametric in system scale.
//!
//! Figures 4 and 5 sweep twelve hybrid configurations
//! `(t, u) ∈ {2,4,8} × {8,4,2,1}` for both `NestGHC` and `NestTree`,
//! against the standalone `Fattree` and `Torus3D` baselines, across eleven
//! workloads. Workload parameters below are the reproduction defaults for
//! the given scale; message sizes are uninfluential under normalisation
//! (see DESIGN.md §4 for the scale substitution, EXPERIMENTS.md for the
//! recorded parameter values).

use crate::scale::SystemScale;
use crate::topospec::TopologySpec;
use exaflow_topo::UpperTierKind;
use exaflow_workloads::WorkloadSpec;

/// One mebibyte, the default message size.
pub const MIB: u64 = 1 << 20;

/// The paper's (t, u) grid in the order its figures use.
pub fn hybrid_grid() -> Vec<(u32, u32)> {
    let mut grid = Vec::with_capacity(12);
    for t in [2u32, 4, 8] {
        for u in [8u32, 4, 2, 1] {
            grid.push((t, u));
        }
    }
    grid
}

/// The four curves of every figure: `NestGHC(t,u)`, `NestTree(t,u)`,
/// `Fattree`, `Torus3D`. Hybrids are parameterised by the grid point; the
/// baselines are fixed per scale.
pub fn figure_topologies(scale: SystemScale, t: u32, u: u32) -> Result<Vec<TopologySpec>, String> {
    Ok(vec![
        scale.nested_spec(UpperTierKind::GeneralizedHypercube, t, u)?,
        scale.nested_spec(UpperTierKind::Fattree, t, u)?,
        scale.fattree_spec(),
        scale.torus_spec(),
    ])
}

/// The heavy workloads of Figure 4, in the paper's panel order.
pub fn heavy_workloads(scale: SystemScale) -> Vec<WorkloadSpec> {
    let n = scale.qfdbs as usize;
    let [gx, gy, gz] = scale.torus_dims();
    vec![
        WorkloadSpec::UnstructuredApp {
            tasks: n,
            flows_per_task: 2,
            bytes: MIB,
            seed: 42,
        },
        WorkloadSpec::UnstructuredHr {
            tasks: n,
            flows_per_task: 2,
            bytes: MIB,
            hot_fraction: 0.125,
            hot_probability: 0.5,
            seed: 43,
        },
        WorkloadSpec::Bisection {
            tasks: n,
            rounds: 4,
            bytes: MIB,
            seed: 44,
        },
        WorkloadSpec::AllReduce {
            tasks: n,
            bytes: MIB,
        },
        WorkloadSpec::NBodies {
            tasks: n.min(1024),
            bytes: MIB,
        },
        WorkloadSpec::NearNeighbors {
            gx,
            gy,
            gz,
            bytes: MIB,
            iterations: 2,
            periodic: true,
        },
    ]
}

/// The light workloads of Figure 5, in the paper's panel order.
pub fn light_workloads(scale: SystemScale) -> Vec<WorkloadSpec> {
    let n = scale.qfdbs as usize;
    let [gx, gy, gz] = scale.torus_dims();
    vec![
        WorkloadSpec::UnstructuredMgnt {
            tasks: n,
            flows_per_task: 2,
            seed: 45,
        },
        WorkloadSpec::MapReduce {
            tasks: (n / 8).clamp(2, 512),
            distribute_bytes: 4 * MIB,
            shuffle_bytes: 64 << 10,
            gather_bytes: 64 << 10,
        },
        WorkloadSpec::Reduce {
            tasks: n,
            bytes: 64 << 10,
        },
        WorkloadSpec::Flood {
            gx,
            gy,
            gz,
            bytes: 256 << 10,
            waves: 4,
        },
        WorkloadSpec::Sweep3d {
            gx,
            gy,
            gz,
            bytes: 256 << 10,
        },
    ]
}

/// All eleven workloads (heavy then light).
pub fn all_workloads(scale: SystemScale) -> Vec<WorkloadSpec> {
    let mut v = heavy_workloads(scale);
    v.extend(light_workloads(scale));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig, MappingSpec};
    use exaflow_sim::SimConfig;

    #[test]
    fn grid_matches_paper_order() {
        let g = hybrid_grid();
        assert_eq!(g.len(), 12);
        assert_eq!(g[0], (2, 8));
        assert_eq!(g[3], (2, 1));
        assert_eq!(g[11], (8, 1));
    }

    #[test]
    fn workload_lists_match_figures() {
        let scale = SystemScale::new(64).unwrap();
        let heavy = heavy_workloads(scale);
        let light = light_workloads(scale);
        assert_eq!(heavy.len(), 6);
        assert_eq!(light.len(), 5);
        assert!(heavy.iter().all(|w| w.is_heavy()));
        assert!(light.iter().all(|w| !w.is_heavy()));
        assert_eq!(all_workloads(scale).len(), 11);
    }

    #[test]
    fn figure_topologies_build_at_tiny_scale() {
        let scale = SystemScale::new(64).unwrap();
        for (t, u) in hybrid_grid() {
            if scale.subtori(t).is_err() {
                continue; // 64 QFDBs cannot host t=8 subtori
            }
            let topos = figure_topologies(scale, t, u).unwrap();
            assert_eq!(topos.len(), 4);
            for spec in topos {
                let topo = spec.build().unwrap();
                assert_eq!(topo.num_endpoints(), 64);
            }
        }
    }

    #[test]
    fn end_to_end_tiny_figure_cell() {
        // One cell of Figure 4 at 64 QFDBs: AllReduce on all four curves.
        let scale = SystemScale::new(64).unwrap();
        let workload = WorkloadSpec::AllReduce {
            tasks: 64,
            bytes: 1 << 16,
        };
        let mut times = Vec::new();
        for spec in figure_topologies(scale, 2, 4).unwrap() {
            let res = run_experiment(&ExperimentConfig {
                topology: spec,
                workload: workload.clone(),
                mapping: MappingSpec::Linear,
                sim: SimConfig::default(),
                failures: None,
                fault_injection: None,
            })
            .unwrap();
            assert!(res.makespan_seconds > 0.0);
            times.push(res.makespan_seconds);
        }
        assert_eq!(times.len(), 4);
    }
}
