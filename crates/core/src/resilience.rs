//! Monte-Carlo resilience campaigns: how much does a workload degrade
//! under mid-run link failures, per recovery policy?
//!
//! A campaign takes one base experiment, a grid of fault rates × recovery
//! policies, and a replica count. For every `(rate, policy)` cell it runs
//! `replicas` independent seeded fault schedules through the parallel
//! [`ExperimentSuite`](crate::ExperimentSuite) and aggregates degradation
//! metrics against the fault-free baseline:
//!
//! * **completion-time inflation** — makespan over baseline makespan
//!   (mean, p50, p99 nearest-rank over completed replicas),
//! * **delivered-flow fraction** — flows actually delivered (the
//!   `skip_unreachable` policy drops flows whose destination was cut off),
//! * **outcome counts** — completed / aborted ([`SimError::LinkLost`]) /
//!   unreachable / other per cell.
//!
//! Determinism is load-bearing: replica `r` of rate index `i` draws its
//! fault schedule from a seed mixed **independently of the policy**, so
//! all policies face the same fault traces and their metrics are directly
//! comparable. [`CellReport`] carries no wall-clock fields, so a campaign
//! report is bit-identical across worker-thread counts and reruns.
//!
//! [`SimError::LinkLost`]: exaflow_sim::SimError::LinkLost

use crate::error::ExperimentError;
use crate::experiment::{
    run_experiment_cached, ExperimentConfig, ExperimentResult, FaultInjectionSpec,
};
use crate::journal::{fingerprint, Journal, JournalIndex, JournaledOutcome};
use crate::suite::ExperimentSuite;
use crate::topocache::{TopoCache, TopoCacheStats};
use exaflow_sim::{FaultScheduleSpec, RecoveryPolicy, SimError};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Ceiling on `rates × policies × replicas`: a typo'd campaign is a typed
/// error, not an hour of compute.
pub const MAX_CAMPAIGN_RUNS: usize = 100_000;

/// Declarative description of a resilience campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResilienceCampaignSpec {
    /// The experiment under test. Its `fault_injection` field must be
    /// empty — the campaign owns fault injection.
    pub base: ExperimentConfig,
    /// Expected duplex-cable failures per simulated second, one cell row
    /// per rate. `0` measures the harness itself (must reproduce the
    /// baseline exactly).
    pub fault_rates_per_s: Vec<f64>,
    /// Recovery policies to compare (default: all four).
    #[serde(default = "all_policies")]
    pub policies: Vec<RecoveryPolicy>,
    /// Independent fault schedules per `(rate, policy)` cell.
    pub replicas: u32,
    /// Campaign master seed; every replica's schedule seed derives from it.
    pub seed: u64,
    /// Faults are drawn over `[0, horizon_s)`. Defaults to the fault-free
    /// baseline makespan, i.e. faults can land anywhere in the run.
    #[serde(default)]
    pub horizon_s: Option<f64>,
    /// Repair failed cables after this many seconds (`None`: permanent).
    #[serde(default)]
    pub repair_s: Option<f64>,
}

fn all_policies() -> Vec<RecoveryPolicy> {
    RecoveryPolicy::ALL.to_vec()
}

/// Aggregate outcome of one `(fault rate, recovery policy)` cell.
///
/// Deliberately free of wall-clock fields: a cell is a pure function of
/// the campaign spec, so serialized cells are bit-identical across thread
/// counts and reruns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Expected cable failures per simulated second.
    pub fault_rate_per_s: f64,
    /// Recovery policy of this cell.
    pub policy: RecoveryPolicy,
    /// Replicas attempted.
    pub replicas: u64,
    /// Replicas that ran to completion.
    pub completed: u64,
    /// Replicas stopped by the abort policy (`link_lost`).
    pub aborted: u64,
    /// Replicas stopped because a fault partitioned src from dst under a
    /// policy that cannot drop flows (`unreachable`).
    pub unreachable: u64,
    /// Replicas that failed for any non-fault reason (config errors,
    /// panics) — these indicate harness problems, not measured resilience.
    pub other_errors: u64,
    /// Mean fraction of flows delivered to their destination, over
    /// completed replicas (1.0 unless the skip policy dropped flows).
    pub delivered_flow_fraction: f64,
    /// Mean fraction of flows dropped as unreachable (skip policy only).
    pub skipped_flow_fraction: f64,
    /// Mean fault events that actually fired per completed replica.
    pub mean_fault_events: f64,
    /// Mean makespan inflation over the fault-free baseline (completed
    /// replicas; 0 when none completed).
    pub inflation_mean: f64,
    /// Median (nearest-rank) makespan inflation.
    pub inflation_p50: f64,
    /// 99th-percentile (nearest-rank) makespan inflation.
    pub inflation_p99: f64,
}

/// The outcome of a whole campaign: the fault-free baseline plus one
/// [`CellReport`] per `(rate, policy)`, rate-major then policy in spec
/// order. Everything here is deterministic given the spec.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResilienceCampaignReport {
    /// Topology display name.
    pub topology: String,
    /// Workload name.
    pub workload: String,
    /// Fault-free baseline makespan, seconds (inflation denominator).
    pub baseline_makespan_seconds: f64,
    /// Flows per run.
    pub baseline_flows: u64,
    /// The fault-drawing horizon actually used, seconds.
    pub horizon_s: f64,
    /// Replicas per `(rate, policy)` cell.
    pub replicas_per_cell: u32,
    /// Total replica runs executed (cells × replicas).
    pub total_runs: u64,
    /// Runs that failed for non-fault reasons (see
    /// [`CellReport::other_errors`]); non-zero means the campaign itself
    /// is suspect.
    pub failed_runs: u64,
    /// One aggregate per `(rate, policy)`.
    pub cells: Vec<CellReport>,
}

/// Policy-independent schedule seed for `(campaign seed, rate, replica)`:
/// every policy at the same grid point faces the identical fault trace.
/// SplitMix64-style finalizer over the three inputs.
fn schedule_seed(seed: u64, rate_idx: u64, replica: u64) -> u64 {
    let mut z = seed
        ^ rate_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ replica.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Nearest-rank percentile of an ascending-sorted, non-empty slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn validate(spec: &ResilienceCampaignSpec) -> Result<(), ExperimentError> {
    let invalid = |reason: String| Err(ExperimentError::InvalidCampaign { reason });
    if spec.base.fault_injection.is_some() {
        return invalid(
            "base experiment must not set fault_injection (the campaign owns it)".into(),
        );
    }
    if spec.fault_rates_per_s.is_empty() {
        return invalid("fault_rates_per_s must not be empty".into());
    }
    for &r in &spec.fault_rates_per_s {
        if !(r.is_finite() && r >= 0.0) {
            return invalid(format!("fault rate {r} must be finite and >= 0"));
        }
    }
    if spec.policies.is_empty() {
        return invalid("policies must not be empty".into());
    }
    if spec.replicas == 0 {
        return invalid("replicas must be >= 1".into());
    }
    if let Some(h) = spec.horizon_s {
        if !(h.is_finite() && h > 0.0) {
            return invalid(format!("horizon_s {h} must be finite and > 0"));
        }
    }
    let runs = spec.fault_rates_per_s.len() * spec.policies.len() * spec.replicas as usize;
    if runs > MAX_CAMPAIGN_RUNS {
        return invalid(format!(
            "campaign would execute {runs} runs (max {MAX_CAMPAIGN_RUNS})"
        ));
    }
    Ok(())
}

fn classify(cell: &mut CellReport, err: &ExperimentError) {
    match err {
        ExperimentError::Sim {
            sim: SimError::LinkLost { .. },
        } => cell.aborted += 1,
        ExperimentError::Sim {
            sim: SimError::Unreachable { .. },
        } => cell.unreachable += 1,
        _ => cell.other_errors += 1,
    }
}

/// Run a full resilience campaign: fault-free baseline, then
/// `rates × policies × replicas` fault-injected runs on `threads` workers
/// (`None`: one per core), aggregated per cell.
///
/// Fails fast with a typed error when the spec is inconsistent or the
/// baseline itself cannot run; per-replica failures inside the campaign
/// are aggregated, not fatal.
pub fn run_resilience_campaign(
    spec: &ResilienceCampaignSpec,
    threads: Option<usize>,
) -> Result<ResilienceCampaignReport, ExperimentError> {
    run_resilience_campaign_journaled(spec, threads, None)
}

fn journal_io(e: std::io::Error) -> ExperimentError {
    ExperimentError::Journal {
        reason: e.to_string(),
    }
}

/// [`run_resilience_campaign`] with crash-safe journaling: every replica
/// outcome (and the baseline) is appended to the JSONL journal at `path`
/// the moment it finalises. With `resume`, outcomes already journaled are
/// reused instead of re-run; since campaign reports carry no wall-clock
/// fields, a resumed report is **bit-identical** to an uninterrupted one.
/// Without `resume`, the journal is truncated and the campaign starts
/// fresh. `journal: None` behaves exactly like the plain runner.
pub fn run_resilience_campaign_journaled(
    spec: &ResilienceCampaignSpec,
    threads: Option<usize>,
    journal: Option<(&Path, bool)>,
) -> Result<ResilienceCampaignReport, ExperimentError> {
    run_resilience_campaign_with_cache(spec, threads, journal, None).map(|(report, _)| report)
}

/// The full-featured campaign runner: like
/// [`run_resilience_campaign_journaled`], plus an explicit topology-cache
/// capacity (`None`: [`TopoCache::DEFAULT_CAP`]; `Some(0)`: cache off).
/// One cache is shared by the baseline and every grid worker — the whole
/// campaign reuses a single spec, so it builds the topology exactly once.
/// Returns the cache's lifetime stats alongside the report (the report
/// itself must stay bit-identical cache-on vs cache-off, so the stats
/// never live inside it).
pub fn run_resilience_campaign_with_cache(
    spec: &ResilienceCampaignSpec,
    threads: Option<usize>,
    journal: Option<(&Path, bool)>,
    topo_cache_cap: Option<usize>,
) -> Result<(ResilienceCampaignReport, Option<TopoCacheStats>), ExperimentError> {
    validate(spec)?;
    let cap = topo_cache_cap.unwrap_or(TopoCache::DEFAULT_CAP);
    let cache = (cap > 0).then(|| TopoCache::new(cap));
    let mut index = match journal {
        Some((path, true)) => JournalIndex::load(path).map_err(journal_io)?,
        _ => JournalIndex::default(),
    };
    let mut journal = match journal {
        Some((path, resume)) => Some(Journal::open(path, !resume).map_err(journal_io)?),
        None => None,
    };

    // The baseline is journaled like any grid point: a resumed campaign
    // must not re-run it (its makespan anchors every inflation figure).
    let base_fp = fingerprint(&spec.base);
    let baseline: ExperimentResult = match index.take(&base_fp) {
        Some(outcome) => outcome?,
        None => {
            let outcome: JournaledOutcome = run_experiment_cached(&spec.base, cache.as_ref());
            if let Some(j) = journal.as_mut() {
                j.record(&base_fp, &outcome).map_err(journal_io)?;
            }
            outcome?
        }
    };
    let horizon = match spec.horizon_s {
        Some(h) => h,
        None if baseline.makespan_seconds > 0.0 => baseline.makespan_seconds,
        None => {
            return Err(ExperimentError::InvalidCampaign {
                reason: "baseline makespan is 0; set horizon_s explicitly".into(),
            })
        }
    };

    // Grid order is rate-major, then policy, then replica — and must match
    // the aggregation below, which walks the suite results sequentially.
    let mut configs = Vec::new();
    for (rate_idx, &rate) in spec.fault_rates_per_s.iter().enumerate() {
        for &policy in &spec.policies {
            for replica in 0..spec.replicas {
                let mut cfg = spec.base.clone();
                cfg.fault_injection = Some(FaultInjectionSpec {
                    policy,
                    schedule: FaultScheduleSpec::Random {
                        seed: schedule_seed(spec.seed, rate_idx as u64, replica as u64),
                        rate_per_s: rate,
                        horizon_s: horizon,
                        repair_s: spec.repair_s,
                    },
                });
                configs.push(cfg);
            }
        }
    }

    let fingerprints: Vec<String> = configs.iter().map(fingerprint).collect();
    let prefilled: Vec<Option<JournaledOutcome>> =
        fingerprints.iter().map(|fp| index.take(fp)).collect();
    let mut suite = ExperimentSuite::new(configs);
    if let Some(t) = threads {
        suite = suite.threads(t);
    }
    let (run, io_error) = suite.run_prefilled(
        journal.as_mut().map(|j| (j, fingerprints.as_slice())),
        prefilled,
        &|_| {},
        cache.as_ref(),
    );
    if let Some(e) = io_error {
        return Err(journal_io(e));
    }

    let mut cells = Vec::with_capacity(spec.fault_rates_per_s.len() * spec.policies.len());
    let mut outcomes = run.results.iter();
    let mut failed_runs = 0u64;
    for &rate in &spec.fault_rates_per_s {
        for &policy in &spec.policies {
            let mut cell = CellReport {
                fault_rate_per_s: rate,
                policy,
                replicas: spec.replicas as u64,
                completed: 0,
                aborted: 0,
                unreachable: 0,
                other_errors: 0,
                delivered_flow_fraction: 0.0,
                skipped_flow_fraction: 0.0,
                mean_fault_events: 0.0,
                inflation_mean: 0.0,
                inflation_p50: 0.0,
                inflation_p99: 0.0,
            };
            let mut inflations = Vec::with_capacity(spec.replicas as usize);
            let (mut delivered, mut skipped, mut fault_events) = (0.0f64, 0.0f64, 0.0f64);
            for _ in 0..spec.replicas {
                match outcomes.next().expect("one outcome per grid point") {
                    Ok(res) => {
                        cell.completed += 1;
                        inflations.push(res.makespan_seconds / baseline.makespan_seconds);
                        let flows = res.flows.max(1) as f64;
                        delivered += (res.flows - res.skipped_flows) as f64 / flows;
                        skipped += res.skipped_flows as f64 / flows;
                        fault_events += res.fault_events_applied as f64;
                    }
                    Err(e) => classify(&mut cell, e),
                }
            }
            failed_runs += cell.other_errors;
            if cell.completed > 0 {
                let n = cell.completed as f64;
                cell.delivered_flow_fraction = delivered / n;
                cell.skipped_flow_fraction = skipped / n;
                cell.mean_fault_events = fault_events / n;
                inflations.sort_by(|a, b| a.partial_cmp(b).expect("finite inflation"));
                cell.inflation_mean = inflations.iter().sum::<f64>() / n;
                cell.inflation_p50 = percentile(&inflations, 0.50);
                cell.inflation_p99 = percentile(&inflations, 0.99);
            }
            cells.push(cell);
        }
    }

    Ok((
        ResilienceCampaignReport {
            topology: baseline.topology.clone(),
            workload: baseline.workload.clone(),
            baseline_makespan_seconds: baseline.makespan_seconds,
            baseline_flows: baseline.flows,
            horizon_s: horizon,
            replicas_per_cell: spec.replicas,
            total_runs: run.results.len() as u64,
            failed_runs,
            cells,
        },
        cache.map(|c| c.stats()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::MappingSpec;
    use crate::topospec::TopologySpec;
    use exaflow_sim::SimConfig;
    use exaflow_workloads::WorkloadSpec;

    fn base() -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::Torus { dims: vec![4, 4] },
            workload: WorkloadSpec::UnstructuredApp {
                tasks: 16,
                flows_per_task: 4,
                bytes: 1 << 20,
                seed: 2,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
            fault_injection: None,
        }
    }

    fn spec() -> ResilienceCampaignSpec {
        ResilienceCampaignSpec {
            base: base(),
            fault_rates_per_s: vec![0.0, 1000.0],
            policies: all_policies(),
            replicas: 3,
            seed: 42,
            horizon_s: None,
            repair_s: None,
        }
    }

    #[test]
    fn zero_rate_cells_reproduce_the_baseline_exactly() {
        let report = run_resilience_campaign(&spec(), Some(2)).unwrap();
        for cell in report.cells.iter().filter(|c| c.fault_rate_per_s == 0.0) {
            assert_eq!(cell.completed, 3, "{cell:?}");
            assert_eq!(cell.inflation_mean, 1.0, "{cell:?}");
            assert_eq!(cell.inflation_p50, 1.0);
            assert_eq!(cell.inflation_p99, 1.0);
            assert_eq!(cell.delivered_flow_fraction, 1.0);
            assert_eq!(cell.mean_fault_events, 0.0);
        }
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let serial = run_resilience_campaign(&spec(), Some(1)).unwrap();
        let parallel = run_resilience_campaign(&spec(), Some(8)).unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn policies_share_fault_traces_and_diverge_in_outcome() {
        let report = run_resilience_campaign(&spec(), None).unwrap();
        let faulted: Vec<&CellReport> = report
            .cells
            .iter()
            .filter(|c| c.fault_rate_per_s > 0.0)
            .collect();
        assert_eq!(faulted.len(), 4);
        // The restart policy can only be slower than resume on identical
        // fault traces (it retransmits what resume keeps).
        let by_policy = |p: RecoveryPolicy| {
            faulted
                .iter()
                .find(|c| c.policy == p)
                .unwrap_or_else(|| panic!("missing cell for {p:?}"))
        };
        let resume = by_policy(RecoveryPolicy::RerouteResume);
        let restart = by_policy(RecoveryPolicy::RerouteRestart);
        if resume.completed > 0 && restart.completed > 0 {
            assert!(
                restart.inflation_mean >= resume.inflation_mean,
                "restart {} < resume {}",
                restart.inflation_mean,
                resume.inflation_mean
            );
        }
        // No harness failures in any cell.
        assert_eq!(report.failed_runs, 0);
        for c in &report.cells {
            assert_eq!(
                c.completed + c.aborted + c.unreachable + c.other_errors,
                c.replicas,
                "{c:?}"
            );
        }
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let mut s = spec();
        s.replicas = 0;
        assert!(matches!(
            run_resilience_campaign(&s, None),
            Err(ExperimentError::InvalidCampaign { .. })
        ));

        let mut s = spec();
        s.fault_rates_per_s = vec![];
        assert!(matches!(
            run_resilience_campaign(&s, None),
            Err(ExperimentError::InvalidCampaign { .. })
        ));

        let mut s = spec();
        s.fault_rates_per_s = vec![f64::NAN];
        assert!(matches!(
            run_resilience_campaign(&s, None),
            Err(ExperimentError::InvalidCampaign { .. })
        ));

        let mut s = spec();
        s.replicas = 1_000_000;
        assert!(matches!(
            run_resilience_campaign(&s, None),
            Err(ExperimentError::InvalidCampaign { .. })
        ));

        let mut s = spec();
        s.base.fault_injection = Some(FaultInjectionSpec {
            policy: RecoveryPolicy::Abort,
            schedule: FaultScheduleSpec::Explicit { events: vec![] },
        });
        assert!(matches!(
            run_resilience_campaign(&s, None),
            Err(ExperimentError::InvalidCampaign { .. })
        ));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&v, 0.25), 1.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    /// Independent nearest-rank oracle: walk the sorted slice and return
    /// the first element whose cumulative count reaches `q`'s share. Uses
    /// the same `q * n` product as `percentile` (a division would round
    /// differently), but replaces the ceil-and-index arithmetic with a
    /// linear scan.
    fn nearest_rank_oracle(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len() as f64;
        for (i, &v) in sorted.iter().enumerate() {
            if (i + 1) as f64 >= q * n {
                return v;
            }
        }
        *sorted.last().unwrap()
    }

    #[test]
    fn percentile_boundaries_match_the_oracle() {
        for v in [
            vec![7.0],
            vec![1.0, 2.0],
            vec![1.0, 1.0, 1.0, 2.0], // ties
            vec![-3.0, 0.0, 0.0, 5.0, 5.0],
        ] {
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(
                    percentile(&v, q).to_bits(),
                    nearest_rank_oracle(&v, q).to_bits(),
                    "v={v:?} q={q}"
                );
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn percentile_matches_nearest_rank_oracle(
            values in proptest::collection::vec(-1e9f64..1e9, 1..40),
            q in 0.0f64..1.0
        ) {
            let mut values = values;
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let got = percentile(&values, q);
            let want = nearest_rank_oracle(&values, q);
            proptest::prop_assert_eq!(got.to_bits(), want.to_bits());
            // The result is always an element of the input.
            proptest::prop_assert!(values.iter().any(|&v| v.to_bits() == got.to_bits()));
        }

        #[test]
        fn percentile_is_monotone_in_q(
            values in proptest::collection::vec(-1e9f64..1e9, 1..40),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0
        ) {
            let mut values = values;
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            proptest::prop_assert!(percentile(&values, lo) <= percentile(&values, hi));
        }
    }

    #[test]
    fn schedule_seed_varies_by_rate_and_replica_only() {
        let a = schedule_seed(1, 0, 0);
        assert_ne!(a, schedule_seed(1, 1, 0));
        assert_ne!(a, schedule_seed(1, 0, 1));
        assert_ne!(a, schedule_seed(2, 0, 0));
        // Stable: pure function of its inputs.
        assert_eq!(a, schedule_seed(1, 0, 0));
    }

    #[test]
    fn journaled_campaign_resumes_bit_identically() {
        let path = std::env::temp_dir().join(format!(
            "exaflow-resilience-journal-{}.jsonl",
            std::process::id()
        ));
        let mut s = spec();
        s.replicas = 2;
        s.fault_rates_per_s = vec![0.0, 800.0];
        s.policies = vec![
            RecoveryPolicy::RerouteResume,
            RecoveryPolicy::SkipUnreachable,
        ];

        let fresh = run_resilience_campaign_journaled(&s, Some(2), Some((&path, false))).unwrap();
        let plain = run_resilience_campaign(&s, Some(2)).unwrap();
        assert_eq!(fresh, plain, "journaling must not perturb the report");
        let full_len = crate::journal::read_journal(&path).unwrap().len() as u64;
        assert_eq!(full_len, fresh.total_runs + 1, "grid points + baseline");

        // Complete journal: resume replays everything, runs nothing new.
        let resumed = run_resilience_campaign_journaled(&s, Some(2), Some((&path, true))).unwrap();
        assert_eq!(resumed, fresh);
        assert_eq!(
            crate::journal::read_journal(&path).unwrap().len() as u64,
            full_len
        );

        // Kill mid-campaign: keep two complete lines plus a torn fragment
        // of the third, resume, and the report must still be identical.
        let text = std::fs::read_to_string(&path).unwrap();
        let second_newline = text
            .match_indices('\n')
            .nth(1)
            .map(|(i, _)| i)
            .expect("at least two journal lines");
        std::fs::write(&path, &text[..second_newline + 11]).unwrap();
        let resumed = run_resilience_campaign_journaled(&s, Some(1), Some((&path, true))).unwrap();
        assert_eq!(resumed, fresh, "torn-journal resume must reconstruct");
        assert_eq!(
            crate::journal::read_journal(&path).unwrap().len() as u64,
            full_len,
            "resume heals the journal back to full length"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut s = spec();
        s.replicas = 1;
        s.fault_rates_per_s = vec![500.0];
        s.policies = vec![RecoveryPolicy::SkipUnreachable];
        let report = run_resilience_campaign(&s, Some(1)).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: ResilienceCampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
