//! System-scale arithmetic: sizing topologies for a given QFDB count.
//!
//! The paper evaluates 131 072 QFDBs; this reproduction defaults to a
//! smaller scale (see DESIGN.md §4) but keeps all sizing rules parametric.

use crate::topospec::TopologySpec;
use exaflow_topo::UpperTierKind;
use serde::{Deserialize, Serialize};

/// A system size in QFDBs, with helpers to derive comparable topologies.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemScale {
    /// Total QFDBs.
    pub qfdbs: u64,
}

impl SystemScale {
    /// The paper's full evaluation scale.
    pub const PAPER: SystemScale = SystemScale { qfdbs: 131_072 };

    /// The reproduction's default simulation scale: the largest size whose
    /// full figure sweep completes in minutes on one core (see DESIGN.md §4).
    pub const DEFAULT_SIM: SystemScale = SystemScale { qfdbs: 2048 };

    /// Create a scale. The QFDB count must be a power of two ≥ 64 so every
    /// (t, u) hybrid configuration and the torus baseline tile evenly.
    pub fn new(qfdbs: u64) -> Result<Self, String> {
        if !qfdbs.is_power_of_two() || qfdbs < 64 {
            return Err(format!("scale must be a power of two >= 64, got {qfdbs}"));
        }
        Ok(SystemScale { qfdbs })
    }

    /// Dimensions of the monolithic torus baseline: the near-cubic
    /// power-of-two factorisation (e.g. 131072 → 64×64×32, 4096 → 16×16×16).
    pub fn torus_dims(&self) -> [u32; 3] {
        let log = self.qfdbs.trailing_zeros();
        let a = log.div_ceil(3);
        let b = (log - a).div_ceil(2);
        let c = log - a - b;
        [1u32 << a, 1 << b, 1 << c]
    }

    /// The torus baseline spec.
    pub fn torus_spec(&self) -> TopologySpec {
        TopologySpec::Torus {
            dims: self.torus_dims().to_vec(),
        }
    }

    /// The standalone fattree baseline: the smallest 3-stage k-ary tree
    /// holding all QFDBs (exactly full at 4096 = 16³).
    pub fn fattree_spec(&self) -> TopologySpec {
        let k = exaflow_topo::KAryTree::arity_for_ports(self.qfdbs, 3);
        TopologySpec::Fattree {
            k,
            n: 3,
            endpoints: Some(self.qfdbs as usize),
        }
    }

    /// Number of subtori for a given `t` (errors if `t³` does not divide).
    pub fn subtori(&self, t: u32) -> Result<u64, String> {
        let sub = (t as u64).pow(3);
        if !self.qfdbs.is_multiple_of(sub) {
            return Err(format!(
                "{} QFDBs not divisible into {t}x{t}x{t} subtori",
                self.qfdbs
            ));
        }
        Ok(self.qfdbs / sub)
    }

    /// The hybrid spec for `(upper, t, u)`.
    pub fn nested_spec(
        &self,
        upper: UpperTierKind,
        t: u32,
        u: u32,
    ) -> Result<TopologySpec, String> {
        Ok(TopologySpec::Nested {
            upper,
            subtori: self.subtori(t)?,
            t,
            u,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_torus_dims() {
        assert_eq!(SystemScale::PAPER.torus_dims(), [64, 64, 32]);
        assert_eq!(SystemScale::DEFAULT_SIM.torus_dims(), [16, 16, 8]);
        assert_eq!(SystemScale::new(4096).unwrap().torus_dims(), [16, 16, 16]);
        assert_eq!(SystemScale::new(512).unwrap().torus_dims(), [8, 8, 8]);
        assert_eq!(SystemScale::new(1024).unwrap().torus_dims(), [16, 8, 8]);
    }

    #[test]
    fn torus_dims_multiply_back() {
        for q in [64u64, 128, 256, 512, 1024, 2048, 4096, 131_072] {
            let s = SystemScale::new(q).unwrap();
            let d = s.torus_dims();
            assert_eq!(d.iter().map(|&x| x as u64).product::<u64>(), q, "{q}");
            assert!(d[0] >= d[1] && d[1] >= d[2]);
        }
    }

    #[test]
    fn invalid_scales_rejected() {
        assert!(SystemScale::new(100).is_err());
        assert!(SystemScale::new(32).is_err());
    }

    #[test]
    fn subtori_division() {
        let s = SystemScale::new(4096).unwrap();
        assert_eq!(s.subtori(2).unwrap(), 512);
        assert_eq!(s.subtori(4).unwrap(), 64);
        assert_eq!(s.subtori(8).unwrap(), 8);
        assert_eq!(SystemScale::DEFAULT_SIM.subtori(8).unwrap(), 4);
        assert!(SystemScale::new(128).unwrap().subtori(8).is_err());
    }

    #[test]
    fn fattree_baseline_sizes() {
        match SystemScale::new(4096).unwrap().fattree_spec() {
            TopologySpec::Fattree { k, n, endpoints } => {
                assert_eq!((k, n), (16, 3));
                assert_eq!(endpoints, Some(4096));
            }
            _ => panic!(),
        }
        match SystemScale::DEFAULT_SIM.fattree_spec() {
            TopologySpec::Fattree { k, n, endpoints } => {
                assert_eq!((k, n), (13, 3));
                assert_eq!(endpoints, Some(2048));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn nested_specs_build() {
        let s = SystemScale::new(64).unwrap();
        for u in [1u32, 2, 4, 8] {
            let spec = s.nested_spec(UpperTierKind::Fattree, 2, u).unwrap();
            let topo = spec.build().unwrap();
            assert_eq!(topo.num_endpoints(), 64);
        }
    }
}
