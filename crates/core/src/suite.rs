//! Parallel experiment suites: run a batch of [`ExperimentConfig`]s across
//! a scoped worker pool, isolate panics per experiment, and aggregate
//! engine statistics into a serializable [`SuiteReport`].
//!
//! The pool is built on [`std::thread::scope`] only — no external executor
//! — so suites work wherever the standard library does. Workers pull
//! experiment indices from a shared atomic counter (work stealing by
//! construction: a worker stuck on a slow experiment never blocks the
//! others), and results are scattered back into **input order** no matter
//! which worker finished first.
//!
//! Each experiment runs under [`std::panic::catch_unwind`]: a panicking
//! configuration produces an `Err` entry for that experiment and leaves
//! the rest of the suite untouched.
//!
//! ```
//! use exaflow::prelude::*;
//!
//! let scale = SystemScale::new(64).unwrap();
//! let configs: Vec<ExperimentConfig> = [scale.torus_spec(), scale.fattree_spec()]
//!     .into_iter()
//!     .map(|topology| ExperimentConfig {
//!         topology,
//!         workload: WorkloadSpec::AllReduce { tasks: 64, bytes: 1 << 20 },
//!         mapping: MappingSpec::Linear,
//!         sim: SimConfig::default(),
//!         failures: None,
//!         fault_injection: None,
//!     })
//!     .collect();
//! let run = ExperimentSuite::new(configs).threads(2).run();
//! assert_eq!(run.results.len(), 2);
//! assert!(run.results.iter().all(Result::is_ok));
//! assert_eq!(run.report.succeeded, 2);
//! ```

use crate::error::ExperimentError;
use crate::experiment::{run_experiment, ExperimentConfig, ExperimentResult};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A batch of experiments to run as one unit.
#[derive(Clone, Debug, Default)]
pub struct ExperimentSuite {
    configs: Vec<ExperimentConfig>,
    threads: Option<usize>,
}

/// Everything a finished suite produced: per-experiment outcomes in input
/// order plus the aggregate [`SuiteReport`].
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// One entry per submitted config, in submission order. A panicking or
    /// invalid experiment yields a typed [`ExperimentError`] without
    /// affecting its neighbours.
    pub results: Vec<Result<ExperimentResult, ExperimentError>>,
    /// Aggregate statistics over the whole batch.
    pub report: SuiteReport,
}

/// Aggregate statistics for one suite run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Experiments submitted.
    pub experiments: u64,
    /// Experiments that returned a result.
    pub succeeded: u64,
    /// Experiments that errored or panicked.
    pub failed: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Wall-clock seconds for the whole suite.
    pub wall_seconds: f64,
    /// Sum of per-experiment simulation wall times — on a multi-core pool
    /// this exceeds `wall_seconds` by roughly the parallel speedup.
    pub experiment_wall_seconds: f64,
    /// Total flows simulated (successful experiments).
    pub flows: u64,
    /// Total completion events processed (successful experiments).
    pub events: u64,
    /// Total progressive-filling iterations (successful experiments).
    pub maxmin_iterations: u64,
    /// Aggregate event throughput: `events / wall_seconds`.
    pub events_per_second: f64,
    /// Per-experiment wall seconds, in submission order (0 for failures
    /// that never reached the simulator).
    pub per_experiment_wall_seconds: Vec<f64>,
    /// Aggregated engine metrics, present only when at least one
    /// experiment ran with tracing enabled (`sim.trace`); suites of
    /// untraced experiments serialize byte-identically to pre-tracing
    /// report files.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<SuiteMetrics>,
}

/// Engine metrics summed over every traced experiment in a suite.
///
/// Counters mirror [`exaflow_sim::MetricsSnapshot`]; histograms are left
/// per-experiment (in [`crate::ExperimentResult::metrics`]) since their
/// merge rarely answers suite-level questions.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SuiteMetrics {
    /// Experiments that carried a metrics snapshot.
    pub experiments_with_metrics: u64,
    pub flows_activated: u64,
    pub flows_started: u64,
    pub flows_finished: u64,
    pub flows_skipped: u64,
    pub faults_applied: u64,
    pub faults_cleared: u64,
    pub reroutes: u64,
    pub rate_recomputes: u64,
    /// Recomputations that degraded to a full solver pass.
    pub full_passes: u64,
    /// Total solver wall-clock seconds across all traced experiments.
    /// **Non-deterministic.**
    pub solver_seconds_total: f64,
    /// Largest single-resource utilisation observed anywhere in the suite.
    pub peak_resource_utilization: f64,
}

impl SuiteMetrics {
    /// Fold one experiment's snapshot into the aggregate.
    fn absorb(&mut self, m: &exaflow_sim::MetricsSnapshot) {
        self.experiments_with_metrics += 1;
        self.flows_activated += m.flows_activated;
        self.flows_started += m.flows_started;
        self.flows_finished += m.flows_finished;
        self.flows_skipped += m.flows_skipped;
        self.faults_applied += m.faults_applied;
        self.faults_cleared += m.faults_cleared;
        self.reroutes += m.reroutes;
        self.rate_recomputes += m.rate_recomputes;
        self.full_passes += m.full_passes;
        self.solver_seconds_total += m.solver_seconds_total;
        self.peak_resource_utilization = self
            .peak_resource_utilization
            .max(m.peak_resource_utilization);
    }
}

impl SuiteReport {
    /// Observed parallel speedup: total simulation time over suite wall
    /// time. ~1 on a single worker, approaching the worker count when the
    /// experiments are uniform.
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.experiment_wall_seconds / self.wall_seconds
        } else {
            1.0
        }
    }
}

impl ExperimentSuite {
    /// A suite over `configs`, defaulting to one worker per available core.
    pub fn new(configs: Vec<ExperimentConfig>) -> Self {
        ExperimentSuite {
            configs,
            threads: None,
        }
    }

    /// Use exactly `threads` workers (clamped to at least 1). One worker
    /// runs the suite serially on the calling thread.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Number of experiments in the suite.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the suite holds no experiments.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    fn effective_threads(&self) -> usize {
        let requested = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        // Never spawn more workers than there is work.
        requested.min(self.configs.len()).max(1)
    }

    /// Run every experiment and aggregate the outcome.
    pub fn run(&self) -> SuiteRun {
        let threads = self.effective_threads();
        let started = Instant::now();
        let outcomes = scoped_map(&self.configs, threads, |_, cfg| run_experiment(cfg));
        let wall_seconds = started.elapsed().as_secs_f64();

        let mut results = Vec::with_capacity(outcomes.len());
        let mut per_wall = Vec::with_capacity(outcomes.len());
        let (mut flows, mut events, mut iters) = (0u64, 0u64, 0u64);
        let mut experiment_wall = 0.0;
        let mut metrics: Option<SuiteMetrics> = None;
        for outcome in outcomes {
            // Flatten panic (outer) and config (inner) failures into one
            // typed error channel: callers see `Err` either way, with a
            // panic distinguishable from an input error.
            let entry = match outcome.value {
                Ok(inner) => inner,
                // scoped_map prefixes its message with "panicked: "; the
                // variant already says that.
                Err(message) => Err(ExperimentError::Panicked {
                    message: message
                        .strip_prefix("panicked: ")
                        .map_or(message.clone(), str::to_owned),
                }),
            };
            if let Ok(res) = &entry {
                flows += res.flows;
                events += res.events;
                iters += res.maxmin_iterations;
                experiment_wall += res.wall_seconds;
                per_wall.push(res.wall_seconds);
                if let Some(m) = &res.metrics {
                    metrics.get_or_insert_with(SuiteMetrics::default).absorb(m);
                }
            } else {
                per_wall.push(0.0);
            }
            results.push(entry);
        }

        let succeeded = results.iter().filter(|r| r.is_ok()).count() as u64;
        let report = SuiteReport {
            experiments: results.len() as u64,
            succeeded,
            failed: results.len() as u64 - succeeded,
            threads: threads as u64,
            wall_seconds,
            experiment_wall_seconds: experiment_wall,
            flows,
            events,
            maxmin_iterations: iters,
            events_per_second: if wall_seconds > 0.0 {
                events as f64 / wall_seconds
            } else {
                0.0
            },
            per_experiment_wall_seconds: per_wall,
            metrics,
        };
        SuiteRun { results, report }
    }
}

/// One entry out of [`scoped_map`].
pub struct MapOutcome<U> {
    /// `Ok(f(item))`, or `Err(message)` when `f` panicked.
    pub value: Result<U, String>,
    /// Wall-clock seconds `f` ran for this item.
    pub wall_seconds: f64,
}

/// Apply `f` to every item on a scoped worker pool, catching panics, and
/// return the outcomes in input order.
///
/// This is the primitive under [`ExperimentSuite::run`]; the table/figure
/// binaries also use it directly to fan out grid points that are not
/// full experiments (distance surveys, cost sweeps). With `threads == 1`
/// everything runs serially on the calling thread — no spawn at all.
pub fn scoped_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<MapOutcome<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let run_one = |index: usize, item: &T| {
        let clock = Instant::now();
        let value = catch_unwind(AssertUnwindSafe(|| f(index, item)))
            .map_err(|payload| format!("panicked: {}", panic_message(payload.as_ref())));
        MapOutcome {
            value,
            wall_seconds: clock.elapsed().as_secs_f64(),
        }
    };

    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<MapOutcome<U>>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        mine.push((i, run_one(i, item)));
                    }
                    mine
                })
            })
            .collect();
        for worker in workers {
            // Worker closures don't panic (user panics are caught inside
            // run_one), so join can only fail on abort-level conditions.
            for (i, outcome) in worker.join().expect("suite worker died") {
                slots[i] = Some(outcome);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed by exactly one worker"))
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::MappingSpec;
    use crate::topospec::TopologySpec;
    use exaflow_sim::SimConfig;
    use exaflow_workloads::WorkloadSpec;

    fn cfg(dims: Vec<u32>, tasks: usize) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::Torus { dims },
            workload: WorkloadSpec::AllReduce {
                tasks,
                bytes: 1 << 16,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
            fault_injection: None,
        }
    }

    #[test]
    fn empty_suite_runs() {
        let run = ExperimentSuite::new(vec![]).run();
        assert!(run.results.is_empty());
        assert_eq!(run.report.experiments, 0);
        assert_eq!(run.report.events_per_second, 0.0);
    }

    #[test]
    fn results_in_input_order() {
        // Distinguishable task counts so order mix-ups are visible.
        let configs = vec![cfg(vec![4, 4], 4), cfg(vec![4, 4], 8), cfg(vec![4, 4], 16)];
        let run = ExperimentSuite::new(configs).threads(3).run();
        let flows: Vec<u64> = run
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().flows)
            .collect();
        // Recursive-doubling AllReduce over n tasks: n·log2(n) flows.
        assert_eq!(flows, vec![8, 24, 64]);
    }

    #[test]
    fn config_errors_are_isolated() {
        // 16 tasks cannot fit a 2x2 torus; neighbours still succeed.
        let configs = vec![cfg(vec![4, 4], 16), cfg(vec![2, 2], 16), cfg(vec![4, 4], 8)];
        let run = ExperimentSuite::new(configs).threads(2).run();
        assert!(run.results[0].is_ok());
        assert!(run.results[1].is_err());
        assert!(run.results[2].is_ok());
        assert_eq!(run.report.succeeded, 2);
        assert_eq!(run.report.failed, 1);
        assert_eq!(run.report.per_experiment_wall_seconds[1], 0.0);
    }

    #[test]
    fn scoped_map_catches_panics() {
        let items = vec![1u32, 2, 3, 4];
        let out = scoped_map(&items, 2, |_, &x| {
            if x == 3 {
                panic!("boom on {x}");
            }
            x * 10
        });
        let values: Vec<Result<u32, String>> = out.into_iter().map(|o| o.value).collect();
        assert_eq!(values[0], Ok(10));
        assert_eq!(values[1], Ok(20));
        assert_eq!(values[3], Ok(40));
        let err = values[2].as_ref().unwrap_err();
        assert!(err.contains("boom on 3"), "{err}");
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let run = ExperimentSuite::new(vec![cfg(vec![4, 4], 8)])
            .threads(64)
            .run();
        assert_eq!(run.report.threads, 1);
        assert_eq!(run.report.succeeded, 1);
    }

    #[test]
    fn report_serializes() {
        let run = ExperimentSuite::new(vec![cfg(vec![4, 4], 8)])
            .threads(1)
            .run();
        let json = serde_json::to_string(&run.report).unwrap();
        let back: SuiteReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.experiments, 1);
        assert_eq!(back.events, run.report.events);
    }
}
