//! Parallel experiment suites: run a batch of [`ExperimentConfig`]s across
//! a scoped worker pool, isolate panics per experiment, and aggregate
//! engine statistics into a serializable [`SuiteReport`].
//!
//! The pool is built on [`std::thread::scope`] only — no external executor
//! — so suites work wherever the standard library does. Workers pull
//! experiment indices from a shared atomic counter (work stealing by
//! construction: a worker stuck on a slow experiment never blocks the
//! others), stream outcomes back over a channel the moment they complete,
//! and results are scattered back into **input order** no matter which
//! worker finished first.
//!
//! Three layers of robustness keep a long campaign alive:
//!
//! * Each experiment runs under [`std::panic::catch_unwind`]: a panicking
//!   configuration produces an `Err` entry for that experiment and leaves
//!   the rest of the suite untouched.
//! * A worker thread that dies outright (a panic escaping the isolation
//!   boundary) strands only the entry it was running: the stranded index
//!   becomes a typed [`ExperimentError::Panicked`] entry and the surviving
//!   workers finish the rest of the suite.
//! * A [`RetryPolicy`] re-runs transiently-failed entries (panics,
//!   wall-clock deadline overruns) with capped exponential backoff; an
//!   entry that keeps failing is **quarantined** into the report as
//!   [`ExperimentError::Quarantined`] with its full attempt history
//!   instead of failing the campaign.
//!
//! [`run_journaled`](ExperimentSuite::run_journaled) additionally streams
//! every finalised outcome to an append-only JSONL journal (see
//! [`crate::journal`]) so a killed process can resume without redoing
//! completed work.
//!
//! ```
//! use exaflow::prelude::*;
//!
//! let scale = SystemScale::new(64).unwrap();
//! let configs: Vec<ExperimentConfig> = [scale.torus_spec(), scale.fattree_spec()]
//!     .into_iter()
//!     .map(|topology| ExperimentConfig {
//!         topology,
//!         workload: WorkloadSpec::AllReduce { tasks: 64, bytes: 1 << 20 },
//!         mapping: MappingSpec::Linear,
//!         sim: SimConfig::default(),
//!         failures: None,
//!         fault_injection: None,
//!     })
//!     .collect();
//! let run = ExperimentSuite::new(configs).threads(2).run();
//! assert_eq!(run.results.len(), 2);
//! assert!(run.results.iter().all(Result::is_ok));
//! assert_eq!(run.report.succeeded, 2);
//! ```

use crate::error::ExperimentError;
use crate::experiment::{run_experiment_cached, ExperimentConfig, ExperimentResult};
use crate::journal::{fingerprint, Journal, JournalIndex, JournaledOutcome};
use crate::topocache::{TopoCache, TopoCacheStats};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A batch of experiments to run as one unit.
#[derive(Clone, Debug, Default)]
pub struct ExperimentSuite {
    configs: Vec<ExperimentConfig>,
    threads: Option<usize>,
    retry: RetryPolicy,
    topo_cache: Option<usize>,
}

/// How the suite treats transiently-failed entries (worker panics and
/// [`SimError::DeadlineExceeded`] overruns — failures that depend on the
/// host, not the spec). Deterministic failures (invalid specs, exhausted
/// event budgets, simulation errors) are never retried: re-running them
/// reproduces the same error by construction.
///
/// Attempt `k` (2-based) waits `backoff_base_ms * 2^(k-2)` milliseconds,
/// capped at `backoff_cap_ms`, plus a deterministic seed-derived jitter in
/// `[0, backoff_base_ms]` — so restarted campaigns replay the same pacing.
///
/// [`SimError::DeadlineExceeded`]: exaflow_sim::SimError::DeadlineExceeded
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per entry, including the first (>= 1; 1 = never
    /// retry, the default).
    #[serde(default = "default_attempts")]
    pub max_attempts: u32,
    /// Base backoff before the second attempt, milliseconds.
    #[serde(default)]
    pub backoff_base_ms: u64,
    /// Ceiling on the exponential backoff, milliseconds.
    #[serde(default)]
    pub backoff_cap_ms: u64,
    /// Seed for the deterministic jitter.
    #[serde(default)]
    pub seed: u64,
}

fn default_attempts() -> u32 {
    1
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts, 100ms base backoff
    /// capped at 5s, and a zero jitter seed.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
            seed: 0,
        }
    }

    /// True when `error` is transient — worth re-running on the same host.
    pub fn is_transient(error: &ExperimentError) -> bool {
        matches!(
            error,
            ExperimentError::Panicked { .. }
                | ExperimentError::Sim {
                    sim: exaflow_sim::SimError::DeadlineExceeded { .. },
                }
        )
    }

    /// Backoff before attempt `attempt` (2-based), milliseconds.
    fn backoff_ms(&self, attempt: u32) -> u64 {
        if attempt < 2 || self.backoff_base_ms == 0 {
            return 0;
        }
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64.checked_shl(attempt - 2).unwrap_or(u64::MAX))
            .min(self.backoff_cap_ms.max(self.backoff_base_ms));
        // SplitMix64 finalizer over (seed, attempt): deterministic jitter.
        let mut z = self.seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        exp + (z ^ (z >> 31)) % (self.backoff_base_ms + 1)
    }
}

/// Everything a finished suite produced: per-experiment outcomes in input
/// order plus the aggregate [`SuiteReport`].
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// One entry per submitted config, in submission order. A panicking or
    /// invalid experiment yields a typed [`ExperimentError`] without
    /// affecting its neighbours.
    pub results: Vec<Result<ExperimentResult, ExperimentError>>,
    /// Aggregate statistics over the whole batch.
    pub report: SuiteReport,
}

/// Aggregate statistics for one suite run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Experiments submitted.
    pub experiments: u64,
    /// Experiments that returned a result.
    pub succeeded: u64,
    /// Experiments that errored or panicked.
    pub failed: u64,
    /// Extra attempts the [`RetryPolicy`] executed in this invocation
    /// (beyond each entry's first attempt; journal-cached entries are
    /// never re-attempted, so a resumed run counts only its own work).
    #[serde(default)]
    pub retries: u64,
    /// Entries quarantined after exhausting the retry budget (a subset of
    /// `failed`; derived from the results, so it is deterministic).
    #[serde(default)]
    pub quarantined: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Wall-clock seconds for the whole suite.
    pub wall_seconds: f64,
    /// Sum of per-experiment simulation wall times — on a multi-core pool
    /// this exceeds `wall_seconds` by roughly the parallel speedup.
    pub experiment_wall_seconds: f64,
    /// Total flows simulated (successful experiments).
    pub flows: u64,
    /// Total completion events processed (successful experiments).
    pub events: u64,
    /// Total progressive-filling iterations (successful experiments).
    pub maxmin_iterations: u64,
    /// Aggregate event throughput: `events / wall_seconds`.
    pub events_per_second: f64,
    /// Per-experiment wall seconds, in submission order (0 for failures
    /// that never reached the simulator).
    pub per_experiment_wall_seconds: Vec<f64>,
    /// Aggregated engine metrics, present only when at least one
    /// experiment ran with tracing enabled (`sim.trace`); suites of
    /// untraced experiments serialize byte-identically to pre-tracing
    /// report files.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<SuiteMetrics>,
    /// Topology-cache statistics for this run (`None` with the cache
    /// disabled). **Never serialized**: the JSON report must stay
    /// byte-identical between cache-on and cache-off runs (and to
    /// pre-cache report files); the CLI surfaces these on stderr instead.
    #[serde(default, skip_serializing_if = "never_serialize")]
    pub topo_cache: Option<TopoCacheStats>,
}

/// `skip_serializing_if` helper for fields that are in-memory provenance
/// only and must never enter the serialized report.
fn never_serialize<T>(_: &T) -> bool {
    true
}

/// Engine metrics summed over every traced experiment in a suite.
///
/// Counters mirror [`exaflow_sim::MetricsSnapshot`]; histograms are left
/// per-experiment (in [`crate::ExperimentResult::metrics`]) since their
/// merge rarely answers suite-level questions.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SuiteMetrics {
    /// Experiments that carried a metrics snapshot.
    pub experiments_with_metrics: u64,
    pub flows_activated: u64,
    pub flows_started: u64,
    pub flows_finished: u64,
    pub flows_skipped: u64,
    pub faults_applied: u64,
    pub faults_cleared: u64,
    pub reroutes: u64,
    pub rate_recomputes: u64,
    /// Recomputations that degraded to a full solver pass.
    pub full_passes: u64,
    /// Total solver wall-clock seconds across all traced experiments.
    /// **Non-deterministic.**
    pub solver_seconds_total: f64,
    /// Largest single-resource utilisation observed anywhere in the suite.
    pub peak_resource_utilization: f64,
}

impl SuiteMetrics {
    /// Fold one experiment's snapshot into the aggregate.
    fn absorb(&mut self, m: &exaflow_sim::MetricsSnapshot) {
        self.experiments_with_metrics += 1;
        self.flows_activated += m.flows_activated;
        self.flows_started += m.flows_started;
        self.flows_finished += m.flows_finished;
        self.flows_skipped += m.flows_skipped;
        self.faults_applied += m.faults_applied;
        self.faults_cleared += m.faults_cleared;
        self.reroutes += m.reroutes;
        self.rate_recomputes += m.rate_recomputes;
        self.full_passes += m.full_passes;
        self.solver_seconds_total += m.solver_seconds_total;
        self.peak_resource_utilization = self
            .peak_resource_utilization
            .max(m.peak_resource_utilization);
    }
}

impl SuiteReport {
    /// Observed parallel speedup: total simulation time over suite wall
    /// time. ~1 on a single worker, approaching the worker count when the
    /// experiments are uniform.
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.experiment_wall_seconds / self.wall_seconds
        } else {
            1.0
        }
    }
}

impl ExperimentSuite {
    /// A suite over `configs`, defaulting to one worker per available core.
    pub fn new(configs: Vec<ExperimentConfig>) -> Self {
        ExperimentSuite {
            configs,
            threads: None,
            retry: RetryPolicy::default(),
            topo_cache: None,
        }
    }

    /// Use exactly `threads` workers (clamped to at least 1). One worker
    /// runs the suite serially on the calling thread.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Retry transiently-failed entries under `policy` (default: never).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Hold at most `cap` distinct topologies in the shared per-run
    /// [`TopoCache`] (default [`TopoCache::DEFAULT_CAP`]; 0 disables the
    /// cache entirely). Provably invisible either way — only build work
    /// and the provenance counters change.
    pub fn topo_cache(mut self, cap: usize) -> Self {
        self.topo_cache = Some(cap);
        self
    }

    /// The per-run topology cache this suite's configuration asks for.
    pub(crate) fn make_topo_cache(&self) -> Option<TopoCache> {
        let cap = self.topo_cache.unwrap_or(TopoCache::DEFAULT_CAP);
        (cap > 0).then(|| TopoCache::new(cap))
    }

    /// Number of experiments in the suite.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the suite holds no experiments.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    fn effective_threads(&self) -> usize {
        let requested = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        // Never spawn more workers than there is work.
        requested.min(self.configs.len()).max(1)
    }

    /// Run every experiment and aggregate the outcome.
    pub fn run(&self) -> SuiteRun {
        let cache = self.make_topo_cache();
        let (run, _) = self.run_prefilled(None, vec![None; self.len()], &|_| {}, cache.as_ref());
        run
    }

    /// Run the suite against an append-only journal at `path`: every
    /// finalised outcome is recorded the moment it completes, so a killed
    /// process loses at most in-flight work. With `resume`, outcomes
    /// already journaled for a config's [`fingerprint`] are reused instead
    /// of re-run and the final report's deterministic fields are
    /// bit-identical to an uninterrupted run; without it, the journal is
    /// truncated and the campaign starts fresh.
    pub fn run_journaled(&self, path: &Path, resume: bool) -> std::io::Result<SuiteRun> {
        let fingerprints: Vec<String> = self.configs.iter().map(fingerprint).collect();
        let mut prefilled: Vec<Option<JournaledOutcome>> = vec![None; self.len()];
        if resume {
            let mut index = JournalIndex::load(path)?;
            for (slot, fp) in prefilled.iter_mut().zip(&fingerprints) {
                *slot = index.take(fp);
            }
        }
        let mut journal = Journal::open(path, !resume)?;
        let cache = self.make_topo_cache();
        let (run, io_error) = self.run_prefilled(
            Some((&mut journal, &fingerprints)),
            prefilled,
            &|_| {},
            cache.as_ref(),
        );
        match io_error {
            Some(e) => Err(e),
            None => Ok(run),
        }
    }

    /// Test support: run the suite with a fault hook that is invoked on
    /// each worker thread *outside* the per-experiment panic isolation,
    /// with the batch-local index it just claimed — a panicking hook kills
    /// that worker dead, exactly like an abort-level failure mid-suite.
    #[doc(hidden)]
    pub fn run_with_worker_fault(&self, fault: &(dyn Fn(usize) + Sync)) -> SuiteRun {
        let cache = self.make_topo_cache();
        let (run, _) = self.run_prefilled(None, vec![None; self.len()], fault, cache.as_ref());
        run
    }

    /// The shared engine under [`run`](Self::run) and
    /// [`run_journaled`](Self::run_journaled): round-based retries over a
    /// scoped worker pool, with `prefilled` entries (journal hits) taken
    /// as already-final and every newly-finalised outcome streamed to
    /// `journal` as it completes. Returns the run plus the first journal
    /// I/O error, if any (experiments keep running; the caller decides).
    pub(crate) fn run_prefilled(
        &self,
        mut journal: Option<(&mut Journal, &[String])>,
        prefilled: Vec<Option<JournaledOutcome>>,
        fault: &(dyn Fn(usize) + Sync),
        topo_cache: Option<&TopoCache>,
    ) -> (SuiteRun, Option<std::io::Error>) {
        let n = self.configs.len();
        debug_assert_eq!(prefilled.len(), n);
        let threads = self.effective_threads();
        let started = Instant::now();

        let mut finals: Vec<Option<JournaledOutcome>> = prefilled;
        let mut histories: Vec<Vec<ExperimentError>> = vec![Vec::new(); n];
        let mut pending: Vec<usize> = (0..n).filter(|&i| finals[i].is_none()).collect();
        let mut retries = 0u64;
        let mut journal_error: Option<std::io::Error> = None;
        let max_attempts = self.retry.max_attempts.max(1);

        for attempt in 1..=max_attempts {
            if pending.is_empty() {
                break;
            }
            if attempt > 1 {
                retries += pending.len() as u64;
                let ms = self.retry.backoff_ms(attempt);
                if ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }
            }
            let batch: Vec<&ExperimentConfig> = pending.iter().map(|&i| &self.configs[i]).collect();
            let mut next_pending: Vec<usize> = Vec::new();
            scoped_map_observed(
                &batch,
                threads.min(batch.len()).max(1),
                &|_, cfg: &&ExperimentConfig| run_experiment_cached(cfg, topo_cache),
                fault,
                |k, outcome| {
                    let i = pending[k];
                    // Flatten panic (outer) and config (inner) failures
                    // into the one typed error channel.
                    let entry: JournaledOutcome = match &outcome.value {
                        Ok(inner) => inner.clone(),
                        // scoped_map prefixes its message with
                        // "panicked: "; the variant already says that.
                        Err(message) => Err(ExperimentError::Panicked {
                            message: message
                                .strip_prefix("panicked: ")
                                .map_or(message.clone(), str::to_owned),
                        }),
                    };
                    let finalised: Option<JournaledOutcome> = match entry {
                        Ok(res) => Some(Ok(res)),
                        Err(e) if !RetryPolicy::is_transient(&e) => Some(Err(e)),
                        // Transient, but retries were never requested:
                        // keep the plain error (quarantine describes an
                        // exhausted retry budget, not its absence).
                        Err(e) if max_attempts == 1 => Some(Err(e)),
                        Err(e) => {
                            histories[i].push(e);
                            if attempt == max_attempts {
                                Some(Err(ExperimentError::Quarantined {
                                    attempts: std::mem::take(&mut histories[i]),
                                }))
                            } else {
                                next_pending.push(i);
                                None
                            }
                        }
                    };
                    if let Some(entry) = finalised {
                        // Journal the outcome *now* — crash safety means a
                        // kill one experiment later must not lose this one.
                        if let Some((j, fps)) = journal.as_mut() {
                            if let Err(e) = j.record(&fps[i], &entry) {
                                journal_error.get_or_insert(e);
                            }
                        }
                        finals[i] = Some(entry);
                    }
                },
            );
            // Completion order is scheduling-dependent; retry rounds are
            // re-sorted so the retry sequence stays deterministic.
            next_pending.sort_unstable();
            pending = next_pending;
        }

        let wall_seconds = started.elapsed().as_secs_f64();
        let mut results = Vec::with_capacity(n);
        let mut per_wall = Vec::with_capacity(n);
        let (mut flows, mut events, mut iters) = (0u64, 0u64, 0u64);
        let mut experiment_wall = 0.0;
        let mut metrics: Option<SuiteMetrics> = None;
        for entry in finals {
            let entry = entry.expect("every entry finalised by the retry loop");
            if let Ok(res) = &entry {
                flows += res.flows;
                events += res.events;
                iters += res.maxmin_iterations;
                experiment_wall += res.wall_seconds;
                per_wall.push(res.wall_seconds);
                if let Some(m) = &res.metrics {
                    metrics.get_or_insert_with(SuiteMetrics::default).absorb(m);
                }
            } else {
                per_wall.push(0.0);
            }
            results.push(entry);
        }

        let succeeded = results.iter().filter(|r| r.is_ok()).count() as u64;
        let quarantined = results
            .iter()
            .filter(|r| matches!(r, Err(ExperimentError::Quarantined { .. })))
            .count() as u64;
        let report = SuiteReport {
            experiments: n as u64,
            succeeded,
            failed: n as u64 - succeeded,
            retries,
            quarantined,
            threads: threads as u64,
            wall_seconds,
            experiment_wall_seconds: experiment_wall,
            flows,
            events,
            maxmin_iterations: iters,
            events_per_second: if wall_seconds > 0.0 {
                events as f64 / wall_seconds
            } else {
                0.0
            },
            per_experiment_wall_seconds: per_wall,
            metrics,
            topo_cache: topo_cache.map(TopoCache::stats),
        };
        (SuiteRun { results, report }, journal_error)
    }
}

/// One entry out of [`scoped_map`].
pub struct MapOutcome<U> {
    /// `Ok(f(item))`, or `Err(message)` when `f` panicked.
    pub value: Result<U, String>,
    /// Wall-clock seconds `f` ran for this item.
    pub wall_seconds: f64,
}

/// Apply `f` to every item on a scoped worker pool, catching panics, and
/// return the outcomes in input order.
///
/// This is the primitive under [`ExperimentSuite::run`]; the table/figure
/// binaries also use it directly to fan out grid points that are not
/// full experiments (distance surveys, cost sweeps). With `threads == 1`
/// everything runs serially on the calling thread — no spawn at all.
///
/// A worker thread that dies outright (a panic outside the per-item
/// isolation — an invariant violation in the pool itself, not in `f`)
/// strands only the item it had claimed: that slot comes back as an
/// `Err` naming the dead worker, and the other workers drain the rest.
pub fn scoped_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<MapOutcome<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    scoped_map_observed(items, threads, &f, &|_| {}, |_, _| {})
}

/// [`scoped_map`] with two hooks: `fault(i)` runs on the worker thread
/// after claiming index `i`, *outside* the panic isolation (tests panic
/// here to simulate a dying worker); `observe(i, &outcome)` runs on the
/// **calling** thread the moment item `i`'s outcome arrives — including
/// synthesized outcomes for indices stranded by a dead worker — so
/// callers can act on completions (journaling) before the batch ends.
fn scoped_map_observed<T, U, F>(
    items: &[T],
    threads: usize,
    f: &F,
    fault: &(dyn Fn(usize) + Sync),
    mut observe: impl FnMut(usize, &MapOutcome<U>),
) -> Vec<MapOutcome<U>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let run_one = |index: usize, item: &T| {
        let clock = Instant::now();
        let value = catch_unwind(AssertUnwindSafe(|| f(index, item)))
            .map_err(|payload| format!("panicked: {}", panic_message(payload.as_ref())));
        MapOutcome {
            value,
            wall_seconds: clock.elapsed().as_secs_f64(),
        }
    };

    if threads <= 1 || items.len() <= 1 {
        // Serial path: no worker threads exist, so the fault hook (which
        // models a *worker* dying) does not apply.
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let outcome = run_one(i, item);
                observe(i, &outcome);
                outcome
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<MapOutcome<U>>> = (0..items.len()).map(|_| None).collect();
    let mut dead_workers: Vec<String> = Vec::new();
    {
        let next = &next;
        let (tx, rx) = std::sync::mpsc::channel::<(usize, MapOutcome<U>)>();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let tx = tx.clone();
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        // Outside catch_unwind: a panic here kills this
                        // worker, stranding index i (handled below).
                        fault(i);
                        let outcome = run_one(i, item);
                        if tx.send((i, outcome)).is_err() {
                            break;
                        }
                    })
                })
                .collect();
            drop(tx);
            // Drain on the calling thread as outcomes arrive; the channel
            // closes once every worker has exited (dead or alive).
            for (i, outcome) in rx {
                observe(i, &outcome);
                slots[i] = Some(outcome);
            }
            for worker in workers {
                if let Err(payload) = worker.join() {
                    dead_workers.push(panic_message(payload.as_ref()).to_owned());
                }
            }
        });
    }

    // Indices a dead worker claimed but never reported.
    let detail = if dead_workers.is_empty() {
        "unknown cause".to_owned()
    } else {
        dead_workers.join("; ")
    };
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(outcome) => outcome,
            None => {
                let outcome = MapOutcome {
                    value: Err(format!(
                        "panicked: worker thread died before reporting this entry ({detail})"
                    )),
                    wall_seconds: 0.0,
                };
                observe(i, &outcome);
                outcome
            }
        })
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::MappingSpec;
    use crate::topospec::TopologySpec;
    use exaflow_sim::SimConfig;
    use exaflow_workloads::WorkloadSpec;

    fn cfg(dims: Vec<u32>, tasks: usize) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::Torus { dims },
            workload: WorkloadSpec::AllReduce {
                tasks,
                bytes: 1 << 16,
            },
            mapping: MappingSpec::Linear,
            sim: SimConfig::default(),
            failures: None,
            fault_injection: None,
        }
    }

    #[test]
    fn empty_suite_runs() {
        let run = ExperimentSuite::new(vec![]).run();
        assert!(run.results.is_empty());
        assert_eq!(run.report.experiments, 0);
        assert_eq!(run.report.events_per_second, 0.0);
    }

    #[test]
    fn results_in_input_order() {
        // Distinguishable task counts so order mix-ups are visible.
        let configs = vec![cfg(vec![4, 4], 4), cfg(vec![4, 4], 8), cfg(vec![4, 4], 16)];
        let run = ExperimentSuite::new(configs).threads(3).run();
        let flows: Vec<u64> = run
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().flows)
            .collect();
        // Recursive-doubling AllReduce over n tasks: n·log2(n) flows.
        assert_eq!(flows, vec![8, 24, 64]);
    }

    #[test]
    fn config_errors_are_isolated() {
        // 16 tasks cannot fit a 2x2 torus; neighbours still succeed.
        let configs = vec![cfg(vec![4, 4], 16), cfg(vec![2, 2], 16), cfg(vec![4, 4], 8)];
        let run = ExperimentSuite::new(configs).threads(2).run();
        assert!(run.results[0].is_ok());
        assert!(run.results[1].is_err());
        assert!(run.results[2].is_ok());
        assert_eq!(run.report.succeeded, 2);
        assert_eq!(run.report.failed, 1);
        assert_eq!(run.report.retries, 0);
        assert_eq!(run.report.quarantined, 0);
        assert_eq!(run.report.per_experiment_wall_seconds[1], 0.0);
    }

    #[test]
    fn scoped_map_catches_panics() {
        let items = vec![1u32, 2, 3, 4];
        let out = scoped_map(&items, 2, |_, &x| {
            if x == 3 {
                panic!("boom on {x}");
            }
            x * 10
        });
        let values: Vec<Result<u32, String>> = out.into_iter().map(|o| o.value).collect();
        assert_eq!(values[0], Ok(10));
        assert_eq!(values[1], Ok(20));
        assert_eq!(values[3], Ok(40));
        let err = values[2].as_ref().unwrap_err();
        assert!(err.contains("boom on 3"), "{err}");
    }

    #[test]
    fn dead_worker_strands_only_its_claimed_item() {
        let items = vec![1u32, 2, 3, 4, 5, 6];
        let out = scoped_map_observed(
            &items,
            2,
            &|_, &x: &u32| x * 10,
            &|i| {
                if i == 2 {
                    panic!("injected worker death");
                }
            },
            |_, _| {},
        );
        assert_eq!(out.len(), 6, "every index must come back");
        for (i, o) in out.iter().enumerate() {
            if i == 2 {
                let err = o.value.as_ref().unwrap_err();
                assert!(err.contains("worker thread died"), "{err}");
                assert!(err.contains("injected worker death"), "{err}");
            } else {
                assert_eq!(o.value, Ok(items[i] * 10), "index {i}");
            }
        }
    }

    #[test]
    fn observe_sees_every_outcome_exactly_once() {
        let items: Vec<u32> = (0..16).collect();
        let mut seen = vec![0u32; items.len()];
        scoped_map_observed(&items, 4, &|_, &x: &u32| x, &|_| {}, |i, outcome| {
            seen[i] += 1;
            assert_eq!(outcome.value, Ok(i as u32));
        });
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let run = ExperimentSuite::new(vec![cfg(vec![4, 4], 8)])
            .threads(64)
            .run();
        assert_eq!(run.report.threads, 1);
        assert_eq!(run.report.succeeded, 1);
    }

    #[test]
    fn report_serializes() {
        let run = ExperimentSuite::new(vec![cfg(vec![4, 4], 8)])
            .threads(1)
            .run();
        let json = serde_json::to_string(&run.report).unwrap();
        let back: SuiteReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.experiments, 1);
        assert_eq!(back.events, run.report.events);
        assert_eq!(back.retries, 0);
        assert_eq!(back.quarantined, 0);
    }

    #[test]
    fn retry_backoff_is_capped_exponential_with_deterministic_jitter() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base_ms: 100,
            backoff_cap_ms: 400,
            seed: 7,
        };
        // No wait before the first attempt.
        assert_eq!(p.backoff_ms(1), 0);
        // Deterministic: same inputs, same waits.
        assert_eq!(p.backoff_ms(2), p.backoff_ms(2));
        for attempt in 2..=10 {
            let ms = p.backoff_ms(attempt);
            let exp = (100u64 << (attempt - 2).min(10)).min(400);
            assert!(
                ms >= exp && ms <= exp + 100,
                "attempt {attempt}: {ms} outside [{exp}, {}]",
                exp + 100
            );
        }
        // Zero base means zero wait regardless of attempt.
        assert_eq!(RetryPolicy::default().backoff_ms(5), 0);
        // Huge attempt numbers must not overflow the shift.
        let _ = p.backoff_ms(u32::MAX);
    }

    #[test]
    fn transient_classification_matches_the_retry_contract() {
        use exaflow_sim::SimError;
        assert!(RetryPolicy::is_transient(&ExperimentError::Panicked {
            message: "x".into()
        }));
        assert!(RetryPolicy::is_transient(&ExperimentError::Sim {
            sim: SimError::DeadlineExceeded {
                wall_limit_s: 1.0,
                events: 0,
                time: 0.0,
                delivered_bytes: 0,
                flows_completed: 0,
            }
        }));
        // Deterministic failures re-run to the same error: never retried.
        assert!(!RetryPolicy::is_transient(&ExperimentError::Sim {
            sim: SimError::BudgetExhausted {
                max_events: 1,
                events: 1,
                time: 0.0,
                delivered_bytes: 0,
                flows_completed: 0,
            }
        }));
        assert!(!RetryPolicy::is_transient(&ExperimentError::TooManyTasks {
            tasks: 9,
            endpoints: 4,
            topology: "t".into(),
        }));
    }
}
