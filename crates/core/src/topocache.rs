//! Content-addressed topology cache shared across campaign workers.
//!
//! Campaigns are "many workloads × few topologies": a sweep or resilience
//! grid runs dozens of entries against the same [`TopologySpec`], yet each
//! [`run_experiment`](crate::run_experiment) call would rebuild the
//! topology (and re-derive every route) from scratch. [`TopoCache`] builds
//! each distinct spec exactly once and hands out the result as an immutable
//! `Arc<dyn Topology>` to every worker thread.
//!
//! Three design points, in order:
//!
//! 1. **Content addressing.** Keys are the canonical-JSON fingerprint
//!    ([`fingerprint_value`](crate::journal::fingerprint_value)) of the
//!    *normalised* spec — the same hash the campaign journal uses — so the
//!    key survives serde round-trips and key-order permutations, and specs
//!    that build the same graph under different spellings (a fattree with
//!    `endpoints: Some(k^n)` vs `endpoints: None`) share one entry.
//! 2. **Bounded, two-generation eviction.** The cache mirrors the route
//!    cache from the fluid engine: a `fresh` and a `stale` map, rotation
//!    when `fresh` reaches half the configured capacity, promotion on a
//!    stale hit. Campaign working sets (a handful of topologies) fit
//!    easily; a pathological sweep over thousands of distinct specs
//!    degrades to bounded memory instead of unbounded growth.
//! 3. **Single-flight builds.** Each key owns a build slot (`OnceLock`);
//!    the first worker to want a spec builds it while later arrivals block
//!    on that slot rather than duplicating the work or serialising every
//!    build behind one global lock.
//!
//! Small topologies (≤ the [`Tabled`] threshold) are stored with a
//! precomputed all-pairs route table so every cached consumer also skips
//! per-call route derivation; see `exaflow_topo::route_table` for why that
//! is bit-identical and how it composes with fault wrappers.
//!
//! The cache is **provably invisible**: topologies are immutable once
//! built, routing is a pure function of `(src, dst)`, and the only
//! observable difference is provenance (the `topo_cache_hit` trace flag and
//! these [`TopoCacheStats`], neither of which enters report JSON). The
//! differential suite `tests/topo_cache_equiv.rs` enforces this end to end.

use crate::error::ExperimentError;
use crate::journal::fingerprint_value;
use crate::topospec::TopologySpec;
use exaflow_topo::{Tabled, Topology, DEFAULT_TABLE_MAX_ENDPOINTS};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A finished build slot: the built topology, or the typed error the spec
/// produced. Errors are cached too — `build` is a pure function of the
/// spec, so a failing spec fails identically every time and re-running it
/// per entry would only burn time producing the same message.
type Built = Result<Arc<dyn Topology>, ExperimentError>;

/// One single-flight build slot. The first worker to claim a key runs the
/// build inside `OnceLock::get_or_init`; concurrent claimants block on the
/// slot (not on the cache-wide lock) until the value is ready.
type Slot = Arc<OnceLock<Built>>;

/// Counters describing what a [`TopoCache`] did over its lifetime.
///
/// Surfaced on the in-memory `SuiteReport` and the CLI stderr summary
/// only — deliberately **never** serialized into report JSON, which must
/// stay byte-identical between cache-on and cache-off runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopoCacheStats {
    /// Lookups served from an existing slot (the builder may still have
    /// been in flight; the point is the work was not duplicated).
    pub hits: u64,
    /// Lookups that created a new slot and built the topology.
    pub misses: u64,
    /// Entries discarded by generation rotation.
    pub evictions: u64,
    /// Built entries small enough to get a precomputed route table.
    pub tables_built: u64,
    /// Entries resident when the stats were taken.
    pub entries: u64,
}

/// Two-generation bounded state, guarded by the cache-wide mutex. Only
/// slot *lookup/insertion* happens under this lock; topology builds run on
/// the claiming worker's thread with the lock released.
struct CacheState {
    fresh: HashMap<String, Slot>,
    stale: HashMap<String, Slot>,
    half_cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheState {
    /// Find the slot for `key`, creating (and registering) a fresh one on
    /// miss. Returns the slot and whether it already existed.
    fn lookup_or_insert(&mut self, key: &str) -> (Slot, bool) {
        if let Some(slot) = self.fresh.get(key) {
            self.hits += 1;
            return (slot.clone(), true);
        }
        if let Some(slot) = self.stale.remove(key) {
            // Promote: a stale hit re-enters the fresh generation, same as
            // the engine's route cache.
            self.hits += 1;
            self.insert(key.to_owned(), slot.clone());
            return (slot, true);
        }
        self.misses += 1;
        let slot: Slot = Arc::new(OnceLock::new());
        self.insert(key.to_owned(), slot.clone());
        (slot, false)
    }

    fn insert(&mut self, key: String, slot: Slot) {
        if self.half_cap == 0 {
            return;
        }
        if self.fresh.len() >= self.half_cap {
            self.evictions += self.stale.len() as u64;
            self.stale = std::mem::take(&mut self.fresh);
        }
        self.fresh.insert(key, slot);
    }
}

/// Bounded, thread-safe cache of built topologies, keyed by
/// [`topology_cache_key`].
pub struct TopoCache {
    state: Mutex<CacheState>,
    table_max_endpoints: usize,
    tables_built: AtomicU64,
}

impl TopoCache {
    /// Default capacity for campaign runners: far above any real sweep's
    /// distinct-topology count, small enough that even pathological
    /// spec-per-entry campaigns stay bounded.
    pub const DEFAULT_CAP: usize = 64;

    /// A cache holding at most `cap` topologies (two generations of
    /// `cap.div_ceil(2)`), with the default route-table threshold.
    pub fn new(cap: usize) -> TopoCache {
        TopoCache::with_table_threshold(cap, DEFAULT_TABLE_MAX_ENDPOINTS)
    }

    /// Like [`TopoCache::new`], but building route tables only for
    /// topologies with at most `table_max_endpoints` endpoints (0 disables
    /// tables entirely).
    pub fn with_table_threshold(cap: usize, table_max_endpoints: usize) -> TopoCache {
        TopoCache {
            state: Mutex::new(CacheState {
                fresh: HashMap::new(),
                stale: HashMap::new(),
                half_cap: cap.div_ceil(2),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            table_max_endpoints,
            tables_built: AtomicU64::new(0),
        }
    }

    /// The built topology for `spec`, building it exactly once per cache
    /// residency. The `bool` is the provenance flag stamped into the trace
    /// header: `true` when the slot already existed (another entry paid
    /// for the build).
    pub fn get_or_build(
        &self,
        spec: &TopologySpec,
    ) -> Result<(Arc<dyn Topology>, bool), ExperimentError> {
        let key = topology_cache_key(spec);
        let (slot, hit) = {
            let mut state = self.state.lock().expect("topology cache lock poisoned");
            state.lookup_or_insert(&key)
        };
        let built = slot.get_or_init(|| self.build_entry(spec));
        built.clone().map(|topo| (topo, hit))
    }

    fn build_entry(&self, spec: &TopologySpec) -> Built {
        let boxed = spec.build()?;
        if boxed.num_endpoints() <= self.table_max_endpoints {
            self.tables_built.fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(Tabled::new(boxed)))
        } else {
            Ok(Arc::from(boxed))
        }
    }

    /// Lifetime counters (see [`TopoCacheStats`] for field semantics).
    pub fn stats(&self) -> TopoCacheStats {
        let state = self.state.lock().expect("topology cache lock poisoned");
        TopoCacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            tables_built: self.tables_built.load(Ordering::Relaxed),
            entries: (state.fresh.len() + state.stale.len()) as u64,
        }
    }
}

/// The cache key for `spec`: the canonical-JSON fingerprint of its
/// *normalised* form.
///
/// Normalisation strips spellings that do not affect the built graph — a
/// fattree or GHC asking for exactly its full endpoint population is the
/// same graph as one that leaves `endpoints` unset — so such specs share a
/// cache entry. Canonical JSON (recursively sorted keys) makes the key
/// insensitive to serde key order, mirroring the journal fingerprint.
pub fn topology_cache_key(spec: &TopologySpec) -> String {
    let value =
        serde_json::to_value(&normalize(spec)).expect("topology spec serialization is infallible");
    fingerprint_value(&value)
}

/// Rewrite `spec` into its canonical spelling: `endpoints: Some(full)`
/// becomes `endpoints: None` for the partially-populatable families.
/// Overflowing parameter combinations are left untouched — they fail in
/// `build` with a typed error either way.
fn normalize(spec: &TopologySpec) -> TopologySpec {
    let mut spec = spec.clone();
    match &mut spec {
        TopologySpec::Fattree { k, n, endpoints } => {
            let full = (*k as usize).checked_pow(*n);
            if endpoints.is_some() && *endpoints == full {
                *endpoints = None;
            }
        }
        TopologySpec::Ghc {
            dims,
            ports_per_router,
            endpoints,
        } => {
            let full = dims
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d as usize))
                .and_then(|routers| routers.checked_mul(*ports_per_router as usize));
            if endpoints.is_some() && *endpoints == full {
                *endpoints = None;
            }
        }
        _ => {}
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus(d: u32) -> TopologySpec {
        TopologySpec::Torus { dims: vec![d, d] }
    }

    #[test]
    fn builds_once_and_counts_hits() {
        let cache = TopoCache::new(8);
        let (a, hit_a) = cache.get_or_build(&torus(4)).unwrap();
        let (b, hit_b) = cache.get_or_build(&torus(4)).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "same spec must share one build");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.tables_built, 1);
    }

    #[test]
    fn build_errors_are_returned_per_call() {
        let cache = TopoCache::new(8);
        let bad = TopologySpec::Torus { dims: vec![] };
        assert!(cache.get_or_build(&bad).is_err());
        assert!(cache.get_or_build(&bad).is_err());
        // The error slot is cached like any other entry.
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn two_generation_rotation_bounds_the_cache() {
        let cache = TopoCache::new(4); // half_cap = 2
        for d in 2..10 {
            cache.get_or_build(&torus(d)).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 8);
        assert_eq!(stats.hits, 0);
        assert!(stats.entries <= 4, "entries {} exceed cap", stats.entries);
        assert!(stats.evictions > 0);
    }

    #[test]
    fn cap_zero_disables_retention() {
        let cache = TopoCache::new(0);
        cache.get_or_build(&torus(4)).unwrap();
        cache.get_or_build(&torus(4)).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn large_topologies_skip_the_route_table() {
        let cache = TopoCache::with_table_threshold(8, 8);
        cache.get_or_build(&torus(2)).unwrap(); // 4 endpoints: tabled
        cache.get_or_build(&torus(4)).unwrap(); // 16 endpoints: raw
        assert_eq!(cache.stats().tables_built, 1);
    }

    #[test]
    fn full_population_spellings_share_a_key() {
        let explicit = TopologySpec::Fattree {
            k: 4,
            n: 2,
            endpoints: Some(16),
        };
        let implicit = TopologySpec::Fattree {
            k: 4,
            n: 2,
            endpoints: None,
        };
        let partial = TopologySpec::Fattree {
            k: 4,
            n: 2,
            endpoints: Some(12),
        };
        assert_eq!(topology_cache_key(&explicit), topology_cache_key(&implicit));
        assert_ne!(topology_cache_key(&explicit), topology_cache_key(&partial));

        let ghc_full = TopologySpec::Ghc {
            dims: vec![4, 4],
            ports_per_router: 2,
            endpoints: Some(32),
        };
        let ghc_none = TopologySpec::Ghc {
            dims: vec![4, 4],
            ports_per_router: 2,
            endpoints: None,
        };
        assert_eq!(topology_cache_key(&ghc_full), topology_cache_key(&ghc_none));

        let cache = TopoCache::new(8);
        cache.get_or_build(&explicit).unwrap();
        let (_, hit) = cache.get_or_build(&implicit).unwrap();
        assert!(hit, "normalised spellings must share one cache entry");
    }

    #[test]
    fn concurrent_workers_build_each_spec_once() {
        let cache = TopoCache::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for d in [4u32, 5, 6] {
                        cache.get_or_build(&torus(d)).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 3, "one build per distinct spec");
        assert_eq!(stats.hits, 8 * 3 - 3);
    }
}
