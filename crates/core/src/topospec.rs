//! Declarative topology configuration.

use crate::error::ExperimentError;
use exaflow_topo::{
    ConnectionRule, Dragonfly, GeneralizedHypercube, Jellyfish, KAryTree, Nested, Topology, Torus,
    UpperTierKind,
};

/// Shorthand for [`ExperimentError::InvalidTopology`].
fn invalid(reason: impl Into<String>) -> ExperimentError {
    ExperimentError::InvalidTopology {
        reason: reason.into(),
    }
}

/// Hard sanity cap on node counts derived from spec arithmetic: anything
/// this side of a billion routers is a typo, not an exascale design point,
/// and catching it here keeps `build` panic-free on adversarial configs.
const MAX_ENDPOINTS: usize = 1 << 30;

/// Product of a dimension vector, rejecting zero dimensions and overflow
/// with a typed error instead of panicking (or silently wrapping) in the
/// constructor.
fn checked_product(dims: &[u32], what: &str) -> Result<usize, ExperimentError> {
    let mut total: usize = 1;
    for &d in dims {
        if d == 0 {
            return Err(invalid(format!("{what} dimensions must be positive")));
        }
        total = total
            .checked_mul(d as usize)
            .filter(|&t| t <= MAX_ENDPOINTS)
            .ok_or_else(|| invalid(format!("{what} dimensions {dims:?} overflow")))?;
    }
    Ok(total)
}
use serde::{Deserialize, Serialize};

/// Every topology of the study, as tagged configuration data.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "topology", rename_all = "snake_case")]
pub enum TopologySpec {
    /// d-dimensional torus (the paper's `Torus3D` baseline when 3-D).
    Torus { dims: Vec<u32> },
    /// k-ary n-tree fattree, optionally partially populated.
    Fattree {
        k: u32,
        n: u32,
        #[serde(default)]
        endpoints: Option<usize>,
    },
    /// Standalone generalised hypercube.
    Ghc {
        dims: Vec<u32>,
        ports_per_router: u32,
        #[serde(default)]
        endpoints: Option<usize>,
    },
    /// NestTree / NestGHC hybrid: `subtori` subtori of `t³` QFDBs with one
    /// uplink per `u` QFDBs.
    Nested {
        upper: UpperTierKind,
        subtori: u64,
        t: u32,
        u: u32,
    },
    /// Dragonfly comparator (extension; see `exaflow_topo::dragonfly`).
    Dragonfly { groups: u32, a: u32, p: u32, h: u32 },
    /// Jellyfish comparator (extension; see `exaflow_topo::jellyfish`).
    Jellyfish {
        switches: u32,
        endpoint_ports: u32,
        fabric_degree: u32,
        seed: u64,
    },
}

impl TopologySpec {
    /// Number of endpoints the built topology will have.
    pub fn num_endpoints(&self) -> usize {
        match self {
            TopologySpec::Torus { dims } => dims.iter().map(|&d| d as usize).product(),
            TopologySpec::Fattree { k, n, endpoints } => endpoints.unwrap_or((*k as usize).pow(*n)),
            TopologySpec::Ghc {
                dims,
                ports_per_router,
                endpoints,
            } => endpoints.unwrap_or_else(|| {
                dims.iter().map(|&d| d as usize).product::<usize>() * *ports_per_router as usize
            }),
            TopologySpec::Nested { subtori, t, .. } => (*subtori as usize) * (*t as usize).pow(3),
            TopologySpec::Dragonfly { groups, a, p, .. } => {
                (*groups as usize) * (*a as usize) * (*p as usize)
            }
            TopologySpec::Jellyfish {
                switches,
                endpoint_ports,
                ..
            } => (*switches as usize) * (*endpoint_ports as usize),
        }
    }

    /// Instantiate the topology, or explain why the spec is invalid as a
    /// typed [`ExperimentError::InvalidTopology`].
    pub fn build(&self) -> Result<Box<dyn Topology>, ExperimentError> {
        match self {
            TopologySpec::Torus { dims } => {
                if dims.is_empty() {
                    return Err(invalid("torus needs at least one dimension"));
                }
                checked_product(dims, "torus")?;
                Ok(Box::new(Torus::new(dims)))
            }
            TopologySpec::Fattree { k, n, endpoints } => {
                if *k < 2 || *n < 1 {
                    return Err(invalid(format!("invalid fattree parameters k={k}, n={n}")));
                }
                let full = (*k as usize)
                    .checked_pow(*n)
                    .filter(|&e| e <= MAX_ENDPOINTS)
                    .ok_or_else(|| {
                        invalid(format!(
                            "fattree k={k}, n={n}: k^n endpoint count overflows"
                        ))
                    })?;
                let eps = endpoints.unwrap_or(full);
                if eps == 0 || eps > full {
                    return Err(invalid(format!(
                        "fattree k={k}, n={n} hosts 1..={full} endpoints, got {eps}"
                    )));
                }
                Ok(Box::new(KAryTree::with_endpoints(*k, *n, eps)))
            }
            TopologySpec::Ghc {
                dims,
                ports_per_router,
                endpoints,
            } => {
                if dims.is_empty() || *ports_per_router == 0 {
                    return Err(invalid("invalid GHC parameters"));
                }
                let routers = checked_product(dims, "GHC")?;
                let full = routers
                    .checked_mul(*ports_per_router as usize)
                    .filter(|&e| e <= MAX_ENDPOINTS)
                    .ok_or_else(|| invalid("GHC endpoint count overflows"))?;
                let eps = endpoints.unwrap_or(full);
                if eps == 0 || eps > full {
                    return Err(invalid(format!(
                        "GHC {dims:?} x{ports_per_router} hosts 1..={full} endpoints, got {eps}"
                    )));
                }
                Ok(Box::new(GeneralizedHypercube::with_endpoints(
                    dims,
                    *ports_per_router,
                    eps,
                )))
            }
            TopologySpec::Nested {
                upper,
                subtori,
                t,
                u,
            } => {
                let rule = ConnectionRule::from_u(*u)
                    .ok_or_else(|| invalid(format!("u must be 1, 2, 4 or 8, got {u}")))?;
                if *t < 2 {
                    return Err(invalid(format!("subtorus size t={t} must be >= 2")));
                }
                if *subtori == 0 {
                    return Err(invalid("need at least one subtorus"));
                }
                let per_subtorus = (*t as usize)
                    .checked_pow(3)
                    .filter(|&e| e <= MAX_ENDPOINTS)
                    .ok_or_else(|| invalid(format!("subtorus size t={t} overflows")))?;
                if (*subtori as u128) * (per_subtorus as u128) > MAX_ENDPOINTS as u128 {
                    return Err(invalid(format!(
                        "{subtori} subtori of t={t} overflow the endpoint count"
                    )));
                }
                Ok(Box::new(Nested::new(*upper, *subtori, *t, rule)))
            }
            TopologySpec::Dragonfly { groups, a, p, h } => {
                if *groups == 0 || *a == 0 || *p == 0 || *h == 0 {
                    return Err(invalid("dragonfly parameters must be positive"));
                }
                if *groups > *a * *h + 1 {
                    return Err(invalid(format!(
                        "{groups} groups exceed the {} a dragonfly with a={a}, h={h} supports",
                        *a * *h + 1
                    )));
                }
                Ok(Box::new(Dragonfly::new(*groups, *a, *p, *h)))
            }
            TopologySpec::Jellyfish {
                switches,
                endpoint_ports,
                fabric_degree,
                seed,
            } => {
                if *switches < 2
                    || *endpoint_ports == 0
                    || *fabric_degree == 0
                    || *fabric_degree >= *switches
                    || !(*switches as u64 * *fabric_degree as u64).is_multiple_of(2)
                {
                    return Err(invalid("invalid jellyfish parameters"));
                }
                Ok(Box::new(Jellyfish::new(
                    *switches,
                    *endpoint_ports,
                    *fabric_degree,
                    *seed,
                )))
            }
        }
    }

    /// The display name the built topology will report.
    pub fn display_name(&self) -> String {
        match self.build() {
            Ok(t) => t.name(),
            Err(e) => format!("<invalid: {e}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_variant() {
        let specs = [
            TopologySpec::Torus {
                dims: vec![4, 4, 2],
            },
            TopologySpec::Fattree {
                k: 4,
                n: 2,
                endpoints: None,
            },
            TopologySpec::Ghc {
                dims: vec![4, 4],
                ports_per_router: 2,
                endpoints: None,
            },
            TopologySpec::Nested {
                upper: UpperTierKind::Fattree,
                subtori: 4,
                t: 2,
                u: 4,
            },
            TopologySpec::Dragonfly {
                groups: 5,
                a: 2,
                p: 1,
                h: 2,
            },
            TopologySpec::Jellyfish {
                switches: 10,
                endpoint_ports: 2,
                fabric_degree: 3,
                seed: 1,
            },
        ];
        for s in &specs {
            let topo = s.build().unwrap();
            assert_eq!(topo.num_endpoints(), s.num_endpoints(), "{s:?}");
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(TopologySpec::Torus { dims: vec![] }.build().is_err());
        assert!(TopologySpec::Nested {
            upper: UpperTierKind::Fattree,
            subtori: 4,
            t: 2,
            u: 3,
        }
        .build()
        .is_err());
        assert!(TopologySpec::Nested {
            upper: UpperTierKind::Fattree,
            subtori: 4,
            t: 1,
            u: 1,
        }
        .build()
        .is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let s = TopologySpec::Nested {
            upper: UpperTierKind::GeneralizedHypercube,
            subtori: 64,
            t: 4,
            u: 2,
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"topology\":\"nested\""));
        let back: TopologySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn partial_fattree_endpoint_count() {
        let s = TopologySpec::Fattree {
            k: 4,
            n: 3,
            endpoints: Some(40),
        };
        assert_eq!(s.num_endpoints(), 40);
        assert_eq!(s.build().unwrap().num_endpoints(), 40);
    }
}
