//! Breadth-first search over link hops.
//!
//! Used by tests and the analysis crate to cross-check the analytic distance
//! functions of each topology against ground truth on small instances.

use crate::ids::NodeId;
use crate::network::Network;

/// Physical-only adjacency of a [`Network`] as a flat u32 CSR: for each
/// node, the ids of the nodes reachable over one *physical* link.
///
/// This strips the two indirections the hop-metric BFS does not need —
/// link records (BFS cares about the far node, not the link) and virtual
/// links (NIC serialisation links never count as hops) — so a sweep over
/// many sources touches two dense `u32` arrays and nothing else. Parallel
/// physical links collapse to one adjacency entry (BFS only asks about
/// reachability in one hop).
#[derive(Clone, Debug)]
pub struct PhysCsr {
    /// `num_nodes + 1` offsets into `targets`.
    offsets: Vec<u32>,
    /// Neighbor node ids, grouped by source node, destination-sorted.
    targets: Vec<u32>,
    num_endpoints: usize,
}

impl PhysCsr {
    /// Extract the physical adjacency of `net`.
    pub fn new(net: &Network) -> PhysCsr {
        let nodes = net.num_nodes();
        let mut offsets = Vec::with_capacity(nodes + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for node in net.node_ids() {
            let mut prev = u32::MAX;
            for &lid in net.out_links(node) {
                let link = net.link(lid);
                if link.is_virtual {
                    continue;
                }
                // Adjacency groups are destination-sorted, so parallel
                // links are adjacent; keep the first of each run.
                if link.dst.0 != prev {
                    targets.push(link.dst.0);
                    prev = link.dst.0;
                }
            }
            let end = u32::try_from(targets.len()).expect("physical adjacency exceeds u32 range");
            offsets.push(end);
        }
        PhysCsr {
            offsets,
            targets,
            num_endpoints: net.num_endpoints(),
        }
    }

    /// Total number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of compute endpoints (node ids `0..num_endpoints`).
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        self.num_endpoints
    }

    /// Physical neighbor node ids of `node`.
    #[inline]
    pub fn neighbors(&self, node: u32) -> &[u32] {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        &self.targets[lo..hi]
    }
}

/// Reusable scratch buffers for repeated BFS sweeps from different sources,
/// avoiding per-call allocation (a Rust Performance Book staple).
///
/// Two kernels share the scratch: the link-walking [`run`](BfsScratch::run)
/// over a [`Network`] (honours virtual links on demand), and the
/// frontier-bitset [`run_csr`](BfsScratch::run_csr) over a [`PhysCsr`] —
/// the paper-scale path, which keeps its frontiers as dense `u32` vectors
/// and its visited set as a bitset so a 131 072-endpoint sweep stays
/// allocation-free and cache-resident after the first source.
#[derive(Debug, Default)]
pub struct BfsScratch {
    dist: Vec<u32>,
    queue: Vec<NodeId>,
    /// Current / next BFS frontier (node ids), for the CSR kernel.
    frontier: Vec<u32>,
    next: Vec<u32>,
    /// Visited bitset, one bit per node, for the CSR kernel.
    seen: Vec<u64>,
}

impl BfsScratch {
    /// Create scratch sized for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            dist: vec![u32::MAX; nodes],
            queue: Vec::with_capacity(nodes),
            frontier: Vec::with_capacity(nodes),
            next: Vec::with_capacity(nodes),
            seen: vec![0u64; nodes.div_ceil(64)],
        }
    }

    /// Distances computed by the most recent run; `u32::MAX` = unreachable.
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// Run the frontier-bitset BFS from `src` over the physical CSR.
    ///
    /// Level-synchronous: the current frontier is a dense `u32` vector, the
    /// visited set a bitset, so the inner loop is two array reads, a bit
    /// test and (rarely) two writes per edge — no link records, no hash
    /// sets, no allocation after the scratch is warm. Distances land in
    /// [`distances`](BfsScratch::distances) (`u32::MAX` = unreachable).
    pub fn run_csr(&mut self, csr: &PhysCsr, src: NodeId) {
        assert_eq!(
            self.dist.len(),
            csr.num_nodes(),
            "scratch sized for a different network"
        );
        self.dist.fill(u32::MAX);
        self.seen.fill(0);
        self.frontier.clear();
        self.next.clear();
        self.dist[src.index()] = 0;
        self.seen[src.index() / 64] |= 1u64 << (src.index() % 64);
        self.frontier.push(src.0);
        let mut level = 0u32;
        while !self.frontier.is_empty() {
            level += 1;
            self.next.clear();
            for &u in &self.frontier {
                for &v in csr.neighbors(u) {
                    let (word, bit) = (v as usize / 64, 1u64 << (v as usize % 64));
                    if self.seen[word] & bit == 0 {
                        self.seen[word] |= bit;
                        self.dist[v as usize] = level;
                        self.next.push(v);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
    }

    /// Per-source distance kernel: BFS from `src` and accumulate the hop
    /// distance of every *other endpoint* into `histogram[d] += 1`, without
    /// materialising any route. Unreachable endpoints are not counted.
    ///
    /// Returns the number of endpoints counted. Panics if an endpoint sits
    /// farther than `histogram.len() - 1` hops — size the histogram from
    /// the topology's diameter bound.
    pub fn endpoint_histogram(&mut self, csr: &PhysCsr, src: NodeId, histogram: &mut [u64]) -> u64 {
        self.run_csr(csr, src);
        let mut counted = 0u64;
        for (node, &d) in self.dist[..csr.num_endpoints()].iter().enumerate() {
            if node as u32 == src.0 || d == u32::MAX {
                continue;
            }
            histogram[d as usize] += 1;
            counted += 1;
        }
        counted
    }

    /// Run BFS from `src`. If `physical_only`, virtual links are not
    /// traversed (this is the hop metric used in the paper's Table 1).
    pub fn run(&mut self, net: &Network, src: NodeId, physical_only: bool) {
        assert_eq!(
            self.dist.len(),
            net.num_nodes(),
            "scratch sized for a different network"
        );
        self.dist.fill(u32::MAX);
        self.queue.clear();
        self.dist[src.index()] = 0;
        self.queue.push(src);
        let mut head = 0;
        while head < self.queue.len() {
            let node = self.queue[head];
            head += 1;
            let d = self.dist[node.index()];
            for &lid in net.out_links(node) {
                let link = net.link(lid);
                if physical_only && link.is_virtual {
                    continue;
                }
                let next = link.dst;
                if self.dist[next.index()] == u32::MAX {
                    self.dist[next.index()] = d + 1;
                    self.queue.push(next);
                }
            }
        }
    }
}

/// One-shot BFS distances from `src` over all links.
pub fn bfs_distances(net: &Network, src: NodeId) -> Vec<u32> {
    let mut s = BfsScratch::new(net.num_nodes());
    s.run(net, src, false);
    s.dist
}

/// One-shot BFS distances from `src` over physical links only.
pub fn bfs_distances_physical(net: &Network, src: NodeId) -> Vec<u32> {
    let mut s = BfsScratch::new(net.num_nodes());
    s.run(net, src, true);
    s.dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    /// A 4-node directed ring: 0 -> 1 -> 2 -> 3 -> 0.
    fn ring4() -> Network {
        let mut b = NetworkBuilder::new();
        let eps: Vec<NodeId> = (0..4).map(|_| b.add_endpoint()).collect();
        for i in 0..4 {
            b.add_link(eps[i], eps[(i + 1) % 4], 1.0);
        }
        b.build()
    }

    #[test]
    fn ring_distances() {
        let net = ring4();
        let d = bfs_distances(&net, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_is_max() {
        let mut b = NetworkBuilder::new();
        b.add_endpoint();
        b.add_endpoint();
        let net = b.build();
        let d = bfs_distances(&net, NodeId(0));
        assert_eq!(d[1], u32::MAX);
    }

    #[test]
    fn physical_only_skips_virtual() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        let e2 = b.add_endpoint();
        b.add_virtual_link(e0, e1, 1.0);
        b.add_link(e1, e2, 1.0);
        let net = b.build();
        let d_all = bfs_distances(&net, e0);
        assert_eq!(d_all[2], 2);
        let d_phys = bfs_distances_physical(&net, e0);
        assert_eq!(d_phys[1], u32::MAX);
        assert_eq!(d_phys[2], u32::MAX);
    }

    #[test]
    fn scratch_reuse_across_sources() {
        let net = ring4();
        let mut s = BfsScratch::new(net.num_nodes());
        s.run(&net, NodeId(0), false);
        assert_eq!(s.distances()[3], 3);
        s.run(&net, NodeId(3), false);
        assert_eq!(s.distances()[0], 1);
        assert_eq!(s.distances()[2], 3);
    }

    #[test]
    #[should_panic(expected = "different network")]
    fn scratch_size_mismatch_panics() {
        let net = ring4();
        let mut s = BfsScratch::new(2);
        s.run(&net, NodeId(0), false);
    }

    #[test]
    fn csr_bfs_matches_link_walking_bfs() {
        // Endpoints + a switch + a virtual link + a parallel physical pair:
        // every wrinkle the CSR must normalise away.
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        let e2 = b.add_endpoint();
        let s = b.add_switch();
        b.add_duplex(e0, s, 1.0);
        b.add_duplex(e1, s, 1.0);
        b.add_link(e1, e2, 1.0);
        b.add_link(e1, e2, 1.0); // parallel link
        b.add_virtual_link(e0, e2, 1.0); // must not shortcut the hop metric
        let net = b.build();
        let csr = PhysCsr::new(&net);
        assert_eq!(csr.num_nodes(), net.num_nodes());
        assert_eq!(csr.num_endpoints(), net.num_endpoints());
        // The parallel pair collapses to one adjacency entry.
        assert_eq!(csr.neighbors(e1.0), &[e2.0, s.0]);
        let mut scratch = BfsScratch::new(net.num_nodes());
        for src in net.node_ids() {
            let want = bfs_distances_physical(&net, src);
            scratch.run_csr(&csr, src);
            assert_eq!(scratch.distances(), &want[..], "src {src}");
        }
    }

    #[test]
    fn csr_bfs_on_ring_and_scratch_reuse() {
        let net = ring4();
        let csr = PhysCsr::new(&net);
        let mut s = BfsScratch::new(net.num_nodes());
        s.run_csr(&csr, NodeId(0));
        assert_eq!(s.distances(), &[0, 1, 2, 3]);
        s.run_csr(&csr, NodeId(3));
        assert_eq!(s.distances(), &[1, 2, 3, 0]);
    }

    #[test]
    fn endpoint_histogram_counts_endpoints_only() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        let s = b.add_switch();
        b.add_duplex(e0, s, 1.0);
        b.add_duplex(e1, s, 1.0);
        let net = b.build();
        let csr = PhysCsr::new(&net);
        let mut scratch = BfsScratch::new(net.num_nodes());
        let mut hist = vec![0u64; 4];
        let counted = scratch.endpoint_histogram(&csr, e0, &mut hist);
        // Only e1 (2 hops via the switch) counts; the switch itself does not.
        assert_eq!(counted, 1);
        assert_eq!(hist, vec![0, 0, 1, 0]);
    }

    #[test]
    fn endpoint_histogram_skips_unreachable() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        b.add_endpoint();
        let net = b.build();
        let csr = PhysCsr::new(&net);
        let mut scratch = BfsScratch::new(net.num_nodes());
        let mut hist = vec![0u64; 1];
        assert_eq!(scratch.endpoint_histogram(&csr, e0, &mut hist), 0);
        assert_eq!(hist, vec![0]);
    }
}
