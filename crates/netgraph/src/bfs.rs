//! Breadth-first search over link hops.
//!
//! Used by tests and the analysis crate to cross-check the analytic distance
//! functions of each topology against ground truth on small instances.

use crate::ids::NodeId;
use crate::network::Network;

/// Reusable scratch buffers for repeated BFS sweeps from different sources,
/// avoiding per-call allocation (a Rust Performance Book staple).
#[derive(Debug, Default)]
pub struct BfsScratch {
    dist: Vec<u32>,
    queue: Vec<NodeId>,
}

impl BfsScratch {
    /// Create scratch sized for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            dist: vec![u32::MAX; nodes],
            queue: Vec::with_capacity(nodes),
        }
    }

    /// Distances computed by the most recent run; `u32::MAX` = unreachable.
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// Run BFS from `src`. If `physical_only`, virtual links are not
    /// traversed (this is the hop metric used in the paper's Table 1).
    pub fn run(&mut self, net: &Network, src: NodeId, physical_only: bool) {
        assert_eq!(
            self.dist.len(),
            net.num_nodes(),
            "scratch sized for a different network"
        );
        self.dist.fill(u32::MAX);
        self.queue.clear();
        self.dist[src.index()] = 0;
        self.queue.push(src);
        let mut head = 0;
        while head < self.queue.len() {
            let node = self.queue[head];
            head += 1;
            let d = self.dist[node.index()];
            for &lid in net.out_links(node) {
                let link = net.link(lid);
                if physical_only && link.is_virtual {
                    continue;
                }
                let next = link.dst;
                if self.dist[next.index()] == u32::MAX {
                    self.dist[next.index()] = d + 1;
                    self.queue.push(next);
                }
            }
        }
    }
}

/// One-shot BFS distances from `src` over all links.
pub fn bfs_distances(net: &Network, src: NodeId) -> Vec<u32> {
    let mut s = BfsScratch::new(net.num_nodes());
    s.run(net, src, false);
    s.dist
}

/// One-shot BFS distances from `src` over physical links only.
pub fn bfs_distances_physical(net: &Network, src: NodeId) -> Vec<u32> {
    let mut s = BfsScratch::new(net.num_nodes());
    s.run(net, src, true);
    s.dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    /// A 4-node directed ring: 0 -> 1 -> 2 -> 3 -> 0.
    fn ring4() -> Network {
        let mut b = NetworkBuilder::new();
        let eps: Vec<NodeId> = (0..4).map(|_| b.add_endpoint()).collect();
        for i in 0..4 {
            b.add_link(eps[i], eps[(i + 1) % 4], 1.0);
        }
        b.build()
    }

    #[test]
    fn ring_distances() {
        let net = ring4();
        let d = bfs_distances(&net, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_is_max() {
        let mut b = NetworkBuilder::new();
        b.add_endpoint();
        b.add_endpoint();
        let net = b.build();
        let d = bfs_distances(&net, NodeId(0));
        assert_eq!(d[1], u32::MAX);
    }

    #[test]
    fn physical_only_skips_virtual() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        let e2 = b.add_endpoint();
        b.add_virtual_link(e0, e1, 1.0);
        b.add_link(e1, e2, 1.0);
        let net = b.build();
        let d_all = bfs_distances(&net, e0);
        assert_eq!(d_all[2], 2);
        let d_phys = bfs_distances_physical(&net, e0);
        assert_eq!(d_phys[1], u32::MAX);
        assert_eq!(d_phys[2], u32::MAX);
    }

    #[test]
    fn scratch_reuse_across_sources() {
        let net = ring4();
        let mut s = BfsScratch::new(net.num_nodes());
        s.run(&net, NodeId(0), false);
        assert_eq!(s.distances()[3], 3);
        s.run(&net, NodeId(3), false);
        assert_eq!(s.distances()[0], 1);
        assert_eq!(s.distances()[2], 3);
    }

    #[test]
    #[should_panic(expected = "different network")]
    fn scratch_size_mismatch_panics() {
        let net = ring4();
        let mut s = BfsScratch::new(2);
        s.run(&net, NodeId(0), false);
    }
}
