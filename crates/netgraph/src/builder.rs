//! Incremental construction of [`Network`]s.

use crate::ids::{LinkId, NodeId};
use crate::network::{Link, Network, NodeKind};

/// Builder for [`Network`].
///
/// Endpoints must be added before any switch, because endpoints are required
/// to occupy the contiguous id range `0..num_endpoints`. The builder enforces
/// this with a panic, which turns a topology-generator bug into an immediate
/// failure rather than a silently mis-indexed network.
#[derive(Default, Debug)]
pub struct NetworkBuilder {
    kinds: Vec<NodeKind>,
    links: Vec<Link>,
    num_endpoints: usize,
    switches_started: bool,
}

impl NetworkBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with capacity reserved for `nodes` nodes and
    /// `links` unidirectional links.
    pub fn with_capacity(nodes: usize, links: usize) -> Self {
        Self {
            kinds: Vec::with_capacity(nodes),
            links: Vec::with_capacity(links),
            num_endpoints: 0,
            switches_started: false,
        }
    }

    /// Add a compute endpoint. Panics if a switch was already added.
    pub fn add_endpoint(&mut self) -> NodeId {
        assert!(
            !self.switches_started,
            "all endpoints must be added before the first switch"
        );
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Endpoint);
        self.num_endpoints += 1;
        id
    }

    /// Add `n` endpoints, returning the id of the first.
    pub fn add_endpoints(&mut self, n: usize) -> NodeId {
        let first = NodeId(self.kinds.len() as u32);
        for _ in 0..n {
            self.add_endpoint();
        }
        first
    }

    /// Add a switch node.
    pub fn add_switch(&mut self) -> NodeId {
        self.switches_started = true;
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Switch);
        id
    }

    /// Add `n` switches, returning the id of the first.
    pub fn add_switches(&mut self, n: usize) -> NodeId {
        let first = NodeId(self.kinds.len() as u32);
        for _ in 0..n {
            self.add_switch();
        }
        first
    }

    /// Add a unidirectional physical link.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, capacity_bps: f64) -> LinkId {
        self.push_link(src, dst, capacity_bps, false)
    }

    /// Add a unidirectional virtual (NIC) link. Virtual links share bandwidth
    /// but are excluded from hop counts.
    pub fn add_virtual_link(&mut self, src: NodeId, dst: NodeId, capacity_bps: f64) -> LinkId {
        self.push_link(src, dst, capacity_bps, true)
    }

    /// Add a bidirectional physical cable as two opposite links.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, capacity_bps: f64) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, capacity_bps);
        let ba = self.add_link(b, a, capacity_bps);
        (ab, ba)
    }

    fn push_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity_bps: f64,
        is_virtual: bool,
    ) -> LinkId {
        assert!(
            src.index() < self.kinds.len(),
            "link src {src} out of range"
        );
        assert!(
            dst.index() < self.kinds.len(),
            "link dst {dst} out of range"
        );
        assert!(src != dst, "self-loop links are not allowed ({src})");
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "link capacity must be positive and finite, got {capacity_bps}"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src,
            dst,
            capacity_bps,
            is_virtual,
        });
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of links added so far.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Finalise into an immutable [`Network`], building CSR adjacency.
    ///
    /// Link ids are preserved exactly as returned during construction; only
    /// the adjacency index is derived here.
    pub fn build(self) -> Network {
        let n = self.kinds.len();
        // Counting sort of link ids by source node; groups then sorted by
        // destination so `find_link` can binary-search.
        let mut counts = vec![0u32; n + 1];
        for l in &self.links {
            counts[l.src.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let out_offsets = counts.clone();
        let mut out_links = vec![LinkId(0); self.links.len()];
        let mut cursor = counts;
        for (i, l) in self.links.iter().enumerate() {
            let pos = cursor[l.src.index()] as usize;
            out_links[pos] = LinkId(i as u32);
            cursor[l.src.index()] += 1;
        }
        for node in 0..n {
            let lo = out_offsets[node] as usize;
            let hi = out_offsets[node + 1] as usize;
            out_links[lo..hi].sort_by_key(|&lid| (self.links[lid.index()].dst, lid));
        }
        Network {
            kinds: self.kinds,
            links: self.links,
            num_endpoints: self.num_endpoints,
            out_offsets,
            out_links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "before the first switch")]
    fn endpoint_after_switch_panics() {
        let mut b = NetworkBuilder::new();
        b.add_switch();
        b.add_endpoint();
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut b = NetworkBuilder::new();
        let e = b.add_endpoint();
        b.add_link(e, e, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        b.add_link(e0, e1, 0.0);
    }

    #[test]
    fn bulk_add_returns_first_id() {
        let mut b = NetworkBuilder::new();
        let first_ep = b.add_endpoints(4);
        assert_eq!(first_ep, NodeId(0));
        let first_sw = b.add_switches(3);
        assert_eq!(first_sw, NodeId(4));
        assert_eq!(b.num_nodes(), 7);
    }

    #[test]
    fn link_ids_stable_through_build() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        let e2 = b.add_endpoint();
        let l0 = b.add_link(e2, e0, 5.0);
        let l1 = b.add_link(e0, e1, 7.0);
        let net = b.build();
        assert_eq!(net.link(l0).src, e2);
        assert_eq!(net.link(l0).capacity_bps, 5.0);
        assert_eq!(net.link(l1).dst, e1);
    }

    #[test]
    fn duplex_adds_opposite_pair() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        let (ab, ba) = b.add_duplex(e0, e1, 3.0);
        let net = b.build();
        assert_eq!(net.link(ab).src, e0);
        assert_eq!(net.link(ab).dst, e1);
        assert_eq!(net.link(ba).src, e1);
        assert_eq!(net.link(ba).dst, e0);
    }

    #[test]
    fn empty_network_builds() {
        let net = NetworkBuilder::new().build();
        assert_eq!(net.num_nodes(), 0);
        assert_eq!(net.num_links(), 0);
    }
}
