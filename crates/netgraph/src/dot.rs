//! Graphviz DOT export.
//!
//! Used by the `fig2` harness binary to regenerate the paper's Figure 2
//! topology drawings (torus 4x4x2, 4-ary 2-tree, NestGHC(2,8), NestTree(2,8))
//! as renderable `.dot` files.

use crate::network::{Network, NodeKind};
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name placed in the `digraph`/`graph` header.
    pub name: String,
    /// Collapse opposite unidirectional links into one undirected edge.
    pub merge_duplex: bool,
    /// Include virtual (NIC) links.
    pub include_virtual: bool,
    /// Optional labels per node; falls back to `e<i>`/`s<i>`.
    pub node_labels: Vec<String>,
}

impl Default for DotOptions {
    fn default() -> Self {
        Self {
            name: "network".to_owned(),
            merge_duplex: true,
            include_virtual: false,
            node_labels: Vec::new(),
        }
    }
}

/// Render `net` to Graphviz DOT.
///
/// Endpoints are drawn as circles, switches as boxes. With
/// [`DotOptions::merge_duplex`], a pair of opposite links is emitted as a
/// single undirected edge (the common case for network diagrams).
pub fn to_dot(net: &Network, opts: &DotOptions) -> String {
    let mut out = String::new();
    let undirected = opts.merge_duplex;
    let (kw, edge) = if undirected {
        ("graph", "--")
    } else {
        ("digraph", "->")
    };
    writeln!(out, "{kw} {} {{", sanitize(&opts.name)).unwrap();
    writeln!(out, "  layout=neato;").unwrap();
    for node in net.node_ids() {
        let idx = node.index();
        let default_label;
        let label = if idx < opts.node_labels.len() {
            opts.node_labels[idx].as_str()
        } else {
            default_label = match net.kind(node) {
                NodeKind::Endpoint => format!("e{idx}"),
                NodeKind::Switch => format!("s{}", idx - net.num_endpoints()),
            };
            &default_label
        };
        let shape = match net.kind(node) {
            NodeKind::Endpoint => "circle",
            NodeKind::Switch => "box",
        };
        writeln!(out, "  n{idx} [label=\"{label}\", shape={shape}];").unwrap();
    }
    for (i, link) in net.links().iter().enumerate() {
        if link.is_virtual && !opts.include_virtual {
            continue;
        }
        if undirected {
            // Emit each duplex pair once: keep the (src < dst) direction, and
            // any link whose reverse does not exist.
            let reverse_exists = net.find_link(link.dst, link.src).is_some();
            if reverse_exists && link.src > link.dst {
                continue;
            }
        }
        let style = if link.is_virtual {
            " [style=dashed]"
        } else {
            ""
        };
        writeln!(
            out,
            "  n{} {edge} n{}{style};",
            link.src.index(),
            link.dst.index()
        )
        .unwrap();
        let _ = i;
    }
    writeln!(out, "}}").unwrap();
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g{cleaned}")
    } else if cleaned.is_empty() {
        "g".to_owned()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn pair() -> Network {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let s0 = b.add_switch();
        b.add_duplex(e0, s0, 1.0);
        b.add_virtual_link(e0, s0, 1.0);
        b.build()
    }

    #[test]
    fn merged_duplex_emits_single_edge() {
        let net = pair();
        let dot = to_dot(&net, &DotOptions::default());
        assert_eq!(dot.matches("n0 -- n1").count(), 1);
        assert!(dot.starts_with("graph network {"));
    }

    #[test]
    fn directed_emits_both() {
        let net = pair();
        let opts = DotOptions {
            merge_duplex: false,
            ..DotOptions::default()
        };
        let dot = to_dot(&net, &opts);
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n0"));
    }

    #[test]
    fn virtual_links_hidden_by_default() {
        let net = pair();
        let dot = to_dot(&net, &DotOptions::default());
        assert!(!dot.contains("dashed"));
        let opts = DotOptions {
            include_virtual: true,
            merge_duplex: false,
            ..DotOptions::default()
        };
        let dot2 = to_dot(&net, &opts);
        assert!(dot2.contains("dashed"));
    }

    #[test]
    fn shapes_reflect_node_kind() {
        let net = pair();
        let dot = to_dot(&net, &DotOptions::default());
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("shape=box"));
    }

    #[test]
    fn custom_labels_used() {
        let net = pair();
        let opts = DotOptions {
            node_labels: vec!["QFDB".into(), "SW".into()],
            ..DotOptions::default()
        };
        let dot = to_dot(&net, &opts);
        assert!(dot.contains("label=\"QFDB\""));
        assert!(dot.contains("label=\"SW\""));
    }

    #[test]
    fn name_sanitized() {
        assert_eq!(sanitize("4-ary 2-tree"), "g4_ary_2_tree".to_string());
        assert_eq!(sanitize("torus"), "torus".to_string());
        assert!(sanitize("4x").starts_with('g'));
        assert_eq!(sanitize(""), "g");
    }
}
