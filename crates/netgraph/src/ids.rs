//! Strongly-typed node and link identifiers.
//!
//! Both ids are thin `u32` newtypes: networks in this workspace reach a few
//! hundred thousand nodes and a few million links, so 32 bits suffice and
//! halve the memory footprint of path vectors compared with `usize`.

use serde::{Deserialize, Serialize};

/// Identifier of a node (endpoint or switch) within a [`crate::Network`].
///
/// Endpoints always occupy ids `0..num_endpoints`; switches follow.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

/// Identifier of a unidirectional link within a [`crate::Network`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing per-node vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The id as a `usize`, for indexing per-link vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for LinkId {
    fn from(v: u32) -> Self {
        LinkId(v)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(42);
        assert_eq!(n.index(), 42);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(n.to_string(), "n42");
    }

    #[test]
    fn link_id_roundtrip() {
        let l = LinkId(7);
        assert_eq!(l.index(), 7);
        assert_eq!(LinkId::from(7u32), l);
        assert_eq!(l.to_string(), "l7");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(0) < LinkId(9));
    }
}
