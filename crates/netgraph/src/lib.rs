//! Directed multigraph model for interconnection networks.
//!
//! This crate provides the structural substrate on which every topology in
//! the workspace is built: a compact, immutable [`Network`] of nodes and
//! capacitated unidirectional links, produced by a [`NetworkBuilder`].
//!
//! Design notes:
//!
//! * **Nodes** are either endpoints (compute nodes — QFDBs in the ExaNeSt
//!   system) or switches. Endpoints are required to occupy the id range
//!   `0..num_endpoints` so that higher layers can index per-endpoint state
//!   with plain vectors.
//! * **Links** are unidirectional and carry a capacity in bits/second.
//!   Bidirectional cables are modelled as a pair of opposite links
//!   ([`NetworkBuilder::add_duplex`]).
//! * **Virtual links** model per-endpoint injection/ejection (NIC) capacity.
//!   They participate in bandwidth sharing inside the flow simulator but are
//!   excluded from hop counts, matching how the ICPP 2019 paper reports
//!   distances (a torus counts only grid hops, yet the Reduce collective is
//!   still bottlenecked by the root's consumption port).
//! * Adjacency is stored in CSR form for cache-friendly traversal, per the
//!   Rust Performance Book guidance on compact contiguous layouts.

pub mod bfs;
pub mod builder;
pub mod dot;
pub mod ids;
pub mod network;
pub mod path;
pub mod stats;

pub use bfs::{bfs_distances, bfs_distances_physical, BfsScratch, PhysCsr};
pub use builder::NetworkBuilder;
pub use dot::DotOptions;
pub use ids::{LinkId, NodeId};
pub use network::{Link, Network, NodeKind};
pub use path::{validate_path, PathError};
pub use stats::NetworkStats;
