//! The immutable [`Network`] structure and its accessors.

use crate::ids::{LinkId, NodeId};
use serde::{Deserialize, Serialize};

/// What a node is: a compute endpoint or a pure switching element.
///
/// In direct networks (torus) the endpoint itself performs switching, so a
/// torus network contains only `Endpoint` nodes. Indirect networks (fattree,
/// generalised hypercube upper tiers) add `Switch` nodes.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    /// A compute endpoint (a QFDB in the ExaNeSt system model).
    Endpoint,
    /// A switching element with no attached compute.
    Switch,
}

/// A unidirectional, capacitated link.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Capacity in bits per second.
    pub capacity_bps: f64,
    /// Virtual links model NIC injection/ejection serialization; they share
    /// bandwidth like physical links but do not count as hops.
    pub is_virtual: bool,
}

/// An immutable interconnection network: nodes, links and CSR adjacency.
///
/// Construct via [`crate::NetworkBuilder`]. Endpoints occupy node ids
/// `0..num_endpoints()`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    pub(crate) kinds: Vec<NodeKind>,
    pub(crate) links: Vec<Link>,
    pub(crate) num_endpoints: usize,
    /// CSR offsets into `out_links`, length `nodes + 1`.
    pub(crate) out_offsets: Vec<u32>,
    /// Outgoing link ids grouped by source node, each group sorted by
    /// destination node id to allow binary-search lookup.
    pub(crate) out_links: Vec<LinkId>,
}

impl Network {
    /// Total number of nodes (endpoints + switches).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of compute endpoints. Endpoint ids are `0..num_endpoints()`.
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        self.num_endpoints
    }

    /// Number of switch nodes.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.kinds.len() - self.num_endpoints
    }

    /// Total number of unidirectional links, including virtual NIC links.
    #[inline]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of physical (non-virtual) unidirectional links.
    pub fn num_physical_links(&self) -> usize {
        self.links.iter().filter(|l| !l.is_virtual).count()
    }

    /// The kind of `node`.
    #[inline]
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// Whether `node` is an endpoint.
    #[inline]
    pub fn is_endpoint(&self, node: NodeId) -> bool {
        node.index() < self.num_endpoints
    }

    /// The link record for `link`.
    #[inline]
    pub fn link(&self, link: LinkId) -> &Link {
        &self.links[link.index()]
    }

    /// All links, indexable by [`LinkId::index`].
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Ids of links leaving `node`, sorted by destination node id.
    #[inline]
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        let lo = self.out_offsets[node.index()] as usize;
        let hi = self.out_offsets[node.index() + 1] as usize;
        &self.out_links[lo..hi]
    }

    /// Out-degree of `node` (including virtual links).
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_links(node).len()
    }

    /// Find the first link from `src` to `dst`, if any.
    ///
    /// Uses binary search over the destination-sorted adjacency group, so a
    /// lookup is `O(log degree)`; topology routing functions use this to turn
    /// a node path into a link path.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        let group = self.out_links(src);
        let idx = group
            .binary_search_by(|&lid| self.links[lid.index()].dst.cmp(&dst))
            .ok()?;
        // Binary search may land anywhere in a run of parallel links; rewind
        // to the first one for determinism.
        let mut first = idx;
        while first > 0 && self.links[group[first - 1].index()].dst == dst {
            first -= 1;
        }
        Some(group[first])
    }

    /// Find the first *physical* link from `src` to `dst`, if any.
    pub fn find_physical_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        let group = self.out_links(src);
        let idx = group
            .binary_search_by(|&lid| self.links[lid.index()].dst.cmp(&dst))
            .ok()?;
        let mut first = idx;
        while first > 0 && self.links[group[first - 1].index()].dst == dst {
            first -= 1;
        }
        group[first..]
            .iter()
            .take_while(|&&lid| self.links[lid.index()].dst == dst)
            .copied()
            .find(|&lid| !self.links[lid.index()].is_virtual)
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// Iterator over endpoint node ids (`0..num_endpoints`).
    pub fn endpoint_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_endpoints as u32).map(NodeId)
    }

    /// Iterator over switch node ids.
    pub fn switch_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.num_endpoints as u32..self.kinds.len() as u32).map(NodeId)
    }

    /// Sum of capacities of all physical links, in bits/second.
    pub fn aggregate_physical_capacity_bps(&self) -> f64 {
        self.links
            .iter()
            .filter(|l| !l.is_virtual)
            .map(|l| l.capacity_bps)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn tiny() -> Network {
        // 2 endpoints, 1 switch; duplex endpoint<->switch links.
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        let s = b.add_switch();
        b.add_duplex(e0, s, 10e9);
        b.add_duplex(e1, s, 10e9);
        b.build()
    }

    #[test]
    fn counts() {
        let n = tiny();
        assert_eq!(n.num_nodes(), 3);
        assert_eq!(n.num_endpoints(), 2);
        assert_eq!(n.num_switches(), 1);
        assert_eq!(n.num_links(), 4);
        assert_eq!(n.num_physical_links(), 4);
    }

    #[test]
    fn kinds_and_ranges() {
        let n = tiny();
        assert_eq!(n.kind(NodeId(0)), NodeKind::Endpoint);
        assert_eq!(n.kind(NodeId(2)), NodeKind::Switch);
        assert!(n.is_endpoint(NodeId(1)));
        assert!(!n.is_endpoint(NodeId(2)));
        assert_eq!(n.endpoint_ids().count(), 2);
        assert_eq!(n.switch_ids().count(), 1);
    }

    #[test]
    fn find_link_works_both_directions() {
        let n = tiny();
        let l = n.find_link(NodeId(0), NodeId(2)).expect("e0 -> s");
        assert_eq!(n.link(l).src, NodeId(0));
        assert_eq!(n.link(l).dst, NodeId(2));
        let back = n.find_link(NodeId(2), NodeId(0)).expect("s -> e0");
        assert_eq!(n.link(back).dst, NodeId(0));
        assert!(n.find_link(NodeId(0), NodeId(1)).is_none());
    }

    #[test]
    fn out_links_sorted_by_destination() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        let e2 = b.add_endpoint();
        let e3 = b.add_endpoint();
        // Insert in scrambled order; adjacency must come out dst-sorted.
        b.add_link(e3, e2, 1.0);
        b.add_link(e3, e0, 1.0);
        b.add_link(e3, e1, 1.0);
        let n = b.build();
        let dsts: Vec<u32> = n.out_links(e3).iter().map(|&l| n.link(l).dst.0).collect();
        assert_eq!(dsts, vec![0, 1, 2]);
    }

    #[test]
    fn aggregate_capacity_excludes_virtual() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        b.add_link(e0, e1, 10e9);
        b.add_virtual_link(e0, e1, 10e9);
        let n = b.build();
        assert_eq!(n.num_links(), 2);
        assert_eq!(n.num_physical_links(), 1);
        assert!((n.aggregate_physical_capacity_bps() - 10e9).abs() < 1.0);
    }

    #[test]
    fn find_physical_link_skips_virtual() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        b.add_virtual_link(e0, e1, 1.0);
        b.add_link(e0, e1, 2.0);
        let n = b.build();
        let l = n.find_physical_link(e0, e1).unwrap();
        assert!(!n.link(l).is_virtual);
        assert_eq!(n.link(l).capacity_bps, 2.0);
    }
}
