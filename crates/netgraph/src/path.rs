//! Path validation helpers.
//!
//! Routing functions return paths as sequences of link ids. These helpers
//! verify that such a sequence actually connects a source endpoint to a
//! destination endpoint through the network — the central invariant that the
//! topology property tests exercise.

use crate::ids::{LinkId, NodeId};
use crate::network::Network;

/// Why a path failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The path is empty but the source differs from the destination.
    EmptyButDistinct { src: NodeId, dst: NodeId },
    /// Link `link` does not start where the previous one ended.
    Discontinuous {
        position: usize,
        link: LinkId,
        expected_src: NodeId,
        actual_src: NodeId,
    },
    /// The final link does not end at the destination.
    WrongDestination { last: NodeId, dst: NodeId },
    /// The path visits the same node twice (routing loop).
    Loop { node: NodeId },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::EmptyButDistinct { src, dst } => {
                write!(f, "empty path but {src} != {dst}")
            }
            PathError::Discontinuous {
                position,
                link,
                expected_src,
                actual_src,
            } => write!(
                f,
                "link {link} at position {position} starts at {actual_src}, expected {expected_src}"
            ),
            PathError::WrongDestination { last, dst } => {
                write!(f, "path ends at {last}, expected {dst}")
            }
            PathError::Loop { node } => write!(f, "path revisits node {node}"),
        }
    }
}

impl std::error::Error for PathError {}

/// Validate that `path` is a loop-free walk from `src` to `dst` in `net`.
///
/// An empty path is valid iff `src == dst` (self-traffic is delivered
/// locally without touching the network).
pub fn validate_path(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    path: &[LinkId],
) -> Result<(), PathError> {
    if path.is_empty() {
        return if src == dst {
            Ok(())
        } else {
            Err(PathError::EmptyButDistinct { src, dst })
        };
    }
    let mut visited = std::collections::HashSet::with_capacity(path.len() + 1);
    visited.insert(src);
    let mut at = src;
    for (i, &lid) in path.iter().enumerate() {
        let link = net.link(lid);
        if link.src != at {
            return Err(PathError::Discontinuous {
                position: i,
                link: lid,
                expected_src: at,
                actual_src: link.src,
            });
        }
        at = link.dst;
        if !visited.insert(at) {
            return Err(PathError::Loop { node: at });
        }
    }
    if at != dst {
        return Err(PathError::WrongDestination { last: at, dst });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn line3() -> (Network, Vec<NodeId>) {
        let mut b = NetworkBuilder::new();
        let eps: Vec<NodeId> = (0..3).map(|_| b.add_endpoint()).collect();
        b.add_duplex(eps[0], eps[1], 1.0);
        b.add_duplex(eps[1], eps[2], 1.0);
        (b.build(), eps)
    }

    #[test]
    fn valid_path_ok() {
        let (net, eps) = line3();
        let l01 = net.find_link(eps[0], eps[1]).unwrap();
        let l12 = net.find_link(eps[1], eps[2]).unwrap();
        assert!(validate_path(&net, eps[0], eps[2], &[l01, l12]).is_ok());
    }

    #[test]
    fn empty_path_self_ok() {
        let (net, eps) = line3();
        assert!(validate_path(&net, eps[1], eps[1], &[]).is_ok());
    }

    #[test]
    fn empty_path_distinct_fails() {
        let (net, eps) = line3();
        assert_eq!(
            validate_path(&net, eps[0], eps[1], &[]),
            Err(PathError::EmptyButDistinct {
                src: eps[0],
                dst: eps[1]
            })
        );
    }

    #[test]
    fn discontinuous_fails() {
        let (net, eps) = line3();
        let l12 = net.find_link(eps[1], eps[2]).unwrap();
        let err = validate_path(&net, eps[0], eps[2], &[l12]).unwrap_err();
        assert!(matches!(err, PathError::Discontinuous { .. }));
    }

    #[test]
    fn wrong_destination_fails() {
        let (net, eps) = line3();
        let l01 = net.find_link(eps[0], eps[1]).unwrap();
        let err = validate_path(&net, eps[0], eps[2], &[l01]).unwrap_err();
        assert_eq!(
            err,
            PathError::WrongDestination {
                last: eps[1],
                dst: eps[2]
            }
        );
    }

    #[test]
    fn loop_detected() {
        let (net, eps) = line3();
        let l01 = net.find_link(eps[0], eps[1]).unwrap();
        let l10 = net.find_link(eps[1], eps[0]).unwrap();
        let l01b = l01;
        let err = validate_path(&net, eps[0], eps[1], &[l01, l10, l01b]).unwrap_err();
        assert!(matches!(err, PathError::Loop { .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = PathError::WrongDestination {
            last: NodeId(3),
            dst: NodeId(5),
        };
        assert!(e.to_string().contains("n3"));
        assert!(e.to_string().contains("n5"));
    }
}
