//! Summary statistics over a [`Network`].

use crate::network::Network;
use serde::{Deserialize, Serialize};

/// Structural summary of a network, used in reports and sanity checks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of compute endpoints.
    pub endpoints: usize,
    /// Number of switch nodes.
    pub switches: usize,
    /// Unidirectional physical links.
    pub physical_links: usize,
    /// Unidirectional virtual (NIC) links.
    pub virtual_links: usize,
    /// Minimum out-degree over all nodes (physical links only).
    pub min_degree: usize,
    /// Maximum out-degree over all nodes (physical links only).
    pub max_degree: usize,
    /// Sum of physical link capacities, bits/second.
    pub aggregate_capacity_bps: f64,
}

impl NetworkStats {
    /// Compute statistics for `net`.
    pub fn of(net: &Network) -> Self {
        let mut min_degree = usize::MAX;
        let mut max_degree = 0;
        for node in net.node_ids() {
            let deg = net
                .out_links(node)
                .iter()
                .filter(|&&l| !net.link(l).is_virtual)
                .count();
            min_degree = min_degree.min(deg);
            max_degree = max_degree.max(deg);
        }
        if net.num_nodes() == 0 {
            min_degree = 0;
        }
        let physical = net.num_physical_links();
        NetworkStats {
            endpoints: net.num_endpoints(),
            switches: net.num_switches(),
            physical_links: physical,
            virtual_links: net.num_links() - physical,
            min_degree,
            max_degree,
            aggregate_capacity_bps: net.aggregate_physical_capacity_bps(),
        }
    }
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} endpoints, {} switches, {} physical links (degree {}..{}), {:.1} Gbps aggregate",
            self.endpoints,
            self.switches,
            self.physical_links,
            self.min_degree,
            self.max_degree,
            self.aggregate_capacity_bps / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    #[test]
    fn stats_of_star() {
        let mut b = NetworkBuilder::new();
        let eps: Vec<_> = (0..3).map(|_| b.add_endpoint()).collect();
        let hub = b.add_switch();
        for &e in &eps {
            b.add_duplex(e, hub, 10e9);
            b.add_virtual_link(e, hub, 10e9);
        }
        let net = b.build();
        let s = NetworkStats::of(&net);
        assert_eq!(s.endpoints, 3);
        assert_eq!(s.switches, 1);
        assert_eq!(s.physical_links, 6);
        assert_eq!(s.virtual_links, 3);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 3);
        assert!((s.aggregate_capacity_bps - 60e9).abs() < 1.0);
    }

    #[test]
    fn stats_of_empty() {
        let net = NetworkBuilder::new().build();
        let s = NetworkStats::of(&net);
        assert_eq!(s.endpoints, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn display_mentions_counts() {
        let mut b = NetworkBuilder::new();
        let e0 = b.add_endpoint();
        let e1 = b.add_endpoint();
        b.add_duplex(e0, e1, 10e9);
        let s = NetworkStats::of(&b.build());
        let text = s.to_string();
        assert!(text.contains("2 endpoints"));
        assert!(text.contains("2 physical links"));
    }
}
