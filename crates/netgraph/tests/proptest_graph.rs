//! Property tests for the graph substrate: CSR adjacency is a faithful
//! index of the link list, and `find_link` agrees with a naive scan.

use exaflow_netgraph::{NetworkBuilder, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn adjacency_indexes_every_link(
        nodes in 2usize..20,
        edges in prop::collection::vec((any::<u32>(), any::<u32>(), 1.0f64..100.0), 0..60),
    ) {
        let mut b = NetworkBuilder::new();
        for _ in 0..nodes {
            b.add_endpoint();
        }
        let mut expected = Vec::new();
        for (s, d, cap) in edges {
            let s = s as usize % nodes;
            let mut d = d as usize % nodes;
            if s == d {
                d = (d + 1) % nodes;
            }
            let id = b.add_link(NodeId(s as u32), NodeId(d as u32), cap);
            expected.push((id, s as u32, d as u32));
        }
        let net = b.build();
        // Every link appears exactly once in its source's adjacency group.
        for (id, s, d) in &expected {
            let group = net.out_links(NodeId(*s));
            prop_assert_eq!(group.iter().filter(|&&l| l == *id).count(), 1);
            prop_assert_eq!(net.link(*id).dst, NodeId(*d));
        }
        // Total adjacency size equals the link count.
        let total: usize = (0..nodes).map(|v| net.out_links(NodeId(v as u32)).len()).sum();
        prop_assert_eq!(total, net.num_links());
        // find_link agrees with a naive scan for every pair.
        for s in 0..nodes as u32 {
            for d in 0..nodes as u32 {
                let naive = expected
                    .iter()
                    .find(|(_, es, ed)| *es == s && *ed == d)
                    .is_some();
                prop_assert_eq!(net.find_link(NodeId(s), NodeId(d)).is_some(), naive);
            }
        }
    }

    #[test]
    fn bfs_distances_are_metric(
        nodes in 2usize..15,
        edges in prop::collection::vec((any::<u32>(), any::<u32>()), 1..40),
    ) {
        let mut b = NetworkBuilder::new();
        for _ in 0..nodes {
            b.add_endpoint();
        }
        for (s, d) in edges {
            let s = s as usize % nodes;
            let mut d = d as usize % nodes;
            if s == d {
                d = (d + 1) % nodes;
            }
            b.add_duplex(NodeId(s as u32), NodeId(d as u32), 1.0);
        }
        let net = b.build();
        let from0 = exaflow_netgraph::bfs_distances(&net, NodeId(0));
        // Triangle inequality over edges: d(v) <= d(u) + 1 for u -> v.
        for l in 0..net.num_links() {
            let link = net.link(exaflow_netgraph::LinkId(l as u32));
            let du = from0[link.src.index()];
            let dv = from0[link.dst.index()];
            if du != u32::MAX {
                prop_assert!(dv <= du + 1);
            }
        }
    }
}
