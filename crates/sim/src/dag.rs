//! Flow DAGs: the workload representation consumed by the simulator.
//!
//! A [`FlowDag`] is a list of flows plus causal dependencies: a flow may
//! start only when all of its predecessors have completed. Builders must
//! reference only already-added flows as dependencies, which makes the
//! graph acyclic *by construction* — a property the engine relies on.
//!
//! Flows live in **task/endpoint space**: `src` and `dst` are endpoint
//! indices of the topology the DAG will be simulated on. Zero-byte flows
//! are legal and complete instantly; they are useful as pure
//! synchronisation points (e.g. a barrier between workload phases).

use exaflow_netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of a flow within a [`FlowDag`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The id as a `usize`, for indexing per-flow vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One flow: a point-to-point transfer of `bytes` from `src` to `dst`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source endpoint.
    pub src: u32,
    /// Destination endpoint.
    pub dst: u32,
    /// Transfer size in bytes. Zero-byte flows complete instantly.
    pub bytes: u64,
}

/// An immutable DAG of flows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowDag {
    flows: Vec<FlowSpec>,
    /// CSR of predecessor lists.
    pred_offsets: Vec<u32>,
    preds: Vec<u32>,
}

impl FlowDag {
    /// Number of flows.
    #[inline]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the DAG has no flows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The flow record.
    #[inline]
    pub fn flow(&self, id: FlowId) -> &FlowSpec {
        &self.flows[id.index()]
    }

    /// All flows, indexable by [`FlowId::index`].
    #[inline]
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Predecessors of a flow.
    #[inline]
    pub fn preds(&self, id: FlowId) -> &[u32] {
        let lo = self.pred_offsets[id.index()] as usize;
        let hi = self.pred_offsets[id.index() + 1] as usize;
        &self.preds[lo..hi]
    }

    /// Total number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.preds.len()
    }

    /// Sum of all flow sizes in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// Largest endpoint index referenced, or `None` for an empty DAG.
    pub fn max_endpoint(&self) -> Option<u32> {
        self.flows.iter().map(|f| f.src.max(f.dst)).max()
    }

    /// Build successor adjacency (CSR) — used by the engine.
    pub(crate) fn successors(&self) -> (Vec<u32>, Vec<u32>) {
        let n = self.flows.len();
        let mut counts = vec![0u32; n + 1];
        for &p in &self.preds {
            counts[p as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut succs = vec![0u32; self.preds.len()];
        let mut cursor = counts;
        for f in 0..n {
            for &p in self.preds(FlowId(f as u32)) {
                succs[cursor[p as usize] as usize] = f as u32;
                cursor[p as usize] += 1;
            }
        }
        (offsets, succs)
    }
}

/// Incremental builder for [`FlowDag`].
#[derive(Default, Debug)]
pub struct FlowDagBuilder {
    flows: Vec<FlowSpec>,
    pred_offsets: Vec<u32>,
    preds: Vec<u32>,
}

impl FlowDagBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        FlowDagBuilder {
            flows: Vec::new(),
            pred_offsets: vec![0],
            preds: Vec::new(),
        }
    }

    /// Create a builder with capacity for `flows` flows and `edges`
    /// dependency edges.
    pub fn with_capacity(flows: usize, edges: usize) -> Self {
        let mut b = FlowDagBuilder {
            flows: Vec::with_capacity(flows),
            pred_offsets: Vec::with_capacity(flows + 1),
            preds: Vec::with_capacity(edges),
        };
        b.pred_offsets.push(0);
        b
    }

    /// Add a flow depending on `deps` (all must be already-added flows).
    ///
    /// Panics on a forward reference — this is what guarantees acyclicity.
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId, bytes: u64, deps: &[FlowId]) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        for &d in deps {
            assert!(
                d.0 < id.0,
                "flow {} depends on not-yet-added flow {}",
                id.0,
                d.0
            );
            self.preds.push(d.0);
        }
        self.flows.push(FlowSpec {
            src: src.0,
            dst: dst.0,
            bytes,
        });
        self.pred_offsets.push(self.preds.len() as u32);
        id
    }

    /// Add a zero-byte synchronisation flow joining all `deps`.
    ///
    /// The src/dst are irrelevant for a zero-byte flow; endpoint 0 is used.
    pub fn add_barrier(&mut self, deps: &[FlowId]) -> FlowId {
        self.add_flow(NodeId(0), NodeId(0), 0, deps)
    }

    /// Number of flows added so far.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flows were added yet.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The id the next added flow will get.
    pub fn next_id(&self) -> FlowId {
        FlowId(self.flows.len() as u32)
    }

    /// Finalise the DAG.
    pub fn build(self) -> FlowDag {
        FlowDag {
            flows: self.flows,
            pred_offsets: self.pred_offsets,
            preds: self.preds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_chain() {
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), 100, &[]);
        let c = b.add_flow(NodeId(1), NodeId(2), 200, &[a]);
        let d = b.add_flow(NodeId(2), NodeId(3), 300, &[c]);
        let dag = b.build();
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.num_edges(), 2);
        assert_eq!(dag.preds(d), &[c.0]);
        assert_eq!(dag.preds(a), &[] as &[u32]);
        assert_eq!(dag.total_bytes(), 600);
        assert_eq!(dag.max_endpoint(), Some(3));
    }

    #[test]
    #[should_panic(expected = "not-yet-added")]
    fn forward_reference_panics() {
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), 1, &[FlowId(5)]);
    }

    #[test]
    fn successors_invert_preds() {
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), 1, &[]);
        let c = b.add_flow(NodeId(0), NodeId(2), 1, &[a]);
        let d = b.add_flow(NodeId(0), NodeId(3), 1, &[a, c]);
        let dag = b.build();
        let (off, succ) = dag.successors();
        let succs_of = |f: FlowId| &succ[off[f.index()] as usize..off[f.index() + 1] as usize];
        assert_eq!(succs_of(a), &[c.0, d.0]);
        assert_eq!(succs_of(c), &[d.0]);
        assert_eq!(succs_of(d), &[] as &[u32]);
    }

    #[test]
    fn barrier_is_zero_bytes() {
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(3), NodeId(4), 10, &[]);
        let bar = b.add_barrier(&[a]);
        let dag = b.build();
        assert_eq!(dag.flow(bar).bytes, 0);
    }

    #[test]
    fn empty_dag() {
        let dag = FlowDagBuilder::new().build();
        assert!(dag.is_empty());
        assert_eq!(dag.max_endpoint(), None);
        assert_eq!(dag.total_bytes(), 0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = FlowDagBuilder::with_capacity(10, 10);
        let a = b.add_flow(NodeId(0), NodeId(1), 5, &[]);
        assert_eq!(a, FlowId(0));
        assert_eq!(b.next_id(), FlowId(1));
        assert!(!b.is_empty());
        let dag = b.build();
        assert_eq!(dag.len(), 1);
    }
}
