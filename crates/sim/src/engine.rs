//! The simulation engine: activation, rate allocation, batched completions,
//! optional per-hop latency and per-link accounting.

use crate::dag::{FlowDag, FlowId};
use crate::error::SimError;
use crate::maxmin::MaxMinSolver;
use crate::report::SimReport;
use exaflow_netgraph::NodeId;
use exaflow_topo::Topology;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Engine configuration.
///
/// Deserialization validates the numeric fields (see
/// [`SimConfig::validate`]): a config with a non-finite or negative rate,
/// epsilon or latency is rejected at the JSON boundary instead of stalling
/// or poisoning the event heap deep inside a run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SimConfig {
    /// Endpoint injection (NIC transmit) capacity, bits/second.
    pub injection_bps: f64,
    /// Endpoint ejection (NIC receive / consumption port) capacity,
    /// bits/second. This is the resource that serialises an N-to-1 Reduce.
    pub ejection_bps: f64,
    /// Relative completion-batching tolerance: all flows finishing within
    /// `(1 + epsilon)` of the earliest completion time retire in one event.
    /// The default `1e-9` only merges numerically-identical completions and
    /// is exact for all practical purposes; larger values trade accuracy
    /// for fewer rate recomputations (see the engine ablation bench).
    pub batch_epsilon: f64,
    /// Head latency added before a flow starts transferring:
    /// `startup_latency_s + hops · per_hop_latency_s`. Zero by default —
    /// the pure fluid model, appropriate for the paper's MB-scale
    /// transfers where wire time dominates switch latency by 10³.
    #[serde(default)]
    pub per_hop_latency_s: f64,
    /// Fixed protocol/software overhead per flow, seconds.
    #[serde(default)]
    pub startup_latency_s: f64,
    /// Record per-flow completion times in the report.
    pub record_flow_times: bool,
    /// Accumulate bytes carried per resource (links, then injection, then
    /// ejection ports) in the report. Costs one pass over active paths per
    /// event.
    #[serde(default)]
    pub collect_link_stats: bool,
    /// Memoise routes per (src, dst) pair. Pays off for iterative workloads
    /// that reuse pairs across rounds; capped to bound memory.
    pub cache_routes: bool,
    /// Maximum number of cached routes.
    pub route_cache_cap: usize,
}

impl SimConfig {
    /// Check every numeric field against its domain: NIC rates must be
    /// finite and strictly positive, the batching epsilon and latencies
    /// finite and non-negative. Called by [`Simulator::run`] and by the
    /// `Deserialize` impl, so an invalid config is a typed
    /// [`SimError::InvalidConfig`] at the boundary — never a zero-rate
    /// stall or a NaN in the delayed-activation heap.
    pub fn validate(&self) -> Result<(), SimError> {
        let positive = [
            ("injection_bps", self.injection_bps),
            ("ejection_bps", self.ejection_bps),
        ];
        for (field, value) in positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(SimError::invalid_config(
                    field,
                    value,
                    "must be finite and > 0",
                ));
            }
        }
        let non_negative = [
            ("batch_epsilon", self.batch_epsilon),
            ("per_hop_latency_s", self.per_hop_latency_s),
            ("startup_latency_s", self.startup_latency_s),
        ];
        for (field, value) in non_negative {
            if !(value.is_finite() && value >= 0.0) {
                return Err(SimError::invalid_config(
                    field,
                    value,
                    "must be finite and >= 0",
                ));
            }
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            injection_bps: exaflow_topo::LINK_RATE_BPS,
            ejection_bps: exaflow_topo::LINK_RATE_BPS,
            batch_epsilon: 1e-9,
            per_hop_latency_s: 0.0,
            startup_latency_s: 0.0,
            record_flow_times: false,
            collect_link_stats: false,
            cache_routes: true,
            route_cache_cap: 1 << 21,
        }
    }
}

/// Unvalidated mirror of [`SimConfig`] carrying the derive-generated field
/// logic; the manual `Deserialize` below funnels it through
/// [`SimConfig::validate`] so malformed JSON surfaces as a config error.
#[derive(Deserialize)]
struct SimConfigUnchecked {
    injection_bps: f64,
    ejection_bps: f64,
    batch_epsilon: f64,
    #[serde(default)]
    per_hop_latency_s: f64,
    #[serde(default)]
    startup_latency_s: f64,
    record_flow_times: bool,
    #[serde(default)]
    collect_link_stats: bool,
    cache_routes: bool,
    route_cache_cap: usize,
}

impl serde::de::Deserialize for SimConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::de::Error> {
        let raw = SimConfigUnchecked::from_value(value)?;
        let cfg = SimConfig {
            injection_bps: raw.injection_bps,
            ejection_bps: raw.ejection_bps,
            batch_epsilon: raw.batch_epsilon,
            per_hop_latency_s: raw.per_hop_latency_s,
            startup_latency_s: raw.startup_latency_s,
            record_flow_times: raw.record_flow_times,
            collect_link_stats: raw.collect_link_stats,
            cache_routes: raw.cache_routes,
            route_cache_cap: raw.route_cache_cap,
        };
        cfg.validate().map_err(serde::de::Error::custom)?;
        Ok(cfg)
    }
}

/// Total-ordered f64 key for the delayed-activation heap (times are always
/// finite and non-NaN by construction).
#[derive(PartialEq, PartialOrd)]
struct Time(f64);
impl Eq for Time {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("times are not NaN")
    }
}

/// Flow-level simulator bound to a topology.
pub struct Simulator<'a> {
    topo: &'a dyn Topology,
    cfg: SimConfig,
    num_links: usize,
    num_eps: usize,
}

impl<'a> Simulator<'a> {
    /// Create a simulator with the default configuration.
    pub fn new(topo: &'a dyn Topology) -> Self {
        Self::with_config(topo, SimConfig::default())
    }

    /// Create a simulator with a custom configuration.
    pub fn with_config(topo: &'a dyn Topology, cfg: SimConfig) -> Self {
        Simulator {
            num_links: topo.network().num_links(),
            num_eps: topo.num_endpoints(),
            topo,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Resource id of an endpoint's injection port.
    #[inline]
    pub fn injection_resource(&self, ep: u32) -> u32 {
        (self.num_links + ep as usize) as u32
    }

    /// Resource id of an endpoint's ejection port.
    #[inline]
    pub fn ejection_resource(&self, ep: u32) -> u32 {
        (self.num_links + self.num_eps + ep as usize) as u32
    }

    fn resource_capacities(&self) -> Vec<f64> {
        let net = self.topo.network();
        let mut caps = Vec::with_capacity(self.num_links + 2 * self.num_eps);
        caps.extend(net.links().iter().map(|l| l.capacity_bps));
        caps.extend(std::iter::repeat_n(self.cfg.injection_bps, self.num_eps));
        caps.extend(std::iter::repeat_n(self.cfg.ejection_bps, self.num_eps));
        caps
    }

    /// Simulate `dag` to completion and return the report.
    ///
    /// Returns a typed [`SimError`] for every input-dependent failure: an
    /// invalid [`SimConfig`], a DAG referencing endpoints outside the
    /// topology, an unreachable destination (failed links partitioning the
    /// network), or a stalled rate allocation. Panics are reserved for
    /// internal invariant violations.
    pub fn run(&self, dag: &FlowDag) -> Result<SimReport, SimError> {
        self.cfg.validate()?;
        if let Some(max_ep) = dag.max_endpoint() {
            if max_ep as usize >= self.num_eps {
                return Err(SimError::EndpointOutOfRange {
                    endpoint: max_ep,
                    num_endpoints: self.num_eps as u64,
                });
            }
        }
        let n = dag.len();
        let (succ_offsets, succs) = dag.successors();

        let mut solver = MaxMinSolver::new(self.resource_capacities())?;
        let mut route_cache: HashMap<(u32, u32), Box<[u32]>> = HashMap::new();

        // Per-flow state.
        let mut remaining: Vec<f64> = dag.flows().iter().map(|f| f.bytes as f64 * 8.0).collect();
        let mut indeg: Vec<u32> = (0..n)
            .map(|f| dag.preds(FlowId(f as u32)).len() as u32)
            .collect();
        let mut completion_times = if self.cfg.record_flow_times {
            vec![f64::NAN; n]
        } else {
            Vec::new()
        };
        let mut resource_bytes = if self.cfg.collect_link_stats {
            vec![0.0f64; self.num_links + 2 * self.num_eps]
        } else {
            Vec::new()
        };

        // Active set: parallel vectors of flow id and path (resource list).
        let mut active_ids: Vec<u32> = Vec::new();
        let mut active_paths: Vec<Box<[u32]>> = Vec::new();
        let mut rates: Vec<f64> = Vec::new();
        // Flows waiting out their head latency.
        let mut delayed: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
        let mut delayed_paths: HashMap<u32, Box<[u32]>> = HashMap::new();

        let mut now = 0.0f64;
        let mut completed = 0usize;
        let mut events = 0u64;
        let mut path_scratch: Vec<exaflow_netgraph::LinkId> = Vec::new();
        let latency_model = self.cfg.per_hop_latency_s > 0.0 || self.cfg.startup_latency_s > 0.0;

        let mut ready: Vec<u32> = (0..n as u32).filter(|&f| indeg[f as usize] == 0).collect();

        // Activation: instantly retire degenerate flows (zero bytes or
        // self-traffic) cascading; queue real flows into the active set or,
        // under the latency model, into the delayed heap.
        macro_rules! activate_ready {
            () => {
                while let Some(f) = ready.pop() {
                    let spec = dag.flow(FlowId(f));
                    if spec.bytes == 0 || spec.src == spec.dst {
                        remaining[f as usize] = 0.0;
                        if self.cfg.record_flow_times {
                            completion_times[f as usize] = now;
                        }
                        completed += 1;
                        let lo = succ_offsets[f as usize] as usize;
                        let hi = succ_offsets[f as usize + 1] as usize;
                        for &s in &succs[lo..hi] {
                            indeg[s as usize] -= 1;
                            if indeg[s as usize] == 0 {
                                ready.push(s);
                            }
                        }
                        continue;
                    }
                    let path: Box<[u32]> = if self.cfg.cache_routes {
                        if let Some(p) = route_cache.get(&(spec.src, spec.dst)) {
                            p.clone()
                        } else {
                            let p = self.build_path(spec.src, spec.dst, &mut path_scratch)?;
                            if route_cache.len() < self.cfg.route_cache_cap {
                                route_cache.insert((spec.src, spec.dst), p.clone());
                            }
                            p
                        }
                    } else {
                        self.build_path(spec.src, spec.dst, &mut path_scratch)?
                    };
                    if latency_model {
                        // Physical hops = path minus the two NIC resources.
                        let hops = path.len().saturating_sub(2) as f64;
                        let at =
                            now + self.cfg.startup_latency_s + hops * self.cfg.per_hop_latency_s;
                        delayed.push(Reverse((Time(at), f)));
                        delayed_paths.insert(f, path);
                    } else {
                        active_ids.push(f);
                        active_paths.push(path);
                    }
                }
            };
        }

        activate_ready!();

        loop {
            if active_ids.is_empty() {
                // Nothing transferring: jump to the next delayed activation.
                match delayed.pop() {
                    None => break,
                    Some(Reverse((Time(t), f))) => {
                        now = now.max(t);
                        active_ids.push(f);
                        active_paths.push(delayed_paths.remove(&f).expect("delayed path"));
                        while let Some(Reverse((Time(t2), _))) = delayed.peek() {
                            if *t2 <= now {
                                let Reverse((_, f2)) = delayed.pop().unwrap();
                                active_ids.push(f2);
                                active_paths.push(delayed_paths.remove(&f2).unwrap());
                            } else {
                                break;
                            }
                        }
                        continue;
                    }
                }
            }

            events += 1;
            rates.resize(active_ids.len(), 0.0);
            solver.solve(&active_paths, &mut rates);

            // Earliest completion among active flows.
            let mut dt = f64::INFINITY;
            for (i, &f) in active_ids.iter().enumerate() {
                let t = remaining[f as usize] / rates[i];
                if t < dt {
                    dt = t;
                }
            }
            if !dt.is_finite() {
                return Err(self.stall_error(now, &active_ids, &active_paths, &rates, &solver));
            }

            // A delayed activation may precede the earliest completion.
            if let Some(Reverse((Time(t_act), _))) = delayed.peek() {
                if *t_act < now + dt {
                    let step = *t_act - now;
                    self.advance(
                        step,
                        &active_ids,
                        &active_paths,
                        &rates,
                        &mut remaining,
                        &mut resource_bytes,
                    );
                    now = *t_act;
                    while let Some(Reverse((Time(t2), _))) = delayed.peek() {
                        if *t2 <= now {
                            let Reverse((_, f2)) = delayed.pop().unwrap();
                            active_ids.push(f2);
                            active_paths.push(delayed_paths.remove(&f2).unwrap());
                        } else {
                            break;
                        }
                    }
                    continue;
                }
            }

            let cutoff = dt * (1.0 + self.cfg.batch_epsilon);
            // Identify the completion batch *before* advancing, then advance.
            let mut done_flags = vec![false; active_ids.len()];
            for (i, &f) in active_ids.iter().enumerate() {
                done_flags[i] = remaining[f as usize] / rates[i] <= cutoff;
            }
            self.advance(
                dt,
                &active_ids,
                &active_paths,
                &rates,
                &mut remaining,
                &mut resource_bytes,
            );
            now += dt;

            // Retire the completion batch (swap-remove).
            let mut i = 0;
            while i < active_ids.len() {
                if done_flags[i] {
                    let f = active_ids[i] as usize;
                    remaining[f] = 0.0;
                    if self.cfg.record_flow_times {
                        completion_times[f] = now;
                    }
                    completed += 1;
                    let lo = succ_offsets[f] as usize;
                    let hi = succ_offsets[f + 1] as usize;
                    for &s in &succs[lo..hi] {
                        indeg[s as usize] -= 1;
                        if indeg[s as usize] == 0 {
                            ready.push(s);
                        }
                    }
                    active_ids.swap_remove(i);
                    active_paths.swap_remove(i);
                    rates.swap_remove(i);
                    done_flags.swap_remove(i);
                } else {
                    i += 1;
                }
            }

            activate_ready!();
        }

        // Internal invariant, not an input error: the builder guarantees
        // acyclicity, so an incomplete run is an engine bug.
        assert_eq!(
            completed, n,
            "simulation ended with {completed} of {n} flows incomplete (cyclic deps?)"
        );

        Ok(SimReport {
            makespan_seconds: now,
            flows: n as u64,
            events,
            maxmin_iterations: solver.iterations,
            completion_times: if self.cfg.record_flow_times {
                Some(completion_times)
            } else {
                None
            },
            resource_bytes: if self.cfg.collect_link_stats {
                Some(resource_bytes)
            } else {
                None
            },
            num_links: self.num_links as u64,
            num_endpoints: self.num_eps as u64,
        })
    }

    /// Diagnose a stalled rate allocation: name the zero-rate flows and the
    /// suspected bottleneck (smallest-capacity resource on the first
    /// stalled flow's path) so a bulk-sweep entry is debuggable without a
    /// rerun.
    fn stall_error(
        &self,
        now: f64,
        active_ids: &[u32],
        active_paths: &[Box<[u32]>],
        rates: &[f64],
        solver: &MaxMinSolver,
    ) -> SimError {
        const MAX_REPORTED: usize = 8;
        let mut stalled = Vec::new();
        let mut resource = None;
        for (i, &f) in active_ids.iter().enumerate() {
            if rates[i] > 0.0 {
                continue;
            }
            if resource.is_none() {
                resource = active_paths[i].iter().copied().min_by(|&a, &b| {
                    solver
                        .capacity(a)
                        .partial_cmp(&solver.capacity(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            }
            if stalled.len() < MAX_REPORTED {
                stalled.push(f);
            }
        }
        SimError::Stalled {
            time: now,
            flows: stalled,
            resource,
        }
    }

    /// Advance every active flow by `dt` seconds, accounting bytes when
    /// link statistics are enabled.
    fn advance(
        &self,
        dt: f64,
        active_ids: &[u32],
        active_paths: &[Box<[u32]>],
        rates: &[f64],
        remaining: &mut [f64],
        resource_bytes: &mut [f64],
    ) {
        if dt <= 0.0 {
            return;
        }
        for (i, &f) in active_ids.iter().enumerate() {
            remaining[f as usize] -= rates[i] * dt;
            if self.cfg.collect_link_stats {
                let bytes = rates[i] * dt / 8.0;
                for &r in active_paths[i].iter() {
                    resource_bytes[r as usize] += bytes;
                }
            }
        }
    }

    /// Materialise the resource path of a flow: injection resource, physical
    /// route links, ejection resource. An unreachable destination (failed
    /// links partitioning the network) is a typed error, not a panic.
    fn build_path(
        &self,
        src: u32,
        dst: u32,
        scratch: &mut Vec<exaflow_netgraph::LinkId>,
    ) -> Result<Box<[u32]>, SimError> {
        scratch.clear();
        self.topo
            .try_route(NodeId(src), NodeId(dst), scratch)
            .map_err(|e| SimError::Unreachable {
                src,
                dst,
                topology: e.topology,
                failed_links: e.failed_links as u64,
            })?;
        let mut path = Vec::with_capacity(scratch.len() + 2);
        path.push(self.injection_resource(src));
        path.extend(scratch.iter().map(|l| l.0));
        path.push(self.ejection_resource(dst));
        Ok(path.into_boxed_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::FlowDagBuilder;
    use exaflow_topo::{KAryTree, Torus};

    const GBPS: f64 = 1e9;

    fn mb(n: u64) -> u64 {
        n * 1_000_000
    }

    /// Time to push `bytes` through `bps`.
    fn xfer(bytes: u64, bps: f64) -> f64 {
        bytes as f64 * 8.0 / bps
    }

    #[test]
    fn single_flow_wire_time() {
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12);
        assert_eq!(r.flows, 1);
        assert_eq!(r.events, 1);
    }

    #[test]
    fn two_flows_same_link_halve() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - 2.0 * xfer(mb(1), 10.0 * GBPS)).abs() < 1e-9);
        assert_eq!(r.events, 1);
    }

    #[test]
    fn opposite_directions_do_not_share() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        b.add_flow(NodeId(1), NodeId(0), mb(1), &[]);
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12);
    }

    #[test]
    fn dependency_chain_serialises() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let c = b.add_flow(NodeId(1), NodeId(2), mb(1), &[a]);
        b.add_flow(NodeId(2), NodeId(3), mb(1), &[c]);
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - 3.0 * xfer(mb(1), 10.0 * GBPS)).abs() < 1e-9);
        assert_eq!(r.events, 3);
    }

    #[test]
    fn reduce_bottlenecked_by_ejection_port() {
        // The paper's explanation of the Reduce collective: all flows
        // serialise at the root's consumption port regardless of topology.
        let torus = Torus::new(&[4, 4]);
        let tree = KAryTree::new(4, 2);
        for topo in [&torus as &dyn Topology, &tree as &dyn Topology] {
            let sim = Simulator::new(topo);
            let mut b = FlowDagBuilder::new();
            for s in 1..16u32 {
                b.add_flow(NodeId(s), NodeId(0), mb(1), &[]);
            }
            let r = sim.run(&b.build()).unwrap();
            let expect = xfer(mb(15), 10.0 * GBPS);
            assert!(
                (r.makespan_seconds - expect).abs() / expect < 1e-6,
                "{}: {} vs {expect}",
                topo.name(),
                r.makespan_seconds
            );
        }
    }

    #[test]
    fn zero_byte_flows_instant() {
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), 0, &[]);
        let c = b.add_barrier(&[a]);
        b.add_flow(NodeId(2), NodeId(2), mb(5), &[c]); // self traffic: instant
        let r = sim.run(&b.build()).unwrap();
        assert_eq!(r.makespan_seconds, 0.0);
        assert_eq!(r.events, 0);
    }

    #[test]
    fn empty_dag_runs() {
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let r = sim.run(&FlowDagBuilder::new().build()).unwrap();
        assert_eq!(r.makespan_seconds, 0.0);
        assert_eq!(r.flows, 0);
    }

    #[test]
    fn completion_times_recorded() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            record_flow_times: true,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let c = b.add_flow(NodeId(1), NodeId(2), mb(2), &[a]);
        let r = sim.run(&b.build()).unwrap();
        let times = r.completion_times.as_ref().unwrap();
        let step = xfer(mb(1), 10.0 * GBPS);
        assert!((times[a.index()] - step).abs() < 1e-12);
        assert!((times[c.index()] - 3.0 * step).abs() < 1e-9);
    }

    #[test]
    fn max_min_beats_naive_serialisation() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        for i in 0..4u32 {
            b.add_flow(NodeId(2 * i), NodeId(2 * i + 1), mb(1), &[]);
        }
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_endpoint_is_typed_error() {
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(99), 1, &[]);
        let err = sim.run(&b.build()).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::EndpointOutOfRange {
                    endpoint: 99,
                    num_endpoints: 4
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn nan_latency_is_invalid_config() {
        let topo = Torus::new(&[4]);
        let cfg = SimConfig {
            per_hop_latency_s: f64::NAN,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let err = sim.run(&b.build()).unwrap_err();
        match err {
            SimError::InvalidConfig { field, value, .. } => {
                assert_eq!(field, "per_hop_latency_s");
                assert_eq!(value, "NaN");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn zero_injection_rate_is_invalid_config_not_stall() {
        // This used to stall the engine (all rates zero) and die on an
        // assert; it must now be rejected up front with the field named.
        let topo = Torus::new(&[4]);
        let cfg = SimConfig {
            injection_bps: 0.0,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let err = sim.run(&b.build()).unwrap_err();
        match err {
            SimError::InvalidConfig { field, .. } => assert_eq!(field, "injection_bps"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn negative_rate_rejected_at_deserialization() {
        let json = r#"{
            "injection_bps": -1.0,
            "ejection_bps": 1e10,
            "batch_epsilon": 1e-9,
            "record_flow_times": false,
            "cache_routes": true,
            "route_cache_cap": 1024
        }"#;
        let err = serde_json::from_str::<SimConfig>(json).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("injection_bps"), "{msg}");
    }

    #[test]
    fn partition_is_unreachable_error_not_panic() {
        use exaflow_topo::Degraded;
        // Ring 0-1-2-3; failing both directions of cables (0,1) and (2,3)
        // splits {0,3} from {1,2}, so 0 -> 1 cannot route.
        let base = Torus::new(&[4]);
        let mut cut = Vec::new();
        let net = base.network();
        for (a, b) in [(0u32, 1u32), (2, 3)] {
            cut.push(net.find_physical_link(NodeId(a), NodeId(b)).unwrap());
            cut.push(net.find_physical_link(NodeId(b), NodeId(a)).unwrap());
        }
        let degraded = Degraded::new(base, cut);
        let sim = Simulator::new(&degraded);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let err = sim.run(&b.build()).unwrap_err();
        match err {
            SimError::Unreachable {
                src,
                dst,
                failed_links,
                ..
            } => {
                assert_eq!((src, dst), (0, 1));
                assert_eq!(failed_links, 4);
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn route_cache_does_not_change_results() {
        let topo = Torus::new(&[4, 4]);
        let mut dagb = FlowDagBuilder::new();
        let mut prev: Vec<crate::FlowId> = vec![];
        for _round in 0..3 {
            let mut cur = vec![];
            for i in 0..8u32 {
                let deps: Vec<_> = prev.clone();
                cur.push(dagb.add_flow(NodeId(i), NodeId((i + 5) % 16), mb(1), &deps));
            }
            prev = cur;
        }
        let dag = dagb.build();
        let run = |cache: bool| {
            let cfg = SimConfig {
                cache_routes: cache,
                ..SimConfig::default()
            };
            Simulator::with_config(&topo, cfg)
                .run(&dag)
                .unwrap()
                .makespan_seconds
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn larger_batch_epsilon_reduces_events() {
        let topo = Torus::new(&[16]);
        let mut b = FlowDagBuilder::new();
        for i in 0..8u32 {
            b.add_flow(NodeId(i), NodeId(i + 8), mb(100) + i as u64, &[]);
        }
        let dag = b.build();
        let run = |eps: f64| {
            let cfg = SimConfig {
                batch_epsilon: eps,
                ..SimConfig::default()
            };
            Simulator::with_config(&topo, cfg).run(&dag).unwrap().events
        };
        assert!(run(1e-3) < run(1e-12));
    }

    #[test]
    fn per_hop_latency_adds_head_time() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            per_hop_latency_s: 1e-6,
            startup_latency_s: 5e-6,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        // 0 -> 2 is two hops.
        b.add_flow(NodeId(0), NodeId(2), mb(1), &[]);
        let r = sim.run(&b.build()).unwrap();
        let expect = 5e-6 + 2.0 * 1e-6 + xfer(mb(1), 10.0 * GBPS);
        assert!(
            (r.makespan_seconds - expect).abs() < 1e-12,
            "{} vs {expect}",
            r.makespan_seconds
        );
    }

    #[test]
    fn latency_staggers_contending_flows() {
        // Two flows share the destination but start at different times due
        // to different path lengths; both must still finish correctly.
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            per_hop_latency_s: 1e-3, // exaggerated: comparable to wire time
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]); // 1 hop: starts at 1ms
        b.add_flow(NodeId(7), NodeId(1), mb(1), &[]); // 2 hops: starts at 2ms
        let r = sim.run(&b.build()).unwrap();
        assert!(r.makespan_seconds > 2e-3);
        assert!(r.makespan_seconds < 4.5e-3);
        assert_eq!(r.flows, 2);
    }

    #[test]
    fn latency_respects_dependencies() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            startup_latency_s: 1e-3,
            record_flow_times: true,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let c = b.add_flow(NodeId(1), NodeId(2), mb(1), &[a]);
        let r = sim.run(&b.build()).unwrap();
        let times = r.completion_times.unwrap();
        let step = 1e-3 + xfer(mb(1), 10.0 * GBPS);
        assert!((times[a.index()] - step).abs() < 1e-9);
        assert!((times[c.index()] - 2.0 * step).abs() < 1e-9);
    }

    #[test]
    fn link_stats_conserve_bytes() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            collect_link_stats: true,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(2), mb(1), &[]); // 2 hops + inj + ej
        b.add_flow(NodeId(4), NodeId(5), mb(2), &[]); // 1 hop + inj + ej
        let r = sim.run(&b.build()).unwrap();
        let bytes = r.resource_bytes.as_ref().unwrap();
        let total: f64 = bytes.iter().sum();
        // Flow 1 crosses 4 resources with 1 MB, flow 2 crosses 3 with 2 MB.
        let expect = (4 * mb(1) + 3 * mb(2)) as f64;
        assert!(
            (total - expect).abs() / expect < 1e-9,
            "{total} vs {expect}"
        );
        // The busiest physical link carried 2 MB.
        let hottest = r.hottest_links(1);
        assert_eq!(hottest.len(), 1);
        assert!((hottest[0].1 - mb(2) as f64).abs() < 1.0);
    }

    #[test]
    fn stats_and_latency_compose() {
        let topo = Torus::new(&[4, 4]);
        let cfg = SimConfig {
            collect_link_stats: true,
            per_hop_latency_s: 1e-6,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        for i in 0..8u32 {
            b.add_flow(NodeId(i), NodeId(15 - i), mb(1), &[]);
        }
        let r = sim.run(&b.build()).unwrap();
        assert!(r.makespan_seconds > 0.0);
        let bytes = r.resource_bytes.unwrap();
        assert!(bytes.iter().sum::<f64>() > 0.0);
    }
}
