//! The simulation engine: activation, rate allocation, batched completions,
//! optional per-hop latency and per-link accounting.

use crate::dag::{FlowDag, FlowId};
use crate::error::SimError;
use crate::fault::{FaultAction, FaultSchedule, RecoveryPolicy};
use crate::maxmin::MaxMinSolver;
use crate::pool::{SharedSlice, WorkerPool};
use crate::report::SimReport;
use crate::trace::{MetricsRegistry, TraceEvent, TraceSink};
use exaflow_netgraph::{LinkId, NodeId};
use exaflow_topo::{FaultOverlay, Topology};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Routes a prefetch batch computed ahead of admission, keyed by endpoint
/// pair; failed routes are kept so admission re-reports the same error.
type PrefetchedRoutes = HashMap<(u32, u32), Result<Arc<[u32]>, SimError>>;

/// Bytes no longer outstanding at a cut point: total workload bytes minus
/// the bits still `remaining`. Finished flows have zero remaining, partial
/// flows contribute their transferred prefix, and skipped flows (whose
/// remaining is zeroed at retirement) count as accounted-for.
fn bytes_accounted(dag: &FlowDag, remaining: &[f64]) -> u64 {
    let total_bits: f64 = dag.flows().iter().map(|f| f.bytes as f64 * 8.0).sum();
    let outstanding_bits: f64 = remaining.iter().sum();
    (((total_bits - outstanding_bits) / 8.0).max(0.0)) as u64
}

/// Engine configuration.
///
/// Deserialization validates the numeric fields (see
/// [`SimConfig::validate`]): a config with a non-finite or negative rate,
/// epsilon or latency is rejected at the JSON boundary instead of stalling
/// or poisoning the event heap deep inside a run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SimConfig {
    /// Endpoint injection (NIC transmit) capacity, bits/second.
    pub injection_bps: f64,
    /// Endpoint ejection (NIC receive / consumption port) capacity,
    /// bits/second. This is the resource that serialises an N-to-1 Reduce.
    pub ejection_bps: f64,
    /// Relative completion-batching tolerance: all flows finishing within
    /// `(1 + epsilon)` of the earliest completion time retire in one event.
    /// The default `1e-9` only merges numerically-identical completions and
    /// is exact for all practical purposes; larger values trade accuracy
    /// for fewer rate recomputations (see the engine ablation bench).
    pub batch_epsilon: f64,
    /// Head latency added before a flow starts transferring:
    /// `startup_latency_s + hops · per_hop_latency_s`. Zero by default —
    /// the pure fluid model, appropriate for the paper's MB-scale
    /// transfers where wire time dominates switch latency by 10³.
    #[serde(default)]
    pub per_hop_latency_s: f64,
    /// Fixed protocol/software overhead per flow, seconds.
    #[serde(default)]
    pub startup_latency_s: f64,
    /// Record per-flow completion times in the report.
    pub record_flow_times: bool,
    /// Accumulate bytes carried per resource (links, then injection, then
    /// ejection ports) in the report. Costs one pass over active paths per
    /// event.
    #[serde(default)]
    pub collect_link_stats: bool,
    /// Memoise routes per (src, dst) pair. Pays off for iterative workloads
    /// that reuse pairs across rounds; capped to bound memory.
    pub cache_routes: bool,
    /// Maximum number of cached routes.
    pub route_cache_cap: usize,
    /// Incremental rate allocation: on each event, re-solve only the
    /// connected component(s) of the flow–resource sharing graph that
    /// changed (see `maxmin` module docs). Falls back to a full pass on
    /// fault events and when the dirty region exceeds
    /// `incremental_full_threshold`. Rates — and therefore the whole
    /// report — are bit-identical to the full per-event solve.
    #[serde(default = "default_true")]
    pub solver_incremental: bool,
    /// Coalesce active flows with identical resource paths into one
    /// weighted solver entry. Collapses symmetric collectives (AllReduce
    /// rounds, MapReduce shuffles) by orders of magnitude; bit-identical
    /// to solving the flows separately.
    #[serde(default = "default_true")]
    pub coalesce_flows: bool,
    /// Dirty-region fraction (of live entries) above which an incremental
    /// recompute degrades to a full pass; `0.0..=1.0`. Small components
    /// are cheaper to re-solve in place, near-global ones are not worth
    /// the bookkeeping.
    #[serde(default = "default_full_threshold")]
    pub incremental_full_threshold: f64,
    /// Collect trace metrics ([`SimReport::metrics`]) even without an
    /// explicit [`TraceSink`]; passing a sink to the `*_traced` entry
    /// points enables tracing regardless. Off by default — an untraced
    /// run constructs no events, touches no counters, and its report is
    /// bit-identical to builds predating the trace subsystem.
    #[serde(default)]
    pub trace: bool,
    /// Worker threads for the in-run parallel phases (water-filling
    /// bottleneck scan / rate subtraction, batched route construction).
    /// `0` (the default) means auto: the `EXAFLOW_THREADS` environment
    /// variable if set, otherwise the machine's available parallelism;
    /// `1` runs the exact single-threaded code path with no pool at all.
    /// Reports and traces are **bit-identical** at every value — threads
    /// change wall-clock time, never physics (enforced by the
    /// equivalence suites).
    #[serde(default)]
    pub solver_threads: usize,
    /// Deterministic event budget: the run stops with a typed
    /// [`SimError::BudgetExhausted`] once this many events have been
    /// processed without every flow resolving. `None` (the default) means
    /// unlimited. Because the event sequence is deterministic, the same
    /// config trips at exactly the same point on every host.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_events: Option<u64>,
    /// Wall-clock deadline, seconds: the run stops with a typed
    /// [`SimError::DeadlineExceeded`] once this much real time has elapsed
    /// without every flow resolving. Checked at event boundaries, so a
    /// stuck cell becomes a diagnosable suite entry instead of a hung
    /// sweep. `None` (the default) means unlimited. Host-speed dependent —
    /// suites treat it as transient and may retry.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_wall_s: Option<f64>,
}

fn default_true() -> bool {
    true
}

fn default_full_threshold() -> f64 {
    0.5
}

impl SimConfig {
    /// Check every numeric field against its domain: NIC rates must be
    /// finite and strictly positive, the batching epsilon and latencies
    /// finite and non-negative. Called by [`Simulator::run`] and by the
    /// `Deserialize` impl, so an invalid config is a typed
    /// [`SimError::InvalidConfig`] at the boundary — never a zero-rate
    /// stall or a NaN in the delayed-activation heap.
    pub fn validate(&self) -> Result<(), SimError> {
        let positive = [
            ("injection_bps", self.injection_bps),
            ("ejection_bps", self.ejection_bps),
        ];
        for (field, value) in positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(SimError::invalid_config(
                    field,
                    value,
                    "must be finite and > 0",
                ));
            }
        }
        let non_negative = [
            ("batch_epsilon", self.batch_epsilon),
            ("per_hop_latency_s", self.per_hop_latency_s),
            ("startup_latency_s", self.startup_latency_s),
        ];
        for (field, value) in non_negative {
            if !(value.is_finite() && value >= 0.0) {
                return Err(SimError::invalid_config(
                    field,
                    value,
                    "must be finite and >= 0",
                ));
            }
        }
        let t = self.incremental_full_threshold;
        if !(t.is_finite() && (0.0..=1.0).contains(&t)) {
            return Err(SimError::invalid_config(
                "incremental_full_threshold",
                t,
                "must be finite and within 0..=1",
            ));
        }
        if let Some(limit) = self.max_wall_s {
            if !(limit.is_finite() && limit > 0.0) {
                return Err(SimError::invalid_config(
                    "max_wall_s",
                    limit,
                    "must be finite and > 0",
                ));
            }
        }
        Ok(())
    }

    /// The thread count a run with this config actually uses: the
    /// configured [`SimConfig::solver_threads`], with `0` resolved through
    /// `EXAFLOW_THREADS` / available parallelism (always at least 1).
    pub fn effective_solver_threads(&self) -> usize {
        crate::pool::resolve_threads(self.solver_threads)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            injection_bps: exaflow_topo::LINK_RATE_BPS,
            ejection_bps: exaflow_topo::LINK_RATE_BPS,
            batch_epsilon: 1e-9,
            per_hop_latency_s: 0.0,
            startup_latency_s: 0.0,
            record_flow_times: false,
            collect_link_stats: false,
            cache_routes: true,
            route_cache_cap: 1 << 21,
            solver_incremental: true,
            coalesce_flows: true,
            incremental_full_threshold: 0.5,
            trace: false,
            solver_threads: 0,
            max_events: None,
            max_wall_s: None,
        }
    }
}

/// Unvalidated mirror of [`SimConfig`] carrying the derive-generated field
/// logic; the manual `Deserialize` below funnels it through
/// [`SimConfig::validate`] so malformed JSON surfaces as a config error.
#[derive(Deserialize)]
struct SimConfigUnchecked {
    injection_bps: f64,
    ejection_bps: f64,
    batch_epsilon: f64,
    #[serde(default)]
    per_hop_latency_s: f64,
    #[serde(default)]
    startup_latency_s: f64,
    record_flow_times: bool,
    #[serde(default)]
    collect_link_stats: bool,
    cache_routes: bool,
    route_cache_cap: usize,
    #[serde(default = "default_true")]
    solver_incremental: bool,
    #[serde(default = "default_true")]
    coalesce_flows: bool,
    #[serde(default = "default_full_threshold")]
    incremental_full_threshold: f64,
    #[serde(default)]
    trace: bool,
    #[serde(default)]
    solver_threads: usize,
    #[serde(default)]
    max_events: Option<u64>,
    #[serde(default)]
    max_wall_s: Option<f64>,
}

impl serde::de::Deserialize for SimConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::de::Error> {
        let raw = SimConfigUnchecked::from_value(value)?;
        let cfg = SimConfig {
            injection_bps: raw.injection_bps,
            ejection_bps: raw.ejection_bps,
            batch_epsilon: raw.batch_epsilon,
            per_hop_latency_s: raw.per_hop_latency_s,
            startup_latency_s: raw.startup_latency_s,
            record_flow_times: raw.record_flow_times,
            collect_link_stats: raw.collect_link_stats,
            cache_routes: raw.cache_routes,
            route_cache_cap: raw.route_cache_cap,
            solver_incremental: raw.solver_incremental,
            coalesce_flows: raw.coalesce_flows,
            incremental_full_threshold: raw.incremental_full_threshold,
            trace: raw.trace,
            solver_threads: raw.solver_threads,
            max_events: raw.max_events,
            max_wall_s: raw.max_wall_s,
        };
        cfg.validate().map_err(serde::de::Error::custom)?;
        Ok(cfg)
    }
}

/// Bounded `(src, dst) -> path` memo with two-generation eviction.
///
/// Inserts land in the `fresh` generation; once it holds half the cap the
/// previous generation is dropped wholesale and `fresh` becomes `stale`.
/// A `stale` hit promotes the route back into `fresh`. Total size is thus
/// bounded by `cap` while recently-used pairs survive — the previous
/// behaviour (silently refusing inserts at the cap) degraded beyond-cap
/// workloads to a zero hit rate with no signal. Rotation triggers on an
/// exact size threshold, so the eviction trajectory is deterministic (no
/// dependence on `HashMap` iteration order) and — because lookups happen
/// in the engine's sequential admission order — identical at every
/// `solver_threads` value.
struct RouteCache {
    fresh: HashMap<(u32, u32), Arc<[u32]>>,
    stale: HashMap<(u32, u32), Arc<[u32]>>,
    /// Per-generation capacity; 0 disables insertion (`route_cache_cap = 0`).
    half_cap: usize,
    hits: u64,
    evictions: u64,
}

impl RouteCache {
    fn new(cap: usize) -> Self {
        RouteCache {
            fresh: HashMap::new(),
            stale: HashMap::new(),
            half_cap: cap.div_ceil(2),
            hits: 0,
            evictions: 0,
        }
    }

    /// Cached route for `key`, counting a hit and promoting stale entries.
    fn get(&mut self, key: (u32, u32)) -> Option<Arc<[u32]>> {
        if let Some(p) = self.fresh.get(&key) {
            self.hits += 1;
            return Some(p.clone());
        }
        let p = self.stale.remove(&key)?;
        self.hits += 1;
        self.insert(key, p.clone());
        Some(p)
    }

    /// Whether `key` is cached, without touching the hit counter (used by
    /// the route-prefetch planner, which must not perturb accounting).
    fn contains(&self, key: (u32, u32)) -> bool {
        self.fresh.contains_key(&key) || self.stale.contains_key(&key)
    }

    fn insert(&mut self, key: (u32, u32), path: Arc<[u32]>) {
        if self.half_cap == 0 {
            return;
        }
        if self.fresh.len() >= self.half_cap {
            self.evictions += self.stale.len() as u64;
            self.stale = std::mem::take(&mut self.fresh);
        }
        self.fresh.insert(key, path);
    }

    /// Drop every cached path crossing a newly-downed link. Fault purges
    /// are not evictions: the counter tracks capacity pressure only.
    fn purge_crossing(&mut self, downed: &[u32]) {
        self.fresh
            .retain(|_, p| !p.iter().any(|r| downed.contains(r)));
        self.stale
            .retain(|_, p| !p.iter().any(|r| downed.contains(r)));
    }
}

/// Smallest activation batch (in distinct uncached endpoint pairs) worth
/// routing on the worker pool; below this the dispatch handshake costs
/// more than the routes.
const ROUTE_PREFETCH_MIN: usize = 32;

/// Total-ordered f64 key for the delayed-activation heap (times are always
/// finite and non-NaN by construction).
#[derive(PartialEq, PartialOrd)]
struct Time(f64);
impl Eq for Time {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("times are not NaN")
    }
}

/// Flow-level simulator bound to a topology.
pub struct Simulator<'a> {
    topo: &'a dyn Topology,
    cfg: SimConfig,
    num_links: usize,
    num_eps: usize,
    topo_cache_hit: bool,
}

impl<'a> Simulator<'a> {
    /// Create a simulator with the default configuration.
    pub fn new(topo: &'a dyn Topology) -> Self {
        Self::with_config(topo, SimConfig::default())
    }

    /// Create a simulator with a custom configuration.
    pub fn with_config(topo: &'a dyn Topology, cfg: SimConfig) -> Self {
        Simulator {
            num_links: topo.network().num_links(),
            num_eps: topo.num_endpoints(),
            topo,
            cfg,
            topo_cache_hit: false,
        }
    }

    /// Record whether the topology was served from a shared topology
    /// cache. Pure provenance: it is stamped into the `run_started` trace
    /// header and the metrics snapshot and never influences the physics —
    /// a config knob would pollute spec fingerprints, so this lives on the
    /// simulator instead of [`SimConfig`].
    pub fn set_topo_cache_hit(&mut self, hit: bool) {
        self.topo_cache_hit = hit;
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Resource id of an endpoint's injection port.
    #[inline]
    pub fn injection_resource(&self, ep: u32) -> u32 {
        (self.num_links + ep as usize) as u32
    }

    /// Resource id of an endpoint's ejection port.
    #[inline]
    pub fn ejection_resource(&self, ep: u32) -> u32 {
        (self.num_links + self.num_eps + ep as usize) as u32
    }

    fn resource_capacities(&self) -> Vec<f64> {
        let net = self.topo.network();
        let mut caps = Vec::with_capacity(self.num_links + 2 * self.num_eps);
        caps.extend(net.links().iter().map(|l| l.capacity_bps));
        caps.extend(std::iter::repeat_n(self.cfg.injection_bps, self.num_eps));
        caps.extend(std::iter::repeat_n(self.cfg.ejection_bps, self.num_eps));
        caps
    }

    /// Simulate `dag` to completion and return the report.
    ///
    /// Returns a typed [`SimError`] for every input-dependent failure: an
    /// invalid [`SimConfig`], a DAG referencing endpoints outside the
    /// topology, an unreachable destination (failed links partitioning the
    /// network), or a stalled rate allocation. Panics are reserved for
    /// internal invariant violations.
    pub fn run(&self, dag: &FlowDag) -> Result<SimReport, SimError> {
        self.run_with_faults(dag, &FaultSchedule::empty(), RecoveryPolicy::default())
    }

    /// Simulate `dag` while injecting the link-down/link-up events of
    /// `schedule` at their simulated times, recovering interrupted flows
    /// per `policy`.
    ///
    /// Fault events join the engine's event ordering alongside completions
    /// and delayed activations: at each step the earliest of the three
    /// fires. When a link goes down, every in-flight (active or
    /// latency-delayed) flow whose path crosses it is handed to the
    /// recovery policy:
    ///
    /// * [`RecoveryPolicy::Abort`] — the run stops with
    ///   [`SimError::LinkLost`].
    /// * [`RecoveryPolicy::SkipUnreachable`] — reroute; flows whose
    ///   destination became unreachable are dropped (recorded in
    ///   [`SimReport::skipped_flow_ids`]) and their dependents released.
    /// * [`RecoveryPolicy::RerouteResume`] — reroute keeping transferred
    ///   bytes; an unreachable destination is [`SimError::Unreachable`].
    /// * [`RecoveryPolicy::RerouteRestart`] — reroute and retransmit from
    ///   zero; an unreachable destination is [`SimError::Unreachable`].
    ///
    /// A restored link benefits flows routed over *fresh* endpoint pairs
    /// after the repair; pairs still in the route cache keep their cached
    /// detour (retained, not cleared — every cached path avoids all
    /// currently-down links by construction, so a repair can never make
    /// one invalid, only suboptimal), and flows already rerouted keep
    /// their detour. An empty schedule reproduces [`Simulator::run`]
    /// bit-for-bit. Events scheduled after the workload completes never
    /// fire; see [`SimReport::fault_events_applied`].
    pub fn run_with_faults(
        &self,
        dag: &FlowDag,
        schedule: &FaultSchedule,
        policy: RecoveryPolicy,
    ) -> Result<SimReport, SimError> {
        self.run_impl(dag, schedule, policy, None)
    }

    /// [`Simulator::run`] streaming every engine state transition into
    /// `sink`; implies tracing regardless of [`SimConfig::trace`], so the
    /// report also carries [`SimReport::metrics`]. The resulting trace
    /// satisfies [`crate::trace_check::check_trace`] by construction.
    pub fn run_traced(
        &self,
        dag: &FlowDag,
        sink: &mut dyn TraceSink,
    ) -> Result<SimReport, SimError> {
        self.run_impl(
            dag,
            &FaultSchedule::empty(),
            RecoveryPolicy::default(),
            Some(sink),
        )
    }

    /// [`Simulator::run_with_faults`] streaming trace events into `sink`.
    pub fn run_with_faults_traced(
        &self,
        dag: &FlowDag,
        schedule: &FaultSchedule,
        policy: RecoveryPolicy,
        sink: &mut dyn TraceSink,
    ) -> Result<SimReport, SimError> {
        self.run_impl(dag, schedule, policy, Some(sink))
    }

    fn run_impl(
        &self,
        dag: &FlowDag,
        schedule: &FaultSchedule,
        policy: RecoveryPolicy,
        mut sink: Option<&mut dyn TraceSink>,
    ) -> Result<SimReport, SimError> {
        self.cfg.validate()?;
        schedule.validate_for(self.topo.network())?;
        if let Some(max_ep) = dag.max_endpoint() {
            if max_ep as usize >= self.num_eps {
                return Err(SimError::EndpointOutOfRange {
                    endpoint: max_ep,
                    num_endpoints: self.num_eps as u64,
                });
            }
        }
        let n = dag.len();
        let (succ_offsets, succs) = dag.successors();

        let mut solver = MaxMinSolver::new(self.resource_capacities())?;
        let mut route_cache = RouteCache::new(self.cfg.route_cache_cap);
        let mut overlay = FaultOverlay::new(self.topo);

        // In-run parallelism: one persistent pool per run, shared by the
        // solver's water-filling phases and the route-prefetch batches.
        // `threads == 1` (the resolved default on a single-core host)
        // creates no pool and takes the exact sequential code path.
        let threads = self.cfg.effective_solver_threads();
        let worker_pool = (threads > 1).then(|| WorkerPool::new(threads));
        let pool = worker_pool.as_ref();
        // Routes computed ahead of admission by a prefetch batch, keyed by
        // endpoint pair; consumed (or invalidated by fault churn) before
        // any overlay state can drift from what the workers saw.
        let mut prefetched: PrefetchedRoutes = HashMap::new();
        let mut parallel_route_batches = 0u64;
        let fault_events = schedule.events();
        let mut fault_idx = 0usize;
        let mut fault_events_applied = 0u64;
        let mut skipped_flow_ids: Vec<u32> = Vec::new();

        // Per-flow state.
        let mut remaining: Vec<f64> = dag.flows().iter().map(|f| f.bytes as f64 * 8.0).collect();
        let mut indeg: Vec<u32> = (0..n)
            .map(|f| dag.preds(FlowId(f as u32)).len() as u32)
            .collect();
        let mut completion_times = if self.cfg.record_flow_times {
            vec![f64::NAN; n]
        } else {
            Vec::new()
        };
        let mut resource_bytes = if self.cfg.collect_link_stats {
            vec![0.0f64; self.num_links + 2 * self.num_eps]
        } else {
            Vec::new()
        };

        // Active set: parallel vectors of flow id and path (resource list).
        let mut active_ids: Vec<u32> = Vec::new();
        let mut active_paths: Vec<Arc<[u32]>> = Vec::new();
        let mut rates: Vec<f64> = Vec::new();
        // Incremental/coalesced mode: per-active-flow solver entry id,
        // parallel to `active_ids` (every swap_remove mirrors it).
        let use_entries = self.cfg.solver_incremental || self.cfg.coalesce_flows;
        let coalesce = self.cfg.coalesce_flows;
        let mut active_entries: Vec<u32> = Vec::new();
        // Flows waiting out their head latency.
        let mut delayed: BinaryHeap<Reverse<(Time, u32)>> = BinaryHeap::new();
        let mut delayed_paths: HashMap<u32, Arc<[u32]>> = HashMap::new();

        let mut now = 0.0f64;
        let mut completed = 0usize;
        let mut events = 0u64;
        // Wall-clock deadline, armed once per run; checked (together with
        // the event budget) at every event boundary so a runaway cell
        // terminates with a typed error instead of hanging its worker.
        let wall_deadline = self.cfg.max_wall_s.map(|limit| (Instant::now(), limit));
        let mut path_scratch: Vec<exaflow_netgraph::LinkId> = Vec::new();
        let latency_model = self.cfg.per_hop_latency_s > 0.0 || self.cfg.startup_latency_s > 0.0;

        let mut ready: Vec<u32> = (0..n as u32).filter(|&f| indeg[f as usize] == 0).collect();

        let tracing = self.cfg.trace || sink.is_some();
        let mut metrics = if tracing {
            Some(MetricsRegistry::new())
        } else {
            None
        };

        // Forward one event to the metrics registry and the sink. The whole
        // emission — event construction included — sits behind the single
        // `tracing` branch, so an untraced run pays one predictable jump
        // per site and allocates nothing.
        macro_rules! emit {
            ($ev:expr) => {
                if tracing {
                    let ev: TraceEvent = $ev;
                    if let Some(m) = metrics.as_mut() {
                        m.observe(&ev);
                    }
                    if let Some(s) = sink.as_mut() {
                        s.record(&ev);
                    }
                }
            };
        }

        // Retire flow `f` at the current time (delivered, degenerate, or
        // dropped): zero it, stamp its completion, release its dependents.
        macro_rules! retire {
            ($f:expr) => {{
                let f = $f as usize;
                remaining[f] = 0.0;
                if self.cfg.record_flow_times {
                    completion_times[f] = now;
                }
                completed += 1;
                let lo = succ_offsets[f] as usize;
                let hi = succ_offsets[f + 1] as usize;
                for &s in &succs[lo..hi] {
                    indeg[s as usize] -= 1;
                    if indeg[s as usize] == 0 {
                        ready.push(s);
                    }
                }
            }};
        }

        // Admit flow `f` with `path` into the active set, registering a
        // solver entry in incremental/coalesced mode.
        macro_rules! admit {
            ($f:expr, $path:expr) => {{
                let f: u32 = $f;
                let path: Arc<[u32]> = $path;
                emit!(TraceEvent::FlowStarted {
                    t: now,
                    flow: f,
                    path: path.to_vec(),
                });
                if use_entries {
                    active_entries.push(solver.insert_entry(path.clone(), coalesce));
                }
                active_ids.push(f);
                active_paths.push(path);
            }};
        }

        // Route the batch of pending activations across the worker pool.
        // Only runs with a fault-free overlay: with `num_down() == 0` the
        // overlay defers to the topology's pure deterministic route (or,
        // for statically-degraded topologies, a BFS over a fixed blocked
        // set), so a fresh per-worker overlay reproduces the main
        // overlay's answer exactly. Under active faults the overlay's
        // reroute memo is stateful and routing stays sequential. The
        // admission loop itself stays sequential either way, so the cache
        // trajectory, hit counters, trace order, and error surfacing are
        // identical at every thread count.
        macro_rules! prefetch_routes {
            () => {
                if let Some(pool) = pool {
                    if overlay.num_down() == 0 && ready.len() >= ROUTE_PREFETCH_MIN {
                        // Dedupe uncached, non-degenerate pairs in
                        // admission (LIFO) order.
                        let mut pairs: Vec<(u32, u32)> = Vec::new();
                        let mut seen: std::collections::HashSet<(u32, u32)> =
                            std::collections::HashSet::new();
                        for &f in ready.iter().rev() {
                            let spec = dag.flow(FlowId(f));
                            if spec.bytes == 0 || spec.src == spec.dst {
                                continue;
                            }
                            let key = (spec.src, spec.dst);
                            if !route_cache.contains(key)
                                && !prefetched.contains_key(&key)
                                && seen.insert(key)
                            {
                                pairs.push(key);
                            }
                        }
                        if pairs.len() >= ROUTE_PREFETCH_MIN {
                            parallel_route_batches += 1;
                            let nthreads = pool.threads();
                            let mut results: Vec<Option<Result<Arc<[u32]>, SimError>>> =
                                vec![None; pairs.len()];
                            {
                                let slots = SharedSlice::new(&mut results[..]);
                                let pairs: &[(u32, u32)] = &pairs;
                                pool.run(|w| {
                                    let mut scratch: Vec<LinkId> = Vec::new();
                                    let mut local = FaultOverlay::new(self.topo);
                                    for (i, &(src, dst)) in pairs.iter().enumerate() {
                                        if i % nthreads != w {
                                            continue;
                                        }
                                        let r = self.build_path(&mut local, src, dst, &mut scratch);
                                        // SAFETY: index i has exactly one
                                        // owning worker.
                                        unsafe { *slots.get_mut(i) = Some(r) };
                                    }
                                });
                            }
                            for (key, res) in pairs.into_iter().zip(results) {
                                prefetched.insert(key, res.expect("routed by its owner"));
                            }
                        }
                    }
                }
            };
        }

        // Activation: instantly retire degenerate flows (zero bytes or
        // self-traffic) cascading; queue real flows into the active set or,
        // under the latency model, into the delayed heap.
        macro_rules! activate_ready {
            () => {
                prefetch_routes!();
                while let Some(f) = ready.pop() {
                    let spec = dag.flow(FlowId(f));
                    emit!(TraceEvent::FlowActivated {
                        t: now,
                        flow: f,
                        src: spec.src,
                        dst: spec.dst,
                        bytes: spec.bytes,
                        preds: dag.preds(FlowId(f)).to_vec(),
                    });
                    if spec.bytes == 0 || spec.src == spec.dst {
                        emit!(TraceEvent::FlowFinished { t: now, flow: f });
                        retire!(f);
                        continue;
                    }
                    let cached = if self.cfg.cache_routes {
                        route_cache.get((spec.src, spec.dst))
                    } else {
                        None
                    };
                    let path: Arc<[u32]> = match cached {
                        Some(p) => p,
                        None => {
                            // A prefetch batch may have routed this pair
                            // already; the map holds exactly what
                            // `build_path` would return here (fault churn
                            // clears it), so consuming it preserves the
                            // sequential admission semantics verbatim.
                            let built = match prefetched.remove(&(spec.src, spec.dst)) {
                                Some(r) => r,
                                None => self.build_path(
                                    &mut overlay,
                                    spec.src,
                                    spec.dst,
                                    &mut path_scratch,
                                ),
                            };
                            match built {
                                Ok(p) => {
                                    if self.cfg.cache_routes {
                                        route_cache.insert((spec.src, spec.dst), p.clone());
                                    }
                                    p
                                }
                                // A flow activating toward a destination the
                                // current faults cut off is exactly what the skip
                                // policy drops — not only flows already in flight.
                                Err(SimError::Unreachable { .. })
                                    if matches!(policy, RecoveryPolicy::SkipUnreachable) =>
                                {
                                    emit!(TraceEvent::FlowSkipped { t: now, flow: f });
                                    retire!(f);
                                    skipped_flow_ids.push(f);
                                    continue;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                    };
                    if latency_model {
                        // Physical hops = path minus the two NIC resources.
                        let hops = path.len().saturating_sub(2) as f64;
                        let at =
                            now + self.cfg.startup_latency_s + hops * self.cfg.per_hop_latency_s;
                        delayed.push(Reverse((Time(at), f)));
                        delayed_paths.insert(f, path);
                    } else {
                        admit!(f, path);
                    }
                }
            };
        }

        // Flows skipped while latency-delayed leave stale heap entries
        // behind (their `delayed_paths` entry is gone); drop those before
        // consulting the heap.
        macro_rules! purge_cancelled {
            () => {
                while let Some(Reverse((_, f))) = delayed.peek() {
                    if delayed_paths.contains_key(f) {
                        break;
                    }
                    delayed.pop();
                }
            };
        }

        // Apply every fault event due at (or before) the current time, then
        // hand each in-flight flow whose path crossed a newly-downed link to
        // the recovery policy. Link resources share ids with links, so a
        // resource path crosses link `l` iff it contains `l` directly.
        macro_rules! apply_due_faults {
            () => {{
                let mut downed: Vec<u32> = Vec::new();
                let mut restored = false;
                while fault_idx < fault_events.len() && fault_events[fault_idx].time_s <= now {
                    let ev = fault_events[fault_idx];
                    fault_idx += 1;
                    match ev.action {
                        FaultAction::Down => {
                            if overlay.fail_link(LinkId(ev.link)) {
                                fault_events_applied += 1;
                                emit!(TraceEvent::FaultApplied {
                                    t: now,
                                    link: ev.link,
                                });
                                downed.push(ev.link);
                            }
                        }
                        FaultAction::Up => {
                            if overlay.restore_link(LinkId(ev.link)) {
                                fault_events_applied += 1;
                                emit!(TraceEvent::FaultCleared {
                                    t: now,
                                    link: ev.link,
                                });
                                restored = true;
                            }
                        }
                    }
                }
                if !downed.is_empty() {
                    route_cache.purge_crossing(&downed);
                }
                // Repair retention invariant: every cached path avoids all
                // currently-down links (down events purge the crossers,
                // inserts route around the live down-set), and a repair
                // only *shrinks* the down-set — so retained entries remain
                // valid routes. They may keep a detour where the repaired
                // link would now give a shorter path; flows on fresh pairs
                // route through the repaired link immediately. Clearing
                // here (the old behaviour) threw away every warm route on
                // each up-event in a long-running campaign.
                if restored || !downed.is_empty() {
                    // Prefetched routes were computed against the previous
                    // overlay; drop them so consumption can never lag the
                    // down-set.
                    prefetched.clear();
                }
                if use_entries && (restored || !downed.is_empty()) {
                    // Fault churn perturbs the sharing graph beyond the
                    // entry-level diff (coalesced groups included): force
                    // the next recompute to cover every live entry.
                    solver.invalidate_all();
                }
                if !downed.is_empty() {
                    let crosses = |p: &[u32]| p.iter().find(|r| downed.contains(r)).copied();
                    // Active flows first, in deterministic index order...
                    let mut i = 0;
                    while i < active_ids.len() {
                        let f = active_ids[i];
                        let Some(link) = crosses(&active_paths[i]) else {
                            i += 1;
                            continue;
                        };
                        if matches!(policy, RecoveryPolicy::Abort) {
                            return Err(SimError::LinkLost {
                                time: now,
                                link,
                                flow: f,
                            });
                        }
                        let spec = dag.flow(FlowId(f));
                        match self.build_path(&mut overlay, spec.src, spec.dst, &mut path_scratch) {
                            Ok(p) => {
                                emit!(TraceEvent::RerouteTaken {
                                    t: now,
                                    flow: f,
                                    path: p.to_vec(),
                                    restarted: matches!(policy, RecoveryPolicy::RerouteRestart),
                                });
                                if use_entries {
                                    solver.remove_entry(active_entries[i]);
                                    active_entries[i] = solver.insert_entry(p.clone(), coalesce);
                                }
                                active_paths[i] = p;
                                if matches!(policy, RecoveryPolicy::RerouteRestart) {
                                    // Retransmit from zero on the new path.
                                    remaining[f as usize] = spec.bytes as f64 * 8.0;
                                }
                                i += 1;
                            }
                            Err(e) => {
                                if matches!(policy, RecoveryPolicy::SkipUnreachable) {
                                    emit!(TraceEvent::FlowSkipped { t: now, flow: f });
                                    retire!(f);
                                    skipped_flow_ids.push(f);
                                    active_ids.swap_remove(i);
                                    active_paths.swap_remove(i);
                                    if use_entries {
                                        solver.remove_entry(active_entries[i]);
                                        active_entries.swap_remove(i);
                                    }
                                    // `rates` is resized before the next solve.
                                } else {
                                    return Err(e);
                                }
                            }
                        }
                    }
                    // ...then flows still waiting out their head latency
                    // (sorted: HashMap order is not deterministic).
                    let mut waiting: Vec<u32> = delayed_paths.keys().copied().collect();
                    waiting.sort_unstable();
                    for f in waiting {
                        let Some(link) = crosses(&delayed_paths[&f]) else {
                            continue;
                        };
                        if matches!(policy, RecoveryPolicy::Abort) {
                            return Err(SimError::LinkLost {
                                time: now,
                                link,
                                flow: f,
                            });
                        }
                        let spec = dag.flow(FlowId(f));
                        match self.build_path(&mut overlay, spec.src, spec.dst, &mut path_scratch) {
                            Ok(p) => {
                                // Keep the original activation time: the head
                                // latency was committed when the flow was
                                // scheduled. Nothing transferred yet, so
                                // resume and restart coincide here.
                                emit!(TraceEvent::RerouteTaken {
                                    t: now,
                                    flow: f,
                                    path: p.to_vec(),
                                    restarted: false,
                                });
                                delayed_paths.insert(f, p);
                            }
                            Err(e) => {
                                if matches!(policy, RecoveryPolicy::SkipUnreachable) {
                                    emit!(TraceEvent::FlowSkipped { t: now, flow: f });
                                    retire!(f);
                                    skipped_flow_ids.push(f);
                                    delayed_paths.remove(&f); // heap entry now stale
                                } else {
                                    return Err(e);
                                }
                            }
                        }
                    }
                }
            }};
        }

        emit!(TraceEvent::RunStarted {
            flows: n as u64,
            links: self.num_links as u64,
            endpoints: self.num_eps as u64,
            batch_epsilon: self.cfg.batch_epsilon,
            capacities_bps: self.resource_capacities(),
            topo_cache_hit: self.topo_cache_hit,
        });

        apply_due_faults!(); // faults scheduled at t = 0 precede all routing
        activate_ready!();

        loop {
            // Fault events due at the current time fire before anything else.
            if fault_idx < fault_events.len() && fault_events[fault_idx].time_s <= now {
                apply_due_faults!();
                activate_ready!(); // skip-retirements may release dependents
            }

            if active_ids.is_empty() {
                // Nothing transferring: jump to the next delayed activation
                // or fault event, whichever comes first.
                purge_cancelled!();
                let t_act = match delayed.peek() {
                    None => break, // workload finished; later faults never fire
                    Some(Reverse((Time(t), _))) => *t,
                };
                if let Some(ev) = fault_events.get(fault_idx) {
                    if ev.time_s <= t_act {
                        now = now.max(ev.time_s);
                        continue; // the loop top applies the fault batch
                    }
                }
                let Reverse((Time(t), f)) = delayed.pop().expect("peeked entry");
                now = now.max(t);
                admit!(f, delayed_paths.remove(&f).expect("delayed path"));
                loop {
                    purge_cancelled!();
                    match delayed.peek() {
                        Some(Reverse((Time(t2), _))) if *t2 <= now => {
                            let Reverse((_, f2)) = delayed.pop().expect("peeked entry");
                            admit!(f2, delayed_paths.remove(&f2).expect("delayed path"));
                        }
                        _ => break,
                    }
                }
                continue;
            }

            // Cooperative cancellation: both limits are checked at the event
            // boundary, after `events` boundaries have been fully processed
            // and before the next solve starts, so a cut run is a prefix of
            // the uninterrupted one. The budget check is deterministic (the
            // event sequence is); the deadline is host-speed dependent.
            if let Some(max) = self.cfg.max_events {
                if events >= max {
                    emit!(TraceEvent::BudgetExhausted { t: now, events });
                    return Err(SimError::BudgetExhausted {
                        max_events: max,
                        events,
                        time: now,
                        delivered_bytes: bytes_accounted(dag, &remaining),
                        flows_completed: completed as u64,
                    });
                }
            }
            if let Some((start, limit)) = wall_deadline {
                if start.elapsed().as_secs_f64() >= limit {
                    emit!(TraceEvent::DeadlineExceeded { t: now, events });
                    return Err(SimError::DeadlineExceeded {
                        wall_limit_s: limit,
                        events,
                        time: now,
                        delivered_bytes: bytes_accounted(dag, &remaining),
                        flows_completed: completed as u64,
                    });
                }
            }

            events += 1;
            rates.resize(active_ids.len(), 0.0);
            let solve_start = if tracing { Some(Instant::now()) } else { None };
            if use_entries {
                solver.recompute_with(
                    self.cfg.solver_incremental,
                    self.cfg.incremental_full_threshold,
                    pool,
                );
                for (i, &e) in active_entries.iter().enumerate() {
                    rates[i] = solver.entry_rate(e);
                }
            } else {
                solver.solve(&active_paths, &mut rates);
            }
            if tracing {
                if let Some(m) = metrics.as_mut() {
                    let elapsed = solve_start.expect("set when tracing").elapsed();
                    m.record_solve(elapsed.as_secs_f64(), active_ids.len());
                    // Post-recompute utilisation probe: the most loaded
                    // resource relative to its capacity.
                    let mut load: HashMap<u32, f64> = HashMap::new();
                    for (i, path) in active_paths.iter().enumerate() {
                        for &r in path.iter() {
                            *load.entry(r).or_insert(0.0) += rates[i];
                        }
                    }
                    let peak = load
                        .iter()
                        .map(|(&r, &l)| l / solver.capacity(r))
                        .fold(0.0, f64::max);
                    m.record_utilization(peak);
                }
                let (entries_solved, full_pass) = if use_entries {
                    (solver.last_pass_entries, solver.last_pass_full)
                } else {
                    (active_ids.len() as u64, true)
                };
                emit!(TraceEvent::RateRecompute {
                    t: now,
                    flows: active_ids.clone(),
                    rates_bps: rates.clone(),
                    entries_solved,
                    full_pass,
                });
            }

            // Earliest completion among active flows.
            let mut dt = f64::INFINITY;
            for (i, &f) in active_ids.iter().enumerate() {
                let t = remaining[f as usize] / rates[i];
                if t < dt {
                    dt = t;
                }
            }
            if !dt.is_finite() {
                return Err(self.stall_error(now, &active_ids, &active_paths, &rates, &solver));
            }

            // A fault or a delayed activation may precede the earliest
            // completion; a fault at the same instant as an activation fires
            // first, so the activating flow routes around it.
            purge_cancelled!();
            let t_act = delayed.peek().map(|Reverse((Time(t), _))| *t);
            if let Some(ev) = fault_events.get(fault_idx) {
                let before_act = match t_act {
                    Some(ta) => ev.time_s <= ta,
                    None => true,
                };
                if ev.time_s < now + dt && before_act {
                    let step = ev.time_s - now;
                    self.advance(
                        step,
                        &active_ids,
                        &active_paths,
                        &rates,
                        &mut remaining,
                        &mut resource_bytes,
                    );
                    now = ev.time_s;
                    continue; // the loop top applies the fault batch
                }
            }
            if let Some(t_act) = t_act {
                if t_act < now + dt {
                    let step = t_act - now;
                    self.advance(
                        step,
                        &active_ids,
                        &active_paths,
                        &rates,
                        &mut remaining,
                        &mut resource_bytes,
                    );
                    now = t_act;
                    loop {
                        purge_cancelled!();
                        match delayed.peek() {
                            Some(Reverse((Time(t2), _))) if *t2 <= now => {
                                let Reverse((_, f2)) = delayed.pop().expect("peeked entry");
                                admit!(f2, delayed_paths.remove(&f2).expect("delayed path"));
                            }
                            _ => break,
                        }
                    }
                    continue;
                }
            }

            let cutoff = dt * (1.0 + self.cfg.batch_epsilon);
            // Identify the completion batch *before* advancing, then advance.
            let mut done_flags = vec![false; active_ids.len()];
            for (i, &f) in active_ids.iter().enumerate() {
                done_flags[i] = remaining[f as usize] / rates[i] <= cutoff;
            }
            self.advance(
                dt,
                &active_ids,
                &active_paths,
                &rates,
                &mut remaining,
                &mut resource_bytes,
            );
            now += dt;

            // Retire the completion batch (swap-remove).
            let mut i = 0;
            while i < active_ids.len() {
                if done_flags[i] {
                    emit!(TraceEvent::FlowFinished {
                        t: now,
                        flow: active_ids[i],
                    });
                    retire!(active_ids[i]);
                    active_ids.swap_remove(i);
                    active_paths.swap_remove(i);
                    rates.swap_remove(i);
                    done_flags.swap_remove(i);
                    if use_entries {
                        solver.remove_entry(active_entries[i]);
                        active_entries.swap_remove(i);
                    }
                } else {
                    i += 1;
                }
            }

            activate_ready!();
        }

        // Internal invariant, not an input error: the builder guarantees
        // acyclicity, so an incomplete run is an engine bug.
        assert_eq!(
            completed, n,
            "simulation ended with {completed} of {n} flows incomplete (cyclic deps?)"
        );

        Ok(SimReport {
            makespan_seconds: now,
            flows: n as u64,
            events,
            maxmin_iterations: solver.iterations,
            completion_times: if self.cfg.record_flow_times {
                Some(completion_times)
            } else {
                None
            },
            resource_bytes: if self.cfg.collect_link_stats {
                Some(resource_bytes)
            } else {
                None
            },
            num_links: self.num_links as u64,
            num_endpoints: self.num_eps as u64,
            skipped_flows: skipped_flow_ids.len() as u64,
            skipped_flow_ids,
            fault_events_applied,
            rate_recomputes: solver.rate_recomputes,
            flows_coalesced: solver.flows_coalesced,
            solver_threads: threads as u64,
            parallel_solves: solver.parallel_passes,
            parallel_route_batches,
            route_cache_hits: route_cache.hits,
            route_cache_evictions: route_cache.evictions,
            metrics: metrics.map(|m| {
                let mut snap = m.snapshot();
                snap.solver_threads = threads as u64;
                snap.parallel_solves = solver.parallel_passes;
                snap.topo_cache_hit = self.topo_cache_hit as u64;
                snap
            }),
        })
    }

    /// Diagnose a stalled rate allocation: name the zero-rate flows and the
    /// suspected bottleneck (smallest-capacity resource on the first
    /// stalled flow's path) so a bulk-sweep entry is debuggable without a
    /// rerun.
    fn stall_error(
        &self,
        now: f64,
        active_ids: &[u32],
        active_paths: &[Arc<[u32]>],
        rates: &[f64],
        solver: &MaxMinSolver,
    ) -> SimError {
        const MAX_REPORTED: usize = 8;
        let mut stalled = Vec::new();
        let mut resource = None;
        for (i, &f) in active_ids.iter().enumerate() {
            if rates[i] > 0.0 {
                continue;
            }
            if resource.is_none() {
                resource = active_paths[i].iter().copied().min_by(|&a, &b| {
                    solver
                        .capacity(a)
                        .partial_cmp(&solver.capacity(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            }
            if stalled.len() < MAX_REPORTED {
                stalled.push(f);
            }
        }
        SimError::Stalled {
            time: now,
            flows: stalled,
            resource,
        }
    }

    /// Advance every active flow by `dt` seconds, accounting bytes when
    /// link statistics are enabled.
    fn advance(
        &self,
        dt: f64,
        active_ids: &[u32],
        active_paths: &[Arc<[u32]>],
        rates: &[f64],
        remaining: &mut [f64],
        resource_bytes: &mut [f64],
    ) {
        if dt <= 0.0 {
            return;
        }
        for (i, &f) in active_ids.iter().enumerate() {
            remaining[f as usize] -= rates[i] * dt;
            if self.cfg.collect_link_stats {
                let bytes = rates[i] * dt / 8.0;
                for &r in active_paths[i].iter() {
                    resource_bytes[r as usize] += bytes;
                }
            }
        }
    }

    /// Materialise the resource path of a flow: injection resource, physical
    /// route links, ejection resource. Routing goes through the fault
    /// overlay so mid-run link failures are avoided; with no dynamic
    /// failures the overlay defers to the topology's own deterministic
    /// route. An unreachable destination (failed links partitioning the
    /// network) is a typed error, not a panic.
    ///
    /// Paths are interned as `Arc<[u32]>`: route-cache hits, the active
    /// set, and coalesced solver groups all share one allocation.
    fn build_path(
        &self,
        overlay: &mut FaultOverlay,
        src: u32,
        dst: u32,
        scratch: &mut Vec<LinkId>,
    ) -> Result<Arc<[u32]>, SimError> {
        scratch.clear();
        overlay
            .try_route(NodeId(src), NodeId(dst), scratch)
            .map_err(|e| SimError::Unreachable {
                src,
                dst,
                topology: e.topology,
                failed_links: e.failed_links as u64,
            })?;
        let mut path = Vec::with_capacity(scratch.len() + 2);
        path.push(self.injection_resource(src));
        path.extend(scratch.iter().map(|l| l.0));
        path.push(self.ejection_resource(dst));
        Ok(path.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::FlowDagBuilder;
    use exaflow_topo::{KAryTree, Torus};

    const GBPS: f64 = 1e9;

    fn mb(n: u64) -> u64 {
        n * 1_000_000
    }

    /// Time to push `bytes` through `bps`.
    fn xfer(bytes: u64, bps: f64) -> f64 {
        bytes as f64 * 8.0 / bps
    }

    #[test]
    fn single_flow_wire_time() {
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12);
        assert_eq!(r.flows, 1);
        assert_eq!(r.events, 1);
    }

    #[test]
    fn two_flows_same_link_halve() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - 2.0 * xfer(mb(1), 10.0 * GBPS)).abs() < 1e-9);
        assert_eq!(r.events, 1);
    }

    #[test]
    fn opposite_directions_do_not_share() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        b.add_flow(NodeId(1), NodeId(0), mb(1), &[]);
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12);
    }

    #[test]
    fn dependency_chain_serialises() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let c = b.add_flow(NodeId(1), NodeId(2), mb(1), &[a]);
        b.add_flow(NodeId(2), NodeId(3), mb(1), &[c]);
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - 3.0 * xfer(mb(1), 10.0 * GBPS)).abs() < 1e-9);
        assert_eq!(r.events, 3);
    }

    #[test]
    fn reduce_bottlenecked_by_ejection_port() {
        // The paper's explanation of the Reduce collective: all flows
        // serialise at the root's consumption port regardless of topology.
        let torus = Torus::new(&[4, 4]);
        let tree = KAryTree::new(4, 2);
        for topo in [&torus as &dyn Topology, &tree as &dyn Topology] {
            let sim = Simulator::new(topo);
            let mut b = FlowDagBuilder::new();
            for s in 1..16u32 {
                b.add_flow(NodeId(s), NodeId(0), mb(1), &[]);
            }
            let r = sim.run(&b.build()).unwrap();
            let expect = xfer(mb(15), 10.0 * GBPS);
            assert!(
                (r.makespan_seconds - expect).abs() / expect < 1e-6,
                "{}: {} vs {expect}",
                topo.name(),
                r.makespan_seconds
            );
        }
    }

    #[test]
    fn zero_byte_flows_instant() {
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), 0, &[]);
        let c = b.add_barrier(&[a]);
        b.add_flow(NodeId(2), NodeId(2), mb(5), &[c]); // self traffic: instant
        let r = sim.run(&b.build()).unwrap();
        assert_eq!(r.makespan_seconds, 0.0);
        assert_eq!(r.events, 0);
    }

    #[test]
    fn empty_dag_runs() {
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let r = sim.run(&FlowDagBuilder::new().build()).unwrap();
        assert_eq!(r.makespan_seconds, 0.0);
        assert_eq!(r.flows, 0);
    }

    #[test]
    fn completion_times_recorded() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            record_flow_times: true,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let c = b.add_flow(NodeId(1), NodeId(2), mb(2), &[a]);
        let r = sim.run(&b.build()).unwrap();
        let times = r.completion_times.as_ref().unwrap();
        let step = xfer(mb(1), 10.0 * GBPS);
        assert!((times[a.index()] - step).abs() < 1e-12);
        assert!((times[c.index()] - 3.0 * step).abs() < 1e-9);
    }

    #[test]
    fn max_min_beats_naive_serialisation() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        for i in 0..4u32 {
            b.add_flow(NodeId(2 * i), NodeId(2 * i + 1), mb(1), &[]);
        }
        let r = sim.run(&b.build()).unwrap();
        assert!((r.makespan_seconds - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_endpoint_is_typed_error() {
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(99), 1, &[]);
        let err = sim.run(&b.build()).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::EndpointOutOfRange {
                    endpoint: 99,
                    num_endpoints: 4
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn nan_latency_is_invalid_config() {
        let topo = Torus::new(&[4]);
        let cfg = SimConfig {
            per_hop_latency_s: f64::NAN,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let err = sim.run(&b.build()).unwrap_err();
        match err {
            SimError::InvalidConfig { field, value, .. } => {
                assert_eq!(field, "per_hop_latency_s");
                assert_eq!(value, "NaN");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn zero_injection_rate_is_invalid_config_not_stall() {
        // This used to stall the engine (all rates zero) and die on an
        // assert; it must now be rejected up front with the field named.
        let topo = Torus::new(&[4]);
        let cfg = SimConfig {
            injection_bps: 0.0,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let err = sim.run(&b.build()).unwrap_err();
        match err {
            SimError::InvalidConfig { field, .. } => assert_eq!(field, "injection_bps"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    /// Three independent flows with distinct sizes: three separate
    /// completion events, so a budget of 1 cuts after the first.
    fn staggered_dag() -> FlowDag {
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        b.add_flow(NodeId(2), NodeId(3), mb(2), &[]);
        b.add_flow(NodeId(4), NodeId(5), mb(3), &[]);
        b.build()
    }

    #[test]
    fn event_budget_trips_deterministically_with_progress() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            max_events: Some(1),
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let run = || sim.run(&staggered_dag()).unwrap_err();
        let err = run();
        match &err {
            SimError::BudgetExhausted {
                max_events,
                events,
                time,
                delivered_bytes,
                flows_completed,
            } => {
                assert_eq!(*max_events, 1);
                assert_eq!(*events, 1);
                // The first event retires the smallest flow; the others
                // made equal progress on their disjoint paths.
                assert_eq!(*flows_completed, 1);
                assert!(*time > 0.0);
                assert!(*delivered_bytes >= mb(1));
                assert!(*delivered_bytes < mb(6));
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // Deterministic: the same config cuts at exactly the same point.
        assert_eq!(run(), err);
        // A sufficient budget completes normally.
        let roomy = Simulator::with_config(
            &topo,
            SimConfig {
                max_events: Some(1000),
                ..SimConfig::default()
            },
        );
        assert!(roomy.run(&staggered_dag()).is_ok());
    }

    #[test]
    fn zero_event_budget_stops_before_any_work() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            max_events: Some(0),
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        match sim.run(&staggered_dag()).unwrap_err() {
            SimError::BudgetExhausted {
                events,
                time,
                flows_completed,
                delivered_bytes,
                ..
            } => {
                assert_eq!(events, 0);
                assert_eq!(time, 0.0);
                assert_eq!(flows_completed, 0);
                assert_eq!(delivered_bytes, 0);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn wall_deadline_surfaces_as_typed_error() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            // Far below the granularity of any host clock: the first
            // event-boundary check always trips.
            max_wall_s: Some(1e-12),
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        match sim.run(&staggered_dag()).unwrap_err() {
            SimError::DeadlineExceeded {
                wall_limit_s,
                events,
                flows_completed,
                ..
            } => {
                assert_eq!(wall_limit_s, 1e-12);
                assert_eq!(events, 0);
                assert_eq!(flows_completed, 0);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn budget_cut_trace_ends_terminal_and_passes_the_oracle() {
        use crate::trace::VecSink;
        use crate::trace_check::check_trace;
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            max_events: Some(1),
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut sink = VecSink::new();
        let err = sim.run_traced(&staggered_dag(), &mut sink).unwrap_err();
        assert!(matches!(err, SimError::BudgetExhausted { .. }));
        let events = sink.into_events();
        assert!(
            matches!(events.last(), Some(TraceEvent::BudgetExhausted { .. })),
            "trace must end with the terminal cut event"
        );
        let summary = check_trace(&events).unwrap();
        assert!(summary.terminated);
        assert_eq!(summary.flows_finished, 1);
    }

    #[test]
    fn invalid_max_wall_s_is_invalid_config() {
        let topo = Torus::new(&[4]);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = SimConfig {
                max_wall_s: Some(bad),
                ..SimConfig::default()
            };
            let sim = Simulator::with_config(&topo, cfg);
            let mut b = FlowDagBuilder::new();
            b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
            match sim.run(&b.build()).unwrap_err() {
                SimError::InvalidConfig { field, .. } => assert_eq!(field, "max_wall_s"),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn unset_limits_stay_out_of_serialized_config() {
        // `None` limits must not appear in JSON: pinned golden outputs
        // (scripts/golden_run_expected.json) predate these fields.
        let json = serde_json::to_string(&SimConfig::default()).unwrap();
        assert!(!json.contains("max_events"), "{json}");
        assert!(!json.contains("max_wall_s"), "{json}");
        let cfg = SimConfig {
            max_events: Some(42),
            max_wall_s: Some(1.5),
            ..SimConfig::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn negative_rate_rejected_at_deserialization() {
        let json = r#"{
            "injection_bps": -1.0,
            "ejection_bps": 1e10,
            "batch_epsilon": 1e-9,
            "record_flow_times": false,
            "cache_routes": true,
            "route_cache_cap": 1024
        }"#;
        let err = serde_json::from_str::<SimConfig>(json).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("injection_bps"), "{msg}");
    }

    #[test]
    fn partition_is_unreachable_error_not_panic() {
        use exaflow_topo::Degraded;
        // Ring 0-1-2-3; failing both directions of cables (0,1) and (2,3)
        // splits {0,3} from {1,2}, so 0 -> 1 cannot route.
        let base = Torus::new(&[4]);
        let mut cut = Vec::new();
        let net = base.network();
        for (a, b) in [(0u32, 1u32), (2, 3)] {
            cut.push(net.find_physical_link(NodeId(a), NodeId(b)).unwrap());
            cut.push(net.find_physical_link(NodeId(b), NodeId(a)).unwrap());
        }
        let degraded = Degraded::new(base, cut);
        let sim = Simulator::new(&degraded);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let err = sim.run(&b.build()).unwrap_err();
        match err {
            SimError::Unreachable {
                src,
                dst,
                failed_links,
                ..
            } => {
                assert_eq!((src, dst), (0, 1));
                assert_eq!(failed_links, 4);
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn route_cache_does_not_change_results() {
        let topo = Torus::new(&[4, 4]);
        let mut dagb = FlowDagBuilder::new();
        let mut prev: Vec<crate::FlowId> = vec![];
        for _round in 0..3 {
            let mut cur = vec![];
            for i in 0..8u32 {
                let deps: Vec<_> = prev.clone();
                cur.push(dagb.add_flow(NodeId(i), NodeId((i + 5) % 16), mb(1), &deps));
            }
            prev = cur;
        }
        let dag = dagb.build();
        let run = |cache: bool| {
            let cfg = SimConfig {
                cache_routes: cache,
                ..SimConfig::default()
            };
            Simulator::with_config(&topo, cfg)
                .run(&dag)
                .unwrap()
                .makespan_seconds
        };
        assert_eq!(run(true), run(false));
    }

    /// Regression: the cache used to silently refuse inserts once full, so
    /// a workload with more distinct pairs than `route_cache_cap` degraded
    /// to a zero hit rate for every pair admitted after the cap. The
    /// generational cache keeps the most recent pairs hot and reports the
    /// churn.
    #[test]
    fn route_cache_keeps_hitting_beyond_its_cap() {
        let topo = Torus::new(&[4, 4]);
        let mut b = FlowDagBuilder::new();
        // Round 1: eight distinct pairs, double the cap of 4. The ready
        // stack admits a batch highest-flow-first, so flows 0 and 1 carry
        // the freshest generation's pairs.
        let mut round1 = vec![];
        for i in 0..8u32 {
            round1.push(b.add_flow(NodeId(i), NodeId((i + 5) % 16), mb(1), &[]));
        }
        // Round 2: re-request the two freshest pairs. With the old
        // stop-inserting cache these were never stored and always missed.
        b.add_flow(NodeId(0), NodeId(5), mb(1), &round1);
        b.add_flow(NodeId(1), NodeId(6), mb(1), &round1);
        let dag = b.build();
        let cfg = SimConfig {
            route_cache_cap: 4,
            ..SimConfig::default()
        };
        let r = Simulator::with_config(&topo, cfg).run(&dag).unwrap();
        // half_cap = 2: inserts 0..8 rotate three times, the last two
        // rotations each retiring a full stale generation of 2.
        assert_eq!(r.route_cache_evictions, 4);
        assert_eq!(r.route_cache_hits, 2);

        // Capacity pressure must never change physics.
        let unbounded = Simulator::with_config(&topo, SimConfig::default())
            .run(&dag)
            .unwrap();
        assert_eq!(r.makespan_seconds, unbounded.makespan_seconds);
        assert_eq!(unbounded.route_cache_evictions, 0);
    }

    /// Regression: link repair used to clear the whole route cache, while
    /// link-down purged surgically. Invariant now: every cached path avoids
    /// every currently-down link, and repair only shrinks the down-set, so
    /// repair retains the cache verbatim. Retained detours stay in use for
    /// cached pairs (documented as possibly suboptimal); fresh pairs route
    /// through the repaired link immediately.
    #[test]
    fn link_repair_retains_cached_detours() {
        let topo = Torus::new(&[4]);
        // Per-hop latency makes path length observable in the makespan.
        let cfg = |cache: bool| SimConfig {
            per_hop_latency_s: 1e-6,
            cache_routes: cache,
            ..SimConfig::default()
        };
        // A fills time; B (0 -> 1) activates during the outage and caches
        // the 3-hop detour 0-3-2-1; C (0 -> 1) activates after the repair.
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(2), NodeId(3), mb(1), &[]);
        let bf = b.add_flow(NodeId(0), NodeId(1), mb(1), &[a]);
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[bf]);
        let dag = b.build();
        let step = xfer(mb(1), 10.0 * GBPS);
        let mut events = cable_events(topo.network(), 0.0, 0, 1, FaultAction::Down);
        events.extend(cable_events(
            topo.network(),
            1.5 * step,
            0,
            1,
            FaultAction::Up,
        ));
        let schedule = FaultSchedule::new(events).unwrap();

        let cached = Simulator::with_config(&topo, cfg(true))
            .run_with_faults(&dag, &schedule, RecoveryPolicy::RerouteResume)
            .unwrap();
        // C hits B's retained detour — the only cache hit in the run.
        assert_eq!(cached.route_cache_hits, 1);
        assert_eq!(cached.fault_events_applied, 4);

        let uncached = Simulator::with_config(&topo, cfg(false))
            .run_with_faults(&dag, &schedule, RecoveryPolicy::RerouteResume)
            .unwrap();
        assert_eq!(uncached.route_cache_hits, 0);
        // Same transfers; C pays 3 hops of head latency on the retained
        // detour vs 1 hop on the repaired direct route: +2 µs exactly.
        let delta = cached.makespan_seconds - uncached.makespan_seconds;
        assert!(
            (delta - 2e-6).abs() < 1e-12,
            "cached {} vs uncached {}",
            cached.makespan_seconds,
            uncached.makespan_seconds
        );
    }

    #[test]
    fn larger_batch_epsilon_reduces_events() {
        let topo = Torus::new(&[16]);
        let mut b = FlowDagBuilder::new();
        for i in 0..8u32 {
            b.add_flow(NodeId(i), NodeId(i + 8), mb(100) + i as u64, &[]);
        }
        let dag = b.build();
        let run = |eps: f64| {
            let cfg = SimConfig {
                batch_epsilon: eps,
                ..SimConfig::default()
            };
            Simulator::with_config(&topo, cfg).run(&dag).unwrap().events
        };
        assert!(run(1e-3) < run(1e-12));
    }

    #[test]
    fn per_hop_latency_adds_head_time() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            per_hop_latency_s: 1e-6,
            startup_latency_s: 5e-6,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        // 0 -> 2 is two hops.
        b.add_flow(NodeId(0), NodeId(2), mb(1), &[]);
        let r = sim.run(&b.build()).unwrap();
        let expect = 5e-6 + 2.0 * 1e-6 + xfer(mb(1), 10.0 * GBPS);
        assert!(
            (r.makespan_seconds - expect).abs() < 1e-12,
            "{} vs {expect}",
            r.makespan_seconds
        );
    }

    #[test]
    fn latency_staggers_contending_flows() {
        // Two flows share the destination but start at different times due
        // to different path lengths; both must still finish correctly.
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            per_hop_latency_s: 1e-3, // exaggerated: comparable to wire time
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]); // 1 hop: starts at 1ms
        b.add_flow(NodeId(7), NodeId(1), mb(1), &[]); // 2 hops: starts at 2ms
        let r = sim.run(&b.build()).unwrap();
        assert!(r.makespan_seconds > 2e-3);
        assert!(r.makespan_seconds < 4.5e-3);
        assert_eq!(r.flows, 2);
    }

    #[test]
    fn latency_respects_dependencies() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            startup_latency_s: 1e-3,
            record_flow_times: true,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let c = b.add_flow(NodeId(1), NodeId(2), mb(1), &[a]);
        let r = sim.run(&b.build()).unwrap();
        let times = r.completion_times.unwrap();
        let step = 1e-3 + xfer(mb(1), 10.0 * GBPS);
        assert!((times[a.index()] - step).abs() < 1e-9);
        assert!((times[c.index()] - 2.0 * step).abs() < 1e-9);
    }

    #[test]
    fn link_stats_conserve_bytes() {
        let topo = Torus::new(&[8]);
        let cfg = SimConfig {
            collect_link_stats: true,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(2), mb(1), &[]); // 2 hops + inj + ej
        b.add_flow(NodeId(4), NodeId(5), mb(2), &[]); // 1 hop + inj + ej
        let r = sim.run(&b.build()).unwrap();
        let bytes = r.resource_bytes.as_ref().unwrap();
        let total: f64 = bytes.iter().sum();
        // Flow 1 crosses 4 resources with 1 MB, flow 2 crosses 3 with 2 MB.
        let expect = (4 * mb(1) + 3 * mb(2)) as f64;
        assert!(
            (total - expect).abs() / expect < 1e-9,
            "{total} vs {expect}"
        );
        // The busiest physical link carried 2 MB.
        let hottest = r.hottest_links(1);
        assert_eq!(hottest.len(), 1);
        assert!((hottest[0].1 - mb(2) as f64).abs() < 1.0);
    }

    // ---- fault injection ----

    use crate::fault::FaultEvent;

    /// Down (or up) both directions of the physical cable `a <-> b` at `t`.
    fn cable_events(
        net: &exaflow_netgraph::Network,
        t: f64,
        a: u32,
        b: u32,
        action: FaultAction,
    ) -> Vec<FaultEvent> {
        [(a, b), (b, a)]
            .iter()
            .map(|&(s, d)| FaultEvent {
                time_s: t,
                link: net.find_physical_link(NodeId(s), NodeId(d)).unwrap().0,
                action,
            })
            .collect()
    }

    #[test]
    fn empty_schedule_reproduces_fault_free_run_exactly() {
        let topo = Torus::new(&[4, 4]);
        let cfg = SimConfig {
            record_flow_times: true,
            collect_link_stats: true,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        let mut prev = vec![];
        for round in 0..3u64 {
            let mut cur = vec![];
            for i in 0..8u32 {
                cur.push(b.add_flow(NodeId(i), NodeId((i + 5) % 16), mb(1) + round, &prev));
            }
            prev = cur;
        }
        let dag = b.build();
        let plain = sim.run(&dag).unwrap();
        for policy in RecoveryPolicy::ALL {
            let faulted = sim
                .run_with_faults(&dag, &FaultSchedule::empty(), policy)
                .unwrap();
            assert_eq!(
                serde_json::to_string(&plain).unwrap(),
                serde_json::to_string(&faulted).unwrap(),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn resume_keeps_transferred_bytes_restart_does_not() {
        // 0 -> 2 on a ring of 8 takes 0.8 ms at 10 Gbps. Cutting the first
        // hop halfway through forces a detour the long way round; with no
        // contention the rate is unchanged, so resume still finishes at
        // 0.8 ms while restart pays the first 0.4 ms again.
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(2), mb(1), &[]);
        let dag = b.build();
        let t_cut = 0.5 * xfer(mb(1), 10.0 * GBPS);
        let schedule =
            FaultSchedule::new(cable_events(topo.network(), t_cut, 0, 1, FaultAction::Down))
                .unwrap();

        let resume = sim
            .run_with_faults(&dag, &schedule, RecoveryPolicy::RerouteResume)
            .unwrap();
        assert!(
            (resume.makespan_seconds - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12,
            "{}",
            resume.makespan_seconds
        );
        assert_eq!(resume.fault_events_applied, 2);
        assert_eq!(resume.skipped_flows, 0);

        let restart = sim
            .run_with_faults(&dag, &schedule, RecoveryPolicy::RerouteRestart)
            .unwrap();
        assert!(
            (restart.makespan_seconds - 1.5 * xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12,
            "{}",
            restart.makespan_seconds
        );
    }

    #[test]
    fn abort_policy_is_typed_link_lost_error() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(2), mb(1), &[]);
        let t_cut = 0.5 * xfer(mb(1), 10.0 * GBPS);
        let schedule =
            FaultSchedule::new(cable_events(topo.network(), t_cut, 0, 1, FaultAction::Down))
                .unwrap();
        let err = sim
            .run_with_faults(&b.build(), &schedule, RecoveryPolicy::Abort)
            .unwrap_err();
        match err {
            SimError::LinkLost { time, flow, .. } => {
                assert!((time - t_cut).abs() < 1e-15);
                assert_eq!(flow, 0);
            }
            other => panic!("expected LinkLost, got {other:?}"),
        }
    }

    #[test]
    fn skip_policy_drops_unreachable_flow_and_finishes_the_rest() {
        // Ring 0-1-2-3: cutting cables (0,1) and (2,3) mid-run splits
        // {0,3} from {1,2}. Flow 0 -> 1 becomes unreachable and is dropped;
        // flow 3 -> 0 rides the surviving cable to completion.
        let topo = Torus::new(&[4]);
        let sim = Simulator::with_config(
            &topo,
            SimConfig {
                record_flow_times: true,
                ..SimConfig::default()
            },
        );
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        b.add_flow(NodeId(3), NodeId(0), mb(1), &[]);
        let dag = b.build();
        let t_cut = 0.5 * xfer(mb(1), 10.0 * GBPS);
        let mut events = cable_events(topo.network(), t_cut, 0, 1, FaultAction::Down);
        events.extend(cable_events(topo.network(), t_cut, 2, 3, FaultAction::Down));
        let schedule = FaultSchedule::new(events).unwrap();

        let r = sim
            .run_with_faults(&dag, &schedule, RecoveryPolicy::SkipUnreachable)
            .unwrap();
        assert_eq!(r.skipped_flows, 1);
        assert_eq!(r.skipped_flow_ids, vec![0]);
        assert_eq!(r.delivered_flows(), 1);
        let times = r.completion_times.as_ref().unwrap();
        assert!((times[0] - t_cut).abs() < 1e-15, "drop time recorded");
        assert!((times[1] - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12);

        // The same partition under resume is a typed unreachable error.
        let err = sim
            .run_with_faults(&dag, &schedule, RecoveryPolicy::RerouteResume)
            .unwrap_err();
        assert!(
            matches!(err, SimError::Unreachable { src: 0, dst: 1, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn skip_policy_drops_flows_that_activate_into_a_partition() {
        // Ring 0-1-2-3. Flow 0 (0 -> 1) is in flight when cables (2,3) and
        // (3,0) die, isolating node 3 without touching flow 0's path. Flow 1
        // (0 -> 3) only activates once flow 0 completes — straight into the
        // partition. The skip policy must drop it at activation time, not
        // surface a typed error reserved for the other policies.
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        let first = b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        b.add_flow(NodeId(0), NodeId(3), mb(1), &[first]);
        let dag = b.build();
        let t_cut = 0.5 * xfer(mb(1), 10.0 * GBPS);
        let mut events = cable_events(topo.network(), t_cut, 2, 3, FaultAction::Down);
        events.extend(cable_events(topo.network(), t_cut, 3, 0, FaultAction::Down));
        let schedule = FaultSchedule::new(events).unwrap();

        let r = sim
            .run_with_faults(&dag, &schedule, RecoveryPolicy::SkipUnreachable)
            .unwrap();
        assert_eq!(r.skipped_flows, 1);
        assert_eq!(r.skipped_flow_ids, vec![1]);
        assert_eq!(r.delivered_flows(), 1);
        // Makespan is flow 0's completion: the dropped dependent adds nothing.
        assert!((r.makespan_seconds - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12);

        // Resume and restart hit the partition at activation: typed error.
        for policy in [
            RecoveryPolicy::RerouteResume,
            RecoveryPolicy::RerouteRestart,
        ] {
            let err = sim.run_with_faults(&dag, &schedule, policy).unwrap_err();
            assert!(
                matches!(err, SimError::Unreachable { src: 0, dst: 3, .. }),
                "policy {policy:?}: {err:?}"
            );
        }
    }

    #[test]
    fn link_repair_restores_direct_routing_for_later_flows() {
        // A: 2 -> 3 runs first. B: 0 -> 1 and C: 3 -> 2 start when A ends.
        // Cable (0,1) dies at t=0 and is repaired at t=1e-4, long before B
        // activates: B routes directly and never contends with C (1.6 ms
        // total). Without the repair B detours 0-3-2-1, shares 3 -> 2 with
        // C at half rate, and the makespan is 2.4 ms.
        let topo = Torus::new(&[4]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        let a = b.add_flow(NodeId(2), NodeId(3), mb(1), &[]);
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[a]);
        b.add_flow(NodeId(3), NodeId(2), mb(1), &[a]);
        let dag = b.build();
        let step = xfer(mb(1), 10.0 * GBPS);

        let down = cable_events(topo.network(), 0.0, 0, 1, FaultAction::Down);
        let mut with_repair = down.clone();
        with_repair.extend(cable_events(topo.network(), 1e-4, 0, 1, FaultAction::Up));

        let repaired = sim
            .run_with_faults(
                &dag,
                &FaultSchedule::new(with_repair).unwrap(),
                RecoveryPolicy::RerouteResume,
            )
            .unwrap();
        assert!(
            (repaired.makespan_seconds - 2.0 * step).abs() < 1e-12,
            "{}",
            repaired.makespan_seconds
        );
        assert_eq!(repaired.fault_events_applied, 4);

        let detoured = sim
            .run_with_faults(
                &dag,
                &FaultSchedule::new(down).unwrap(),
                RecoveryPolicy::RerouteResume,
            )
            .unwrap();
        assert!(
            (detoured.makespan_seconds - 3.0 * step).abs() < 1e-12,
            "{}",
            detoured.makespan_seconds
        );
    }

    #[test]
    fn faults_after_completion_never_fire() {
        let topo = Torus::new(&[8]);
        let sim = Simulator::new(&topo);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let schedule =
            FaultSchedule::new(cable_events(topo.network(), 1.0, 0, 1, FaultAction::Down)).unwrap();
        let r = sim
            .run_with_faults(&b.build(), &schedule, RecoveryPolicy::Abort)
            .unwrap();
        assert_eq!(r.fault_events_applied, 0);
        assert!((r.makespan_seconds - xfer(mb(1), 10.0 * GBPS)).abs() < 1e-12);
    }

    #[test]
    fn fault_hits_latency_delayed_flow() {
        // Under a 1 ms startup latency both flows are still delayed when
        // the partition lands at 0.5 ms; the flow whose destination is cut
        // off is dropped before it ever transfers, the other proceeds.
        let topo = Torus::new(&[4]);
        let cfg = SimConfig {
            startup_latency_s: 1e-3,
            record_flow_times: true,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(3), NodeId(0), mb(1), &[]);
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let dag = b.build();
        let mut events = cable_events(topo.network(), 5e-4, 0, 1, FaultAction::Down);
        events.extend(cable_events(topo.network(), 5e-4, 2, 3, FaultAction::Down));
        let schedule = FaultSchedule::new(events).unwrap();

        let r = sim
            .run_with_faults(&dag, &schedule, RecoveryPolicy::SkipUnreachable)
            .unwrap();
        assert_eq!(r.skipped_flow_ids, vec![1]);
        let times = r.completion_times.as_ref().unwrap();
        assert!((times[1] - 5e-4).abs() < 1e-15);
        let expect = 1e-3 + xfer(mb(1), 10.0 * GBPS);
        assert!((times[0] - expect).abs() < 1e-12);
        assert!((r.makespan_seconds - expect).abs() < 1e-12);

        // Abort sees the delayed flow too.
        let err = sim
            .run_with_faults(&dag, &schedule, RecoveryPolicy::Abort)
            .unwrap_err();
        assert!(matches!(err, SimError::LinkLost { flow: 1, .. }), "{err:?}");
    }

    #[test]
    fn fault_at_time_zero_shapes_initial_routes() {
        // Cable (0,1) is already down when the flow starts: the 0 -> 1
        // transfer detours 0-3-2-1 from the outset (same wire time — the
        // fluid model charges no per-hop cost by default) and the paths
        // avoid the dead link.
        let topo = Torus::new(&[4]);
        let cfg = SimConfig {
            collect_link_stats: true,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        b.add_flow(NodeId(0), NodeId(1), mb(1), &[]);
        let schedule =
            FaultSchedule::new(cable_events(topo.network(), 0.0, 0, 1, FaultAction::Down)).unwrap();
        let r = sim
            .run_with_faults(&b.build(), &schedule, RecoveryPolicy::RerouteResume)
            .unwrap();
        assert_eq!(r.fault_events_applied, 2);
        let dead = topo
            .network()
            .find_physical_link(NodeId(0), NodeId(1))
            .unwrap();
        let bytes = r.resource_bytes.as_ref().unwrap();
        assert_eq!(bytes[dead.0 as usize], 0.0, "dead link carried traffic");
        // The detour crosses three links with the full megabyte.
        let carried: f64 = bytes[..r.num_links as usize].iter().sum();
        assert!((carried - 3.0 * mb(1) as f64).abs() < 1.0, "{carried}");
    }

    #[test]
    fn stats_and_latency_compose() {
        let topo = Torus::new(&[4, 4]);
        let cfg = SimConfig {
            collect_link_stats: true,
            per_hop_latency_s: 1e-6,
            ..SimConfig::default()
        };
        let sim = Simulator::with_config(&topo, cfg);
        let mut b = FlowDagBuilder::new();
        for i in 0..8u32 {
            b.add_flow(NodeId(i), NodeId(15 - i), mb(1), &[]);
        }
        let r = sim.run(&b.build()).unwrap();
        assert!(r.makespan_seconds > 0.0);
        let bytes = r.resource_bytes.unwrap();
        assert!(bytes.iter().sum::<f64>() > 0.0);
    }
}
