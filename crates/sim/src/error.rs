//! Typed simulation errors.
//!
//! Every input-dependent failure of the engine is a [`SimError`] value, not
//! a panic: a malformed [`SimConfig`](crate::SimConfig), a DAG referencing
//! endpoints outside the topology, a destination made unreachable by link
//! failures, or a rate allocation that cannot make progress. Each variant
//! carries enough context to diagnose the offending grid point of a bulk
//! sweep without rerunning it. Panics are reserved for internal invariant
//! violations (engine bugs), which the suite runner's `catch_unwind` net
//! still isolates per experiment.
//!
//! Offending floating-point values are carried as strings so the error
//! serializes to valid JSON even when the value is `NaN` or infinite (the
//! whole point of reporting it).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An input-dependent simulation failure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SimError {
    /// A [`SimConfig`](crate::SimConfig) field holds a value outside its
    /// domain (non-finite, zero or negative where positivity is required).
    InvalidConfig {
        /// The offending field, e.g. `injection_bps`.
        field: String,
        /// The offending value, rendered as text (may be `NaN`/`inf`).
        value: String,
        /// The violated constraint, e.g. `must be finite and > 0`.
        constraint: String,
    },
    /// The flow DAG references an endpoint the topology does not have.
    EndpointOutOfRange {
        /// Largest endpoint index the DAG references.
        endpoint: u32,
        /// Number of endpoints the topology actually has.
        num_endpoints: u64,
    },
    /// A resource was registered with a non-positive or non-finite
    /// capacity, which would stall every flow crossing it.
    InvalidCapacity {
        /// Resource index (links first, then injection, then ejection).
        resource: u32,
        /// The offending capacity, rendered as text.
        capacity: String,
    },
    /// Routing failed: the destination cannot be reached from the source
    /// (typically because injected link failures partitioned the network).
    Unreachable {
        /// Source endpoint.
        src: u32,
        /// Destination endpoint.
        dst: u32,
        /// Topology display name.
        topology: String,
        /// Failed unidirectional links at the time of routing.
        failed_links: u64,
    },
    /// A scheduled link failure interrupted an in-flight flow while the
    /// [`RecoveryPolicy::Abort`](crate::RecoveryPolicy::Abort) policy was in
    /// effect: the run stops at the first fault that touches live traffic.
    LinkLost {
        /// Simulated time at which the link went down.
        time: f64,
        /// The unidirectional link that failed.
        link: u32,
        /// A flow that was traversing (or scheduled to traverse) the link.
        flow: u32,
    },
    /// The run hit the deterministic event budget
    /// ([`SimConfig::max_events`](crate::SimConfig)) before every flow
    /// resolved. Carries progress-so-far so a runaway sweep cell becomes a
    /// diagnosable entry instead of a hang.
    BudgetExhausted {
        /// The configured event budget that was exhausted.
        max_events: u64,
        /// Events processed before the run stopped (equals `max_events`).
        events: u64,
        /// Simulated time at the cut point.
        time: f64,
        /// Bytes no longer outstanding at the cut point (delivered by
        /// finished flows plus progress on in-flight ones; skipped flows
        /// count as accounted-for).
        delivered_bytes: u64,
        /// Flows that fully completed before the budget ran out.
        flows_completed: u64,
    },
    /// The run exceeded the wall-clock deadline
    /// ([`SimConfig::max_wall_s`](crate::SimConfig)) before every flow
    /// resolved. Non-deterministic by nature (depends on host speed);
    /// suites treat it as transient and may retry.
    DeadlineExceeded {
        /// The configured wall-clock limit, in seconds.
        wall_limit_s: f64,
        /// Events processed before the run stopped.
        events: u64,
        /// Simulated time at the cut point.
        time: f64,
        /// Bytes no longer outstanding at the cut point (delivered by
        /// finished flows plus progress on in-flight ones; skipped flows
        /// count as accounted-for).
        delivered_bytes: u64,
        /// Flows that fully completed before the deadline passed.
        flows_completed: u64,
    },
    /// Active flows exist but none can make progress (all rates zero).
    /// Defensive: unreachable once capacities and configs are validated,
    /// but reported as a value rather than a panic just in case.
    Stalled {
        /// Simulated time at which progress stopped.
        time: f64,
        /// Zero-rate flow ids (truncated to the first few).
        flows: Vec<u32>,
        /// The suspected bottleneck: the smallest-capacity resource on the
        /// first stalled flow's path, if any.
        resource: Option<u32>,
    },
}

impl SimError {
    /// Shorthand for an [`SimError::InvalidConfig`] over an `f64` field.
    pub fn invalid_config(field: &str, value: f64, constraint: &str) -> Self {
        SimError::InvalidConfig {
            field: field.to_owned(),
            value: format!("{value}"),
            constraint: constraint.to_owned(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig {
                field,
                value,
                constraint,
            } => write!(f, "sim config: {field} = {value} {constraint}"),
            SimError::EndpointOutOfRange {
                endpoint,
                num_endpoints,
            } => write!(
                f,
                "DAG references endpoint {endpoint} but topology has {num_endpoints}"
            ),
            SimError::InvalidCapacity { resource, capacity } => write!(
                f,
                "resource {resource} has invalid capacity {capacity} (must be finite and > 0)"
            ),
            SimError::Unreachable {
                src,
                dst,
                topology,
                failed_links,
            } => write!(
                f,
                "{topology}: endpoint {src} cannot reach {dst} ({failed_links} failed links)"
            ),
            SimError::LinkLost { time, link, flow } => write!(
                f,
                "link {link} lost at t={time} while flow {flow} was in flight (policy: abort)"
            ),
            SimError::BudgetExhausted {
                max_events,
                events: _,
                time,
                delivered_bytes,
                flows_completed,
            } => write!(
                f,
                "event budget of {max_events} exhausted at t={time} \
                 ({flows_completed} flows completed, {delivered_bytes} bytes delivered)"
            ),
            SimError::DeadlineExceeded {
                wall_limit_s,
                events,
                time,
                delivered_bytes,
                flows_completed,
            } => write!(
                f,
                "wall-clock deadline of {wall_limit_s}s exceeded at t={time} after {events} \
                 events ({flows_completed} flows completed, {delivered_bytes} bytes delivered)"
            ),
            SimError::Stalled {
                time,
                flows,
                resource,
            } => {
                write!(f, "deadlock at t={time}: flows {flows:?} have zero rate")?;
                if let Some(r) = resource {
                    write!(f, " (bottleneck resource {r})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = SimError::invalid_config("injection_bps", f64::NAN, "must be finite and > 0");
        let s = e.to_string();
        assert!(s.contains("injection_bps"), "{s}");
        assert!(s.contains("NaN"), "{s}");
    }

    #[test]
    fn serializes_with_kind_tag_even_for_nan() {
        let e = SimError::invalid_config("batch_epsilon", f64::NAN, "must be finite and >= 0");
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"invalid_config\""), "{json}");
        assert!(json.contains("NaN"), "{json}");
        let back: SimError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn link_lost_roundtrips_and_names_the_flow() {
        let e = SimError::LinkLost {
            time: 0.25,
            link: 42,
            flow: 7,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"link_lost\""), "{json}");
        let back: SimError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        let s = e.to_string();
        assert!(s.contains("link 42"), "{s}");
        assert!(s.contains("flow 7"), "{s}");
    }

    #[test]
    fn budget_exhausted_roundtrips() {
        let e = SimError::BudgetExhausted {
            max_events: 100,
            events: 100,
            time: 0.5,
            delivered_bytes: 4096,
            flows_completed: 3,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"budget_exhausted\""), "{json}");
        let back: SimError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        let s = e.to_string();
        assert!(s.contains("budget of 100"), "{s}");
        assert!(s.contains("4096 bytes"), "{s}");
    }

    #[test]
    fn deadline_exceeded_roundtrips() {
        let e = SimError::DeadlineExceeded {
            wall_limit_s: 2.5,
            events: 17,
            time: 0.25,
            delivered_bytes: 1024,
            flows_completed: 1,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"deadline_exceeded\""), "{json}");
        let back: SimError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        let s = e.to_string();
        assert!(s.contains("2.5s"), "{s}");
        assert!(s.contains("17 events"), "{s}");
    }

    #[test]
    fn stalled_roundtrips() {
        let e = SimError::Stalled {
            time: 1.5,
            flows: vec![3, 7],
            resource: Some(12),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: SimError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert!(e.to_string().contains("bottleneck resource 12"));
    }
}
