//! Mid-run fault injection: schedules of link-down / link-up events and
//! the recovery policies deciding what happens to interrupted flows.
//!
//! **Extension beyond the paper** (its §6 flags fault tolerance as future
//! work): a [`FaultSchedule`] is a time-ordered list of [`FaultEvent`]s the
//! engine consumes alongside flow-retirement events — a link that dies
//! while flows are in flight interrupts them, and the configured
//! [`RecoveryPolicy`] decides whether the run aborts, drops the flow, or
//! reroutes it (keeping or discarding the bytes already transferred).
//!
//! Schedules are either explicit (exact events, for crafted scenarios and
//! tests) or generated deterministically from a seed: a Poisson process of
//! cable failures at a given rate over a time horizon, optionally followed
//! by repairs after a fixed delay ([`FaultScheduleSpec`]). The same seed
//! always yields the same schedule, which is what makes Monte-Carlo
//! resilience campaigns reproducible and lets different recovery policies
//! face identical fault traces.

use crate::error::SimError;
use exaflow_netgraph::{LinkId, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a fault event does to its link.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultAction {
    /// The link goes out of service.
    Down,
    /// The link returns to service (a repair).
    Up,
}

/// One link transition at a simulated time.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated time of the transition, seconds.
    pub time_s: f64,
    /// The unidirectional link that changes state.
    pub link: u32,
    /// Down or up.
    pub action: FaultAction,
}

/// A time-ordered schedule of link fault events.
///
/// Construction sorts events by time (stably, so same-time events keep
/// their given order) and rejects non-finite or negative times; link ids
/// are validated against the topology at [`FaultSchedule::validate_for`]
/// time, which the engine calls before consuming the schedule.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule with no events: simulation behaves exactly as fault-free.
    pub fn empty() -> Self {
        FaultSchedule { events: Vec::new() }
    }

    /// Build a schedule from `events`, sorting them by time.
    pub fn new(mut events: Vec<FaultEvent>) -> Result<Self, SimError> {
        for e in &events {
            if !(e.time_s.is_finite() && e.time_s >= 0.0) {
                return Err(SimError::invalid_config(
                    "fault.time_s",
                    e.time_s,
                    "must be finite and >= 0",
                ));
            }
        }
        events.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .expect("fault times are finite")
        });
        Ok(FaultSchedule { events })
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check every event's link against `net`: it must exist and be
    /// physical (NIC-virtual links never fail).
    pub fn validate_for(&self, net: &Network) -> Result<(), SimError> {
        let num_links = net.num_links();
        for e in &self.events {
            if e.link as usize >= num_links {
                return Err(SimError::InvalidConfig {
                    field: "fault.link".into(),
                    value: e.link.to_string(),
                    constraint: format!("must be < {num_links} (number of links)"),
                });
            }
            if net.link(LinkId(e.link)).is_virtual {
                return Err(SimError::InvalidConfig {
                    field: "fault.link".into(),
                    value: e.link.to_string(),
                    constraint: "must be a physical link (virtual NIC links cannot fail)".into(),
                });
            }
        }
        Ok(())
    }
}

/// What the engine does with a flow whose path just lost a link.
///
/// The policy applies uniformly to transferring flows and to flows still
/// waiting out their head latency (whose routed path is already fixed).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum RecoveryPolicy {
    /// Fail the whole run with a typed
    /// [`SimError::LinkLost`](crate::SimError::LinkLost) the moment a fault
    /// interrupts any scheduled flow. Models a system with no fault
    /// tolerance at all.
    Abort,
    /// Reroute interrupted flows over surviving links, keeping transferred
    /// bytes; a flow whose destination became unreachable is dropped and
    /// recorded (see [`SimReport::skipped_flows`](crate::SimReport)), and
    /// its dependents proceed as if it had completed. Models an
    /// application that gives up on unreachable peers.
    SkipUnreachable,
    /// Reroute interrupted flows over surviving links, keeping transferred
    /// bytes; an unreachable destination fails the run with a typed
    /// [`SimError::Unreachable`](crate::SimError::Unreachable). Models
    /// transparent network-level path migration.
    #[default]
    RerouteResume,
    /// Reroute interrupted flows but retransmit from zero — the bytes
    /// already transferred are lost. Models recovery without end-to-end
    /// checkpointing. Unreachable destinations fail the run as with
    /// [`RecoveryPolicy::RerouteResume`].
    RerouteRestart,
}

impl RecoveryPolicy {
    /// All policies, in a stable order (useful for campaign grids).
    pub const ALL: [RecoveryPolicy; 4] = [
        RecoveryPolicy::Abort,
        RecoveryPolicy::SkipUnreachable,
        RecoveryPolicy::RerouteResume,
        RecoveryPolicy::RerouteRestart,
    ];

    /// Snake-case name, matching the serialized form.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::Abort => "abort",
            RecoveryPolicy::SkipUnreachable => "skip_unreachable",
            RecoveryPolicy::RerouteResume => "reroute_resume",
            RecoveryPolicy::RerouteRestart => "reroute_restart",
        }
    }
}

/// Declarative description of a fault schedule, resolved against a
/// topology's network by [`FaultScheduleSpec::build`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "mode", rename_all = "snake_case")]
pub enum FaultScheduleSpec {
    /// Exactly these events.
    Explicit {
        /// The events (sorted at build time).
        events: Vec<FaultEvent>,
    },
    /// A seeded Poisson process of duplex-cable failures: cables fail at
    /// `rate_per_s` over `[0, horizon_s)`, both directions at once, each
    /// optionally repaired `repair_s` seconds later. `rate_per_s = 0`
    /// yields an empty schedule (bit-identical to a fault-free run).
    Random {
        /// RNG seed; the schedule is a pure function of the seed and the
        /// topology.
        seed: u64,
        /// Expected cable failures per simulated second.
        rate_per_s: f64,
        /// Failures are drawn in `[0, horizon_s)`.
        horizon_s: f64,
        /// Fixed delay after which a failed cable is repaired (both
        /// directions come back). `None` means failures are permanent.
        #[serde(default)]
        repair_s: Option<f64>,
    },
}

/// Ceiling on generated events: a runaway `rate × horizon` is a config
/// error, not an allocation storm.
const MAX_GENERATED_EVENTS: usize = 100_000;

impl FaultScheduleSpec {
    /// Resolve the spec into a concrete, validated [`FaultSchedule`] for
    /// `net`.
    pub fn build(&self, net: &Network) -> Result<FaultSchedule, SimError> {
        let schedule = match self {
            FaultScheduleSpec::Explicit { events } => FaultSchedule::new(events.clone())?,
            FaultScheduleSpec::Random {
                seed,
                rate_per_s,
                horizon_s,
                repair_s,
            } => generate_random(net, *seed, *rate_per_s, *horizon_s, *repair_s)?,
        };
        schedule.validate_for(net)?;
        Ok(schedule)
    }
}

/// Representative duplex cables of `net`: one `(forward, reverse)` pair per
/// physical cable, `src < dst`.
fn duplex_cables(net: &Network) -> Vec<(LinkId, Option<LinkId>)> {
    let mut cables = Vec::new();
    for (i, link) in net.links().iter().enumerate() {
        if link.is_virtual || link.src > link.dst {
            continue;
        }
        let reverse = net.find_physical_link(link.dst, link.src);
        cables.push((LinkId(i as u32), reverse));
    }
    cables
}

fn generate_random(
    net: &Network,
    seed: u64,
    rate_per_s: f64,
    horizon_s: f64,
    repair_s: Option<f64>,
) -> Result<FaultSchedule, SimError> {
    if !(rate_per_s.is_finite() && rate_per_s >= 0.0) {
        return Err(SimError::invalid_config(
            "fault.rate_per_s",
            rate_per_s,
            "must be finite and >= 0",
        ));
    }
    if !(horizon_s.is_finite() && horizon_s >= 0.0) {
        return Err(SimError::invalid_config(
            "fault.horizon_s",
            horizon_s,
            "must be finite and >= 0",
        ));
    }
    if let Some(r) = repair_s {
        if !(r.is_finite() && r > 0.0) {
            return Err(SimError::invalid_config(
                "fault.repair_s",
                r,
                "must be finite and > 0",
            ));
        }
    }
    let expected = rate_per_s * horizon_s;
    if expected > (MAX_GENERATED_EVENTS / 4) as f64 {
        return Err(SimError::invalid_config(
            "fault.rate_per_s",
            rate_per_s,
            "rate × horizon would generate too many fault events",
        ));
    }

    let mut events = Vec::new();
    if rate_per_s > 0.0 && horizon_s > 0.0 {
        let cables = duplex_cables(net);
        if !cables.is_empty() {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival via inverse transform; the
                // vendored RNG draws uniforms in [0, 1), so 1 - u > 0.
                let u: f64 = rng.random();
                t += -(1.0 - u).ln() / rate_per_s;
                // `t` is monotone and can only leave [0, horizon) upward
                // (ln(1-u) is finite or -inf, never NaN), so >= is a safe
                // exit condition even for t = +inf.
                if t >= horizon_s || events.len() >= MAX_GENERATED_EVENTS {
                    break;
                }
                let (fwd, rev) = cables[rng.random_range(0..cables.len())];
                let mut push = |link: LinkId, time_s: f64, action: FaultAction| {
                    events.push(FaultEvent {
                        time_s,
                        link: link.0,
                        action,
                    });
                };
                push(fwd, t, FaultAction::Down);
                if let Some(r) = rev {
                    push(r, t, FaultAction::Down);
                }
                if let Some(delay) = repair_s {
                    push(fwd, t + delay, FaultAction::Up);
                    if let Some(r) = rev {
                        push(r, t + delay, FaultAction::Up);
                    }
                }
            }
        }
    }
    FaultSchedule::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaflow_topo::{Topology, Torus};

    fn ev(time_s: f64, link: u32, action: FaultAction) -> FaultEvent {
        FaultEvent {
            time_s,
            link,
            action,
        }
    }

    #[test]
    fn schedule_sorts_events() {
        let s = FaultSchedule::new(vec![
            ev(2.0, 1, FaultAction::Up),
            ev(0.5, 0, FaultAction::Down),
            ev(1.0, 1, FaultAction::Down),
        ])
        .unwrap();
        let times: Vec<f64> = s.events().iter().map(|e| e.time_s).collect();
        assert_eq!(times, vec![0.5, 1.0, 2.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn negative_or_nan_times_rejected() {
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let err = FaultSchedule::new(vec![ev(bad, 0, FaultAction::Down)]).unwrap_err();
            assert!(
                matches!(err, SimError::InvalidConfig { ref field, .. } if field == "fault.time_s"),
                "{err:?}"
            );
        }
    }

    #[test]
    fn out_of_range_link_rejected_against_network() {
        let t = Torus::new(&[4]);
        let s = FaultSchedule::new(vec![ev(1.0, 9999, FaultAction::Down)]).unwrap();
        let err = s.validate_for(t.network()).unwrap_err();
        assert!(
            matches!(err, SimError::InvalidConfig { ref field, .. } if field == "fault.link"),
            "{err:?}"
        );
    }

    #[test]
    fn random_schedule_deterministic_in_seed() {
        let t = Torus::new(&[4, 4]);
        let spec = FaultScheduleSpec::Random {
            seed: 42,
            rate_per_s: 3.0,
            horizon_s: 5.0,
            repair_s: Some(0.5),
        };
        let a = spec.build(t.network()).unwrap();
        let b = spec.build(t.network()).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Downs and ups pair off (every failure is repaired).
        let downs = a
            .events()
            .iter()
            .filter(|e| e.action == FaultAction::Down)
            .count();
        let ups = a
            .events()
            .iter()
            .filter(|e| e.action == FaultAction::Up)
            .count();
        assert_eq!(downs, ups);
    }

    #[test]
    fn zero_rate_is_empty_schedule() {
        let t = Torus::new(&[4, 4]);
        let spec = FaultScheduleSpec::Random {
            seed: 1,
            rate_per_s: 0.0,
            horizon_s: 100.0,
            repair_s: None,
        };
        assert!(spec.build(t.network()).unwrap().is_empty());
    }

    #[test]
    fn runaway_rate_is_typed_error() {
        let t = Torus::new(&[4]);
        let spec = FaultScheduleSpec::Random {
            seed: 1,
            rate_per_s: 1e9,
            horizon_s: 1e9,
            repair_s: None,
        };
        assert!(spec.build(t.network()).is_err());
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = FaultScheduleSpec::Random {
            seed: 7,
            rate_per_s: 0.25,
            horizon_s: 10.0,
            repair_s: None,
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"mode\":\"random\""), "{json}");
        let back: FaultScheduleSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);

        let spec = FaultScheduleSpec::Explicit {
            events: vec![ev(1.5, 3, FaultAction::Down), ev(2.5, 3, FaultAction::Up)],
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"action\":\"down\""), "{json}");
        let back: FaultScheduleSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn policy_serde_is_snake_case_string() {
        for p in RecoveryPolicy::ALL {
            let json = serde_json::to_string(&p).unwrap();
            assert_eq!(json, format!("\"{}\"", p.name()));
            let back: RecoveryPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, p);
        }
    }
}
