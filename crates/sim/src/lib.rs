//! Flow-level (fluid) interconnection-network simulator.
//!
//! This crate reimplements, from scratch, the simulation model the paper
//! attributes to INRFlow: workloads are DAGs of *flows* (src endpoint, dst
//! endpoint, size in bytes, causal dependencies). At any instant the set of
//! active flows shares the network under **max-min fairness**: every flow
//! gets the largest rate such that no link (or endpoint injection/ejection
//! port) exceeds its capacity and no flow could be sped up without slowing a
//! poorer one. Time advances from flow completion to flow completion; a
//! completed flow releases its bandwidth and unblocks its dependents.
//!
//! Key design points:
//!
//! * **Resources** are the unidirectional links of the topology plus one
//!   injection and one ejection resource per endpoint (the NIC). The
//!   ejection resource is what serialises an N-to-1 Reduce at the root — the
//!   paper's explanation for Reduce being topology-insensitive.
//! * **Max-min** is computed by progressive filling with a lazy min-heap
//!   ([`maxmin`]), `O(Σ path length · log R)` per recomputation.
//! * **Incremental rate allocation** (on by default, see
//!   [`SimConfig::solver_incremental`]): between events the solver keeps a
//!   persistent flow–resource incidence and re-solves only the connected
//!   component(s) of the sharing graph that an arrival/departure/reroute
//!   touched, falling back to a full pass on fault events or near-global
//!   dirty regions. [`SimConfig::coalesce_flows`] further merges active
//!   flows with identical paths into one weighted entry. Both paths are
//!   **bit-identical** to the full per-event solve (proved by construction
//!   in [`maxmin`] and enforced by the equivalence test suites).
//! * **Batched completions** ([`engine`]): all flows finishing within a
//!   relative `epsilon` of the earliest completion are retired in one event,
//!   so symmetric workloads (collectives, stencils) advance in a handful of
//!   events per phase instead of one event per flow.
//! * **Mid-run fault injection** ([`fault`]): a [`FaultSchedule`] of
//!   link-down/link-up events is consumed alongside completion events;
//!   interrupted flows are aborted, dropped, or rerouted (resuming or
//!   restarting the transfer) per the configured [`RecoveryPolicy`].
//! * **Intra-run parallelism** ([`pool`], off at `solver_threads = 1`):
//!   a persistent [`WorkerPool`] parallelises the water-filling bottleneck
//!   scan / rate subtraction and batches route construction at activation
//!   events, partitioned statically so every thread count produces
//!   bit-identical reports and traces (see [`SimConfig::solver_threads`]).
//! * **Event tracing + metrics** ([`trace`], zero-cost when off): a traced
//!   run streams every state transition to a [`TraceSink`] and aggregates
//!   counters/histograms into [`SimReport::metrics`]; the pure
//!   [`trace_check`] oracle replays a trace and independently verifies
//!   byte conservation, capacity limits, time monotonicity, dependency
//!   order and skip-unreachability.

pub mod dag;
pub mod engine;
pub mod error;
pub mod fault;
pub mod maxmin;
pub mod pool;
pub mod report;
pub mod trace;
pub mod trace_check;

pub use dag::{FlowDag, FlowDagBuilder, FlowId, FlowSpec};
pub use engine::{SimConfig, Simulator};
pub use error::SimError;
pub use fault::{FaultAction, FaultEvent, FaultSchedule, FaultScheduleSpec, RecoveryPolicy};
pub use pool::WorkerPool;
pub use report::SimReport;
pub use trace::{
    parse_jsonl, Histogram, JsonlSink, MetricsRegistry, MetricsSnapshot, TraceEvent, TraceSink,
    VecSink,
};
pub use trace_check::{check_trace, check_trace_with_topology, TraceSummary, TraceViolation};
