//! Max-min fair rate allocation by progressive filling.
//!
//! Given a set of flows, each using a list of capacitated resources, the
//! max-min fair allocation is computed with the classic water-filling
//! algorithm: repeatedly find the resource with the smallest fair share
//! (remaining capacity divided by its number of unfrozen flows), freeze all
//! its flows at that share, subtract their rates from every other resource
//! they cross, and repeat.
//!
//! The implementation keeps the bottleneck frontier in a lazy binary heap:
//! when a resource's share changes, a new entry is pushed with a bumped
//! version and stale entries are discarded on pop. Each flow is frozen
//! exactly once, giving `O(Σ path · log R)` per allocation.
//!
//! All scratch state lives in [`MaxMinSolver`] and is reused across calls
//! (the engine recomputes rates at every completion event), with touched
//! lists to avoid `O(total resources)` clearing.

use crate::error::SimError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry: min-share ordering with lazy invalidation by version.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    share: f64,
    resource: u32,
    version: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get the smallest share first.
        other
            .share
            .partial_cmp(&self.share)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.resource.cmp(&self.resource))
    }
}

/// Reusable progressive-filling solver.
///
/// `R` resources with fixed capacities are registered at construction; each
/// [`MaxMinSolver::solve`] call computes rates for an arbitrary set of flows
/// over those resources.
#[derive(Debug)]
pub struct MaxMinSolver {
    capacity: Vec<f64>,
    // Per-resource scratch, valid only for resources in `touched`.
    remaining: Vec<f64>,
    count: Vec<u32>,
    version: Vec<u32>,
    flow_start: Vec<u32>,
    touched: Vec<u32>,
    // Resource -> flows incidence (CSR over touched resources).
    res_flow_offsets: Vec<u32>,
    res_flows: Vec<u32>,
    heap: BinaryHeap<HeapEntry>,
    /// Statistics: total freeze iterations across calls.
    pub iterations: u64,
}

impl MaxMinSolver {
    /// Create a solver over `capacities` (bits/second per resource).
    ///
    /// Every capacity must be finite and strictly positive: a zero or
    /// negative capacity would hand out a zero rate and stall every flow
    /// crossing the resource, and a NaN would poison the bottleneck heap.
    /// Rejecting them here turns that whole deadlock class into a typed
    /// error at construction time.
    pub fn new(capacities: Vec<f64>) -> Result<Self, SimError> {
        if let Some((i, &c)) = capacities
            .iter()
            .enumerate()
            .find(|&(_, &c)| !(c.is_finite() && c > 0.0))
        {
            return Err(SimError::InvalidCapacity {
                resource: i as u32,
                capacity: format!("{c}"),
            });
        }
        let r = capacities.len();
        Ok(MaxMinSolver {
            capacity: capacities,
            remaining: vec![0.0; r],
            count: vec![0; r],
            version: vec![0; r],
            flow_start: vec![0; r],
            touched: Vec::new(),
            res_flow_offsets: Vec::new(),
            res_flows: Vec::new(),
            heap: BinaryHeap::new(),
            iterations: 0,
        })
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> usize {
        self.capacity.len()
    }

    /// Registered capacity of resource `r` (bits/second).
    pub fn capacity(&self, r: u32) -> f64 {
        self.capacity[r as usize]
    }

    /// Compute the max-min fair rates for the flows whose resource paths
    /// are given in `paths`. Writes the rate of flow `i` into `rates[i]`
    /// (which must be sized by the caller).
    ///
    /// A flow with an empty path is unconstrained and gets `f64::INFINITY`.
    pub fn solve<P: AsRef<[u32]>>(&mut self, paths: &[P], rates: &mut [f64]) {
        let num_flows = paths.len();
        assert!(rates.len() >= num_flows);
        // Reset scratch for previously touched resources.
        for &r in &self.touched {
            self.count[r as usize] = 0;
            self.version[r as usize] = 0;
        }
        self.touched.clear();
        self.heap.clear();

        // Pass 1: count flows per resource.
        for path in paths.iter().take(num_flows) {
            for &r in path.as_ref() {
                let ri = r as usize;
                if self.count[ri] == 0 {
                    self.touched.push(r);
                    self.remaining[ri] = self.capacity[ri];
                }
                self.count[ri] += 1;
            }
        }

        // Build CSR incidence over touched resources.
        self.res_flow_offsets.clear();
        self.res_flow_offsets.resize(self.touched.len() + 1, 0);
        for (i, &r) in self.touched.iter().enumerate() {
            self.res_flow_offsets[i + 1] = self.res_flow_offsets[i] + self.count[r as usize];
            // flow_start doubles as the touched-index lookup for resource r.
            self.flow_start[r as usize] = i as u32;
        }
        let total = *self.res_flow_offsets.last().unwrap() as usize;
        self.res_flows.clear();
        self.res_flows.resize(total, 0);
        let mut cursor: Vec<u32> = self.res_flow_offsets[..self.touched.len()].to_vec();
        for (f, path) in paths.iter().enumerate().take(num_flows) {
            for &r in path.as_ref() {
                let ti = self.flow_start[r as usize] as usize;
                self.res_flows[cursor[ti] as usize] = f as u32;
                cursor[ti] += 1;
            }
        }

        // Initial heap: every touched resource's fair share.
        for &r in &self.touched {
            let ri = r as usize;
            self.heap.push(HeapEntry {
                share: self.remaining[ri] / self.count[ri] as f64,
                resource: r,
                version: 0,
            });
        }

        // Unconstrained flows finish instantly.
        let mut frozen = 0usize;
        for f in 0..num_flows {
            if paths[f].as_ref().is_empty() {
                rates[f] = f64::INFINITY;
                frozen += 1;
            } else {
                rates[f] = -1.0;
            }
        }

        // Progressive filling.
        while frozen < num_flows {
            let entry = match self.heap.pop() {
                Some(e) => e,
                None => break, // numerically everything frozen
            };
            let r = entry.resource as usize;
            if entry.version != self.version[r] || self.count[r] == 0 {
                continue; // stale
            }
            let share = (self.remaining[r] / self.count[r] as f64).max(0.0);
            self.iterations += 1;
            // Freeze every unfrozen flow crossing r.
            let ti = self.flow_start[r] as usize;
            let lo = self.res_flow_offsets[ti] as usize;
            let hi = self.res_flow_offsets[ti + 1] as usize;
            for idx in lo..hi {
                let f = self.res_flows[idx] as usize;
                if rates[f] >= 0.0 {
                    continue; // already frozen by an earlier bottleneck
                }
                rates[f] = share;
                frozen += 1;
                for &r2 in paths[f].as_ref() {
                    let r2i = r2 as usize;
                    self.count[r2i] -= 1;
                    self.remaining[r2i] -= share;
                    if r2i != r && self.count[r2i] > 0 {
                        self.version[r2i] += 1;
                        self.heap.push(HeapEntry {
                            share: (self.remaining[r2i] / self.count[r2i] as f64).max(0.0),
                            resource: r2,
                            version: self.version[r2i],
                        });
                    }
                }
            }
            debug_assert_eq!(self.count[r], 0, "bottleneck must fully drain");
            self.version[r] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(caps: &[f64], paths: &[&[u32]]) -> Vec<f64> {
        let mut s = MaxMinSolver::new(caps.to_vec()).unwrap();
        let mut rates = vec![0.0; paths.len()];
        s.solve(paths, &mut rates);
        rates
    }

    #[test]
    fn single_flow_gets_capacity() {
        let r = solve(&[10.0], &[&[0]]);
        assert_eq!(r, vec![10.0]);
    }

    #[test]
    fn two_flows_share_equally() {
        let r = solve(&[10.0], &[&[0], &[0]]);
        assert_eq!(r, vec![5.0, 5.0]);
    }

    #[test]
    fn classic_three_flow_example() {
        // Two links of capacity 1. Flow A uses both, flows B and C one each.
        // Max-min: A = 0.5, B = 0.5, C = 0.5... actually with B on link 0
        // and C on link 1: bottleneck share 0.5 everywhere.
        let r = solve(&[1.0, 1.0], &[&[0, 1], &[0], &[1]]);
        assert!(r.iter().all(|&x| (x - 0.5).abs() < 1e-12), "{r:?}");
    }

    #[test]
    fn asymmetric_capacities() {
        // Link 0: cap 1 shared by A,B; link 1: cap 10 used by A,C.
        // A frozen at 0.5 by link 0; C then gets 9.5.
        let r = solve(&[1.0, 10.0], &[&[0, 1], &[0], &[1]]);
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
        assert!((r[2] - 9.5).abs() < 1e-12);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let r = solve(&[1.0], &[&[], &[0]]);
        assert!(r[0].is_infinite());
        assert_eq!(r[1], 1.0);
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = MaxMinSolver::new(vec![1.0, 0.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidCapacity {
                resource: 1,
                capacity: "0".to_string(),
            }
        );
    }

    #[test]
    fn negative_and_nan_capacities_rejected() {
        assert!(matches!(
            MaxMinSolver::new(vec![-1.0]),
            Err(SimError::InvalidCapacity { resource: 0, .. })
        ));
        assert!(matches!(
            MaxMinSolver::new(vec![5.0, f64::NAN]),
            Err(SimError::InvalidCapacity { resource: 1, .. })
        ));
        assert!(matches!(
            MaxMinSolver::new(vec![f64::INFINITY]),
            Err(SimError::InvalidCapacity { resource: 0, .. })
        ));
    }

    #[test]
    fn no_flows() {
        let mut s = MaxMinSolver::new(vec![1.0; 4]).unwrap();
        let mut rates: Vec<f64> = vec![];
        s.solve(&[] as &[&[u32]], &mut rates);
    }

    #[test]
    fn rates_never_exceed_any_link() {
        // Random-ish structured case: verify feasibility.
        let caps = [3.0, 1.0, 2.0, 5.0];
        let paths: Vec<&[u32]> = vec![&[0, 1], &[1, 2], &[2, 3], &[0, 3], &[3]];
        let r = solve(&caps, &paths);
        let mut used = [0.0f64; 4];
        for (f, p) in paths.iter().enumerate() {
            for &res in *p {
                used[res as usize] += r[f];
            }
        }
        for (res, &cap) in caps.iter().enumerate() {
            assert!(used[res] <= cap + 1e-9, "resource {res} over capacity");
        }
        // Max-min property: at least one resource on each flow's path is
        // saturated (the flow cannot be increased).
        for (f, p) in paths.iter().enumerate() {
            let saturated = p
                .iter()
                .any(|&res| used[res as usize] >= caps[res as usize] - 1e-9);
            assert!(saturated, "flow {f} could be increased");
        }
    }

    #[test]
    fn solver_reusable_across_calls() {
        let mut s = MaxMinSolver::new(vec![4.0, 4.0]).unwrap();
        let mut rates = vec![0.0; 2];
        let paths1: Vec<&[u32]> = vec![&[0], &[0]];
        s.solve(&paths1, &mut rates);
        assert_eq!(rates, vec![2.0, 2.0]);
        let paths2: Vec<&[u32]> = vec![&[1], &[1]];
        s.solve(&paths2, &mut rates);
        assert_eq!(rates, vec![2.0, 2.0]);
        let paths3: Vec<&[u32]> = vec![&[0, 1]];
        s.solve(&paths3, &mut rates[..1]);
        assert_eq!(rates[0], 4.0);
        assert!(s.iterations >= 3);
    }

    #[test]
    fn many_flows_one_bottleneck() {
        let n = 1000;
        let paths: Vec<Vec<u32>> = (0..n).map(|_| vec![0u32]).collect();
        let mut s = MaxMinSolver::new(vec![1000.0]).unwrap();
        let mut rates = vec![0.0; n];
        s.solve(&paths, &mut rates);
        for &r in &rates {
            assert!((r - 1.0).abs() < 1e-9);
        }
    }
}
