//! Max-min fair rate allocation by progressive filling.
//!
//! Given a set of flows, each using a list of capacitated resources, the
//! max-min fair allocation is computed with the classic water-filling
//! algorithm: repeatedly find the resource with the smallest fair share
//! (remaining capacity divided by its number of unfrozen flows), freeze all
//! its flows at that share, subtract their rates from every other resource
//! they cross, and repeat.
//!
//! The implementation keeps the bottleneck frontier in a lazy binary heap:
//! when a resource's share changes, a new entry is pushed with a bumped
//! version and stale entries are discarded on pop. Each flow is frozen
//! exactly once, giving `O(Σ path · log R)` per allocation.
//!
//! All scratch state lives in [`MaxMinSolver`] and is reused across calls
//! (the engine recomputes rates at every completion event), with touched
//! lists to avoid `O(total resources)` clearing.
//!
//! # Incremental mode
//!
//! [`MaxMinSolver::solve`] recomputes every flow from scratch. The
//! *incremental* entry API ([`MaxMinSolver::insert_entry`],
//! [`MaxMinSolver::remove_entry`], [`MaxMinSolver::recompute`]) instead
//! keeps a persistent per-resource incidence of the active flows and, on
//! each change, re-runs water-filling only over the connected component(s)
//! of the flow–resource sharing graph that the change touched. Identical
//! paths can further be coalesced into one weighted entry.
//!
//! Both fast paths produce rates **bit-identical** to a from-scratch
//! [`MaxMinSolver::solve`] over the same flow set:
//!
//! * Water-filling decomposes over connected components: a resource's
//!   `remaining`/`count` trajectory only depends on flows of its own
//!   component, and the bottleneck heap's ordering (share, then resource
//!   id) is a total order over *valid* entries, so interleaving components
//!   in one heap or solving them separately freezes every flow at the same
//!   share.
//! * A weighted entry subtracts its share from each crossed resource once
//!   *per unit of weight* (repeated subtraction, not `share * weight`), so
//!   the floating-point trajectory matches `weight` separate flows exactly.
//!
//! The dirty region of a change is the BFS closure, over the *new* sharing
//! graph, of the resources on every inserted/removed/rerouted path since
//! the last recompute; [`MaxMinSolver::invalidate_all`] degrades the next
//! recompute to a full one (used for fault-overlay churn), as does a dirty
//! region larger than a caller-chosen fraction of the active set.
//!
//! # Parallel water-filling
//!
//! [`MaxMinSolver::recompute_with`] accepts a [`WorkerPool`]; passes large
//! enough to amortise the dispatch run a *round-based* formulation of the
//! same algorithm (see `waterfill_rounds`): each round scans all live
//! resources for the globally minimal clamped share (partitioned across
//! workers), freezes that one bottleneck exactly as the heap loop would,
//! and applies the rate subtractions sharded by resource owner. Because
//! the heap also freezes one bottleneck per valid pop — the resource with
//! the minimal current share, ties to the smallest id — and because every
//! subtraction within a round uses the *same* share value (making the
//! subtraction order across entries irrelevant: each resource receives an
//! identical count of identical f64 subtractions), the rounds produce
//! **bit-identical** rates and an identical `iterations` count at every
//! thread count, including 1.

use crate::error::SimError;
use crate::pool::{SharedSlice, WorkerPool};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Smallest pass (in entries) worth dispatching to the worker pool: below
/// this the per-round condvar handshakes dwarf the arithmetic and the
/// sequential heap wins outright. Incremental recomputes of small dirty
/// components therefore stay on the heap even when a pool is attached.
pub const PARALLEL_MIN_ENTRIES: usize = 64;

/// Heap entry: min-share ordering with lazy invalidation by version.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    share: f64,
    resource: u32,
    version: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get the smallest share first.
        other
            .share
            .partial_cmp(&self.share)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.resource.cmp(&self.resource))
    }
}

/// Reusable progressive-filling solver.
///
/// `R` resources with fixed capacities are registered at construction; each
/// [`MaxMinSolver::solve`] call computes rates for an arbitrary set of flows
/// over those resources.
#[derive(Debug)]
pub struct MaxMinSolver {
    capacity: Vec<f64>,
    // Per-resource scratch, valid only for resources in `touched`.
    remaining: Vec<f64>,
    count: Vec<u32>,
    version: Vec<u32>,
    flow_start: Vec<u32>,
    touched: Vec<u32>,
    // Resource -> flows incidence (CSR over touched resources).
    res_flow_offsets: Vec<u32>,
    res_flows: Vec<u32>,
    heap: BinaryHeap<HeapEntry>,
    /// Statistics: total freeze iterations across calls.
    pub iterations: u64,
    /// Statistics: water-filling passes executed (full or partial).
    pub rate_recomputes: u64,
    /// Statistics: full (non-component) passes among `rate_recomputes`.
    pub full_recomputes: u64,
    /// Statistics: flows absorbed into an existing coalesced entry.
    pub flows_coalesced: u64,
    /// Statistics: water-filling passes that ran on the round-based
    /// parallel path (0 without a pool or below the entry threshold).
    pub parallel_passes: u64,
    /// Entries (weighted flow groups) the most recent pass actually
    /// re-solved — the dirty-component size surfaced in trace events.
    /// Zero when the last recompute found nothing to do.
    pub last_pass_entries: u64,
    /// Whether the most recent pass covered every live entry (a full pass)
    /// rather than one dirty component.
    pub last_pass_full: bool,
    // ---- incremental entry store (see module docs) ----
    // Slot `e` is live iff `ent_path[e].is_some()`; freed slots recycle
    // through `free_ents`. A live entry represents `ent_weight[e]` flows
    // sharing one path.
    ent_path: Vec<Option<Arc<[u32]>>>,
    ent_weight: Vec<u32>,
    ent_rate: Vec<f64>,
    free_ents: Vec<u32>,
    live_entries: usize,
    /// Coalescing index: path -> entry id (only for coalesced inserts).
    by_path: HashMap<Arc<[u32]>, u32>,
    /// Persistent incidence: resource -> live entries crossing it, one
    /// occurrence per occurrence of the resource on the entry's path.
    res_entries: Vec<Vec<u32>>,
    /// Resources whose entry set changed since the last recompute.
    dirty_res: Vec<u32>,
    /// Force a full pass on the next recompute (fault churn).
    pending_full: bool,
    // Epoch-stamped BFS visit marks and component scratch.
    res_mark: Vec<u32>,
    ent_mark: Vec<u32>,
    epoch: u32,
    comp_entries: Vec<u32>,
    comp_res: Vec<u32>,
}

impl MaxMinSolver {
    /// Create a solver over `capacities` (bits/second per resource).
    ///
    /// Every capacity must be finite and strictly positive: a zero or
    /// negative capacity would hand out a zero rate and stall every flow
    /// crossing the resource, and a NaN would poison the bottleneck heap.
    /// Rejecting them here turns that whole deadlock class into a typed
    /// error at construction time.
    pub fn new(capacities: Vec<f64>) -> Result<Self, SimError> {
        if let Some((i, &c)) = capacities
            .iter()
            .enumerate()
            .find(|&(_, &c)| !(c.is_finite() && c > 0.0))
        {
            return Err(SimError::InvalidCapacity {
                resource: i as u32,
                capacity: format!("{c}"),
            });
        }
        let r = capacities.len();
        Ok(MaxMinSolver {
            capacity: capacities,
            remaining: vec![0.0; r],
            count: vec![0; r],
            version: vec![0; r],
            flow_start: vec![0; r],
            touched: Vec::new(),
            res_flow_offsets: Vec::new(),
            res_flows: Vec::new(),
            heap: BinaryHeap::new(),
            iterations: 0,
            rate_recomputes: 0,
            full_recomputes: 0,
            flows_coalesced: 0,
            parallel_passes: 0,
            last_pass_entries: 0,
            last_pass_full: false,
            ent_path: Vec::new(),
            ent_weight: Vec::new(),
            ent_rate: Vec::new(),
            free_ents: Vec::new(),
            live_entries: 0,
            by_path: HashMap::new(),
            res_entries: Vec::new(),
            dirty_res: Vec::new(),
            pending_full: false,
            res_mark: Vec::new(),
            ent_mark: Vec::new(),
            epoch: 0,
            comp_entries: Vec::new(),
            comp_res: Vec::new(),
        })
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> usize {
        self.capacity.len()
    }

    /// Registered capacity of resource `r` (bits/second).
    pub fn capacity(&self, r: u32) -> f64 {
        self.capacity[r as usize]
    }

    /// Compute the max-min fair rates for the flows whose resource paths
    /// are given in `paths`. Writes the rate of flow `i` into `rates[i]`
    /// (which must be sized by the caller).
    ///
    /// A flow with an empty path is unconstrained and gets `f64::INFINITY`.
    pub fn solve<P: AsRef<[u32]>>(&mut self, paths: &[P], rates: &mut [f64]) {
        let num_flows = paths.len();
        assert!(rates.len() >= num_flows);
        self.rate_recomputes += 1;
        self.full_recomputes += 1;
        self.last_pass_entries = num_flows as u64;
        self.last_pass_full = true;
        // Reset scratch for previously touched resources.
        for &r in &self.touched {
            self.count[r as usize] = 0;
            self.version[r as usize] = 0;
        }
        self.touched.clear();
        self.heap.clear();

        // Pass 1: count flows per resource.
        for path in paths.iter().take(num_flows) {
            for &r in path.as_ref() {
                let ri = r as usize;
                if self.count[ri] == 0 {
                    self.touched.push(r);
                    self.remaining[ri] = self.capacity[ri];
                }
                self.count[ri] += 1;
            }
        }

        // Build CSR incidence over touched resources.
        self.res_flow_offsets.clear();
        self.res_flow_offsets.resize(self.touched.len() + 1, 0);
        for (i, &r) in self.touched.iter().enumerate() {
            self.res_flow_offsets[i + 1] = self.res_flow_offsets[i] + self.count[r as usize];
            // flow_start doubles as the touched-index lookup for resource r.
            self.flow_start[r as usize] = i as u32;
        }
        let total = *self.res_flow_offsets.last().unwrap() as usize;
        self.res_flows.clear();
        self.res_flows.resize(total, 0);
        let mut cursor: Vec<u32> = self.res_flow_offsets[..self.touched.len()].to_vec();
        for (f, path) in paths.iter().enumerate().take(num_flows) {
            for &r in path.as_ref() {
                let ti = self.flow_start[r as usize] as usize;
                self.res_flows[cursor[ti] as usize] = f as u32;
                cursor[ti] += 1;
            }
        }

        // Initial heap: every touched resource's fair share.
        for &r in &self.touched {
            let ri = r as usize;
            self.heap.push(HeapEntry {
                share: self.remaining[ri] / self.count[ri] as f64,
                resource: r,
                version: 0,
            });
        }

        // Unconstrained flows finish instantly.
        let mut frozen = 0usize;
        for f in 0..num_flows {
            if paths[f].as_ref().is_empty() {
                rates[f] = f64::INFINITY;
                frozen += 1;
            } else {
                rates[f] = -1.0;
            }
        }

        // Progressive filling.
        while frozen < num_flows {
            let entry = match self.heap.pop() {
                Some(e) => e,
                None => break, // numerically everything frozen
            };
            let r = entry.resource as usize;
            if entry.version != self.version[r] || self.count[r] == 0 {
                continue; // stale
            }
            let share = (self.remaining[r] / self.count[r] as f64).max(0.0);
            self.iterations += 1;
            // Freeze every unfrozen flow crossing r.
            let ti = self.flow_start[r] as usize;
            let lo = self.res_flow_offsets[ti] as usize;
            let hi = self.res_flow_offsets[ti + 1] as usize;
            for idx in lo..hi {
                let f = self.res_flows[idx] as usize;
                if rates[f] >= 0.0 {
                    continue; // already frozen by an earlier bottleneck
                }
                rates[f] = share;
                frozen += 1;
                for &r2 in paths[f].as_ref() {
                    let r2i = r2 as usize;
                    self.count[r2i] -= 1;
                    self.remaining[r2i] -= share;
                    if r2i != r && self.count[r2i] > 0 {
                        self.version[r2i] += 1;
                        self.heap.push(HeapEntry {
                            share: (self.remaining[r2i] / self.count[r2i] as f64).max(0.0),
                            resource: r2,
                            version: self.version[r2i],
                        });
                    }
                }
            }
            debug_assert_eq!(self.count[r], 0, "bottleneck must fully drain");
            self.version[r] += 1;
        }
    }

    // ---- incremental entry API ----

    /// Lazily size the persistent incidence structures. Solvers used only
    /// through [`MaxMinSolver::solve`] never pay for them.
    fn ensure_incremental(&mut self) {
        if self.res_entries.len() != self.capacity.len() {
            self.res_entries = vec![Vec::new(); self.capacity.len()];
            self.res_mark = vec![0; self.capacity.len()];
        }
    }

    /// Register one flow crossing `path`. With `coalesce`, a flow whose
    /// path is already active joins the existing entry (weight + 1) and the
    /// same id is returned; every [`MaxMinSolver::remove_entry`] of that id
    /// sheds one unit of weight. The new rate is available from
    /// [`MaxMinSolver::entry_rate`] after the next recompute (an empty path
    /// is unconstrained and rated `INFINITY` immediately).
    pub fn insert_entry(&mut self, path: Arc<[u32]>, coalesce: bool) -> u32 {
        self.ensure_incremental();
        debug_assert!(path.iter().all(|&r| (r as usize) < self.capacity.len()));
        self.dirty_res.extend_from_slice(&path);
        if coalesce {
            if let Some(&id) = self.by_path.get(&path) {
                self.ent_weight[id as usize] += 1;
                self.flows_coalesced += 1;
                return id;
            }
        }
        let id = match self.free_ents.pop() {
            Some(i) => i,
            None => {
                self.ent_path.push(None);
                self.ent_weight.push(0);
                self.ent_rate.push(-1.0);
                self.ent_mark.push(0);
                (self.ent_path.len() - 1) as u32
            }
        };
        let ei = id as usize;
        for &r in path.iter() {
            self.res_entries[r as usize].push(id);
        }
        self.ent_weight[ei] = 1;
        self.ent_rate[ei] = if path.is_empty() { f64::INFINITY } else { -1.0 };
        self.ent_mark[ei] = 0;
        if coalesce {
            self.by_path.insert(path.clone(), id);
        }
        self.ent_path[ei] = Some(path);
        self.live_entries += 1;
        id
    }

    /// Remove one flow from entry `id` (one unit of weight); the entry
    /// itself is freed when its weight reaches zero.
    pub fn remove_entry(&mut self, id: u32) {
        let ei = id as usize;
        let path = self.ent_path[ei].clone().expect("remove of a live entry");
        debug_assert!(self.ent_weight[ei] > 0);
        self.dirty_res.extend_from_slice(&path);
        self.ent_weight[ei] -= 1;
        if self.ent_weight[ei] > 0 {
            return;
        }
        for &r in path.iter() {
            let list = &mut self.res_entries[r as usize];
            let pos = list.iter().position(|&e| e == id).expect("incidence");
            list.swap_remove(pos);
        }
        if self.by_path.get(&path) == Some(&id) {
            self.by_path.remove(&path);
        }
        self.ent_path[ei] = None;
        self.free_ents.push(id);
        self.live_entries -= 1;
    }

    /// Degrade the next [`MaxMinSolver::recompute`] to a full pass over
    /// every live entry. Coalesced groups survive (their path identity is
    /// unchanged); callers rerouting flows must `remove_entry` +
    /// `insert_entry` them individually.
    pub fn invalidate_all(&mut self) {
        self.pending_full = true;
        self.dirty_res.clear();
    }

    /// Recompute the rates of every entry affected by inserts/removals
    /// since the last call. With `incremental`, only the connected
    /// component(s) of the sharing graph reached from the changed resources
    /// are re-solved — unless the region exceeds `full_threshold` (a
    /// fraction of the live entries, `0.0..=1.0`) or
    /// [`MaxMinSolver::invalidate_all`] was called, which fall back to a
    /// full pass. Rates are bit-identical to a from-scratch
    /// [`MaxMinSolver::solve`] over the same flow multiset either way.
    pub fn recompute(&mut self, incremental: bool, full_threshold: f64) {
        self.recompute_with(incremental, full_threshold, None);
    }

    /// [`MaxMinSolver::recompute`] with an optional worker pool: passes
    /// whose entry count reaches the parallel threshold run the
    /// round-based parallel water-fill (see the module docs), which is
    /// bit-identical to the sequential heap at every thread count.
    pub fn recompute_with(
        &mut self,
        incremental: bool,
        full_threshold: f64,
        pool: Option<&WorkerPool>,
    ) {
        self.ensure_incremental();
        self.last_pass_entries = 0;
        self.last_pass_full = false;
        if self.pending_full || !incremental {
            self.pending_full = false;
            self.dirty_res.clear();
            self.collect_all_live();
            if !self.comp_entries.is_empty() {
                self.full_recomputes += 1;
                self.last_pass_full = true;
                self.waterfill(pool);
            }
            return;
        }
        if self.dirty_res.is_empty() {
            return; // no change: every entry rate is still current
        }
        // BFS closure of the dirty resources over the sharing graph:
        // resources -> entries crossing them -> those entries' resources.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.res_mark.iter_mut().for_each(|m| *m = 0);
            self.ent_mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        self.comp_entries.clear();
        self.comp_res.clear();
        // Past this many entries the dirty region is no cheaper than a
        // full pass — stop expanding the closure as soon as it is crossed
        // instead of walking the rest of a (possibly giant) component.
        let limit = (full_threshold * self.live_entries as f64) as usize;
        let mut oversized = false;
        {
            let MaxMinSolver {
                res_entries,
                ent_path,
                res_mark,
                ent_mark,
                dirty_res,
                comp_entries,
                comp_res,
                ..
            } = self;
            for &r in dirty_res.iter() {
                let ri = r as usize;
                if res_mark[ri] != epoch {
                    res_mark[ri] = epoch;
                    comp_res.push(r);
                }
            }
            dirty_res.clear();
            let mut cur = 0;
            while cur < comp_res.len() && !oversized {
                let r = comp_res[cur] as usize;
                cur += 1;
                for &e in &res_entries[r] {
                    let ei = e as usize;
                    if ent_mark[ei] == epoch {
                        continue;
                    }
                    ent_mark[ei] = epoch;
                    comp_entries.push(e);
                    if comp_entries.len() > limit {
                        oversized = true;
                        break;
                    }
                    for &r2 in ent_path[ei].as_ref().expect("live entry").iter() {
                        let r2i = r2 as usize;
                        if res_mark[r2i] != epoch {
                            res_mark[r2i] = epoch;
                            comp_res.push(r2);
                        }
                    }
                }
            }
        }
        if self.comp_entries.is_empty() {
            return; // pure departures: nothing left in the dirty region
        }
        if oversized {
            self.collect_all_live();
            self.full_recomputes += 1;
            self.last_pass_full = true;
        }
        self.waterfill(pool);
    }

    /// Fill `comp_entries` with every live entry (full-pass work list).
    fn collect_all_live(&mut self) {
        self.comp_entries.clear();
        for (e, p) in self.ent_path.iter().enumerate() {
            if p.is_some() {
                self.comp_entries.push(e as u32);
            }
        }
    }

    /// Water-fill the entries listed in `comp_entries`, writing their
    /// rates. Mirrors [`MaxMinSolver::solve`] exactly, using the persistent
    /// `res_entries` incidence instead of a per-call CSR; weighted entries
    /// subtract their share once per unit of weight so the floating-point
    /// trajectory matches that many separate flows bit-for-bit.
    ///
    /// With a multi-thread `pool` and at least [`PARALLEL_MIN_ENTRIES`]
    /// entries, the pass runs the round-based parallel formulation
    /// ([`MaxMinSolver::waterfill_rounds`]) instead of the heap loop; both
    /// produce bit-identical rates and iteration counts.
    fn waterfill(&mut self, pool: Option<&WorkerPool>) {
        self.rate_recomputes += 1;
        let ids = std::mem::take(&mut self.comp_entries);
        self.last_pass_entries = ids.len() as u64;
        // Reset scratch for previously touched resources (shared with
        // `solve`, so the two APIs can interleave on one solver).
        for &r in &self.touched {
            self.count[r as usize] = 0;
            self.version[r as usize] = 0;
        }
        self.touched.clear();
        self.heap.clear();

        // Pass 1: weighted flow counts per resource.
        let mut total_weight = 0u64;
        let mut frozen = 0u64;
        for &e in &ids {
            let ei = e as usize;
            let w = self.ent_weight[ei];
            total_weight += w as u64;
            let path = self.ent_path[ei].clone().expect("live entry");
            if path.is_empty() {
                self.ent_rate[ei] = f64::INFINITY;
                frozen += w as u64;
                continue;
            }
            self.ent_rate[ei] = -1.0;
            for &r in path.iter() {
                let ri = r as usize;
                if self.count[ri] == 0 {
                    self.touched.push(r);
                    self.remaining[ri] = self.capacity[ri];
                }
                self.count[ri] += w;
            }
        }

        if let Some(pool) = pool {
            if pool.threads() > 1 && ids.len() >= PARALLEL_MIN_ENTRIES {
                self.parallel_passes += 1;
                self.waterfill_rounds(pool, total_weight, frozen);
                self.comp_entries = ids;
                return;
            }
        }

        // Initial heap: every touched resource's fair share.
        for &r in &self.touched {
            let ri = r as usize;
            self.heap.push(HeapEntry {
                share: self.remaining[ri] / self.count[ri] as f64,
                resource: r,
                version: 0,
            });
        }

        // Progressive filling over the component's entries. Resources in
        // `touched` only host entries from `ids` (BFS closure), so the
        // freeze loop never sees a stale outside rate.
        while frozen < total_weight {
            let entry = match self.heap.pop() {
                Some(e) => e,
                None => break, // numerically everything frozen
            };
            let r = entry.resource as usize;
            if entry.version != self.version[r] || self.count[r] == 0 {
                continue; // stale
            }
            let share = (self.remaining[r] / self.count[r] as f64).max(0.0);
            self.iterations += 1;
            for k in 0..self.res_entries[r].len() {
                let e = self.res_entries[r][k];
                let ei = e as usize;
                if self.ent_rate[ei] >= 0.0 {
                    continue; // already frozen by an earlier bottleneck
                }
                self.ent_rate[ei] = share;
                let w = self.ent_weight[ei];
                frozen += w as u64;
                let path = self.ent_path[ei].clone().expect("live entry");
                for &r2 in path.iter() {
                    let r2i = r2 as usize;
                    self.count[r2i] -= w;
                    for _ in 0..w {
                        self.remaining[r2i] -= share;
                    }
                    if r2i != r && self.count[r2i] > 0 {
                        self.version[r2i] += 1;
                        self.heap.push(HeapEntry {
                            share: (self.remaining[r2i] / self.count[r2i] as f64).max(0.0),
                            resource: r2,
                            version: self.version[r2i],
                        });
                    }
                }
            }
            debug_assert_eq!(self.count[r], 0, "bottleneck must fully drain");
            self.version[r] += 1;
        }
        self.comp_entries = ids;
    }

    /// Round-based parallel water-fill over the pass the caller already
    /// counted into `touched`/`remaining`/`count`. One round freezes
    /// exactly one bottleneck — the live resource with the minimal clamped
    /// share, ties to the smallest id — which is precisely what one valid
    /// heap pop of the sequential path does, so rates, `remaining`
    /// trajectories, and the `iterations` count are bit-identical at every
    /// thread count (module docs, "Parallel water-filling").
    fn waterfill_rounds(&mut self, pool: &WorkerPool, total_weight: u64, mut frozen: u64) {
        let nthreads = pool.threads();
        let MaxMinSolver {
            remaining,
            count,
            flow_start,
            touched,
            iterations,
            ent_path,
            ent_weight,
            ent_rate,
            res_entries,
            ..
        } = self;
        // `flow_start` doubles as the touched-index lookup (as in `solve`);
        // a resource's owning worker is its touched index mod the thread
        // count, so ownership is deterministic and covers every resource
        // this pass can touch.
        for (i, &r) in touched.iter().enumerate() {
            flow_start[r as usize] = i as u32;
        }
        // Per-worker live-resource worklists (static split of the
        // deterministic touched order); workers prune drained resources so
        // the scan stays proportional to the live set.
        let mut live: Vec<Vec<u32>> = vec![Vec::new(); nthreads];
        for (i, &r) in touched.iter().enumerate() {
            live[i % nthreads].push(r);
        }
        let mut mins: Vec<(f64, u32)> = vec![(f64::INFINITY, u32::MAX); nthreads];
        let mut round: Vec<u32> = Vec::new();

        while frozen < total_weight {
            // Phase 1: every worker scans (and prunes) its own live list
            // for the locally minimal (share, id). Reads only.
            {
                let live_slots = SharedSlice::new(&mut live[..]);
                let min_slots = SharedSlice::new(&mut mins[..]);
                let remaining: &[f64] = remaining;
                let count: &[u32] = count;
                pool.run(|w| {
                    // SAFETY: slot `w` belongs to this worker alone.
                    let list = unsafe { live_slots.get_mut(w) };
                    let mut best = (f64::INFINITY, u32::MAX);
                    list.retain(|&r| {
                        let ri = r as usize;
                        if count[ri] == 0 {
                            return false;
                        }
                        let share = (remaining[ri] / count[ri] as f64).max(0.0);
                        if share < best.0 || (share == best.0 && r < best.1) {
                            best = (share, r);
                        }
                        true
                    });
                    unsafe { *min_slots.get_mut(w) = best };
                });
            }
            let (mut share, mut bottleneck) = (f64::INFINITY, u32::MAX);
            for &(s, r) in &mins {
                if s < share || (s == share && r < bottleneck) {
                    share = s;
                    bottleneck = r;
                }
            }
            if bottleneck == u32::MAX {
                break; // numerically everything frozen
            }
            *iterations += 1;

            // Phase 2 (coordinator): freeze every unfrozen entry crossing
            // the bottleneck, in incidence order — the order the heap's
            // freeze loop uses.
            round.clear();
            for &e in &res_entries[bottleneck as usize] {
                let ei = e as usize;
                if ent_rate[ei] >= 0.0 {
                    continue; // already frozen by an earlier bottleneck
                }
                ent_rate[ei] = share;
                frozen += ent_weight[ei] as u64;
                round.push(e);
            }

            // Phase 3: subtract the frozen rates, sharded by resource
            // owner. Every subtraction this round uses the same `share`,
            // so each resource receives an identical sequence of f64
            // operations regardless of how entries interleave across
            // workers — and each owner still walks `round` in order.
            {
                let remaining = SharedSlice::new(&mut remaining[..]);
                let count = SharedSlice::new(&mut count[..]);
                let round: &[u32] = &round;
                let flow_start: &[u32] = flow_start;
                let ent_path: &[Option<Arc<[u32]>>] = ent_path;
                let ent_weight: &[u32] = ent_weight;
                pool.run(|worker| {
                    for &e in round {
                        let ei = e as usize;
                        let w = ent_weight[ei];
                        let path = ent_path[ei].as_ref().expect("live entry");
                        for &r2 in path.iter() {
                            let r2i = r2 as usize;
                            if flow_start[r2i] as usize % nthreads != worker {
                                continue;
                            }
                            // SAFETY: resource r2 has exactly one owning
                            // worker, so these writes never race.
                            unsafe {
                                *count.get_mut(r2i) -= w;
                                let rem = remaining.get_mut(r2i);
                                for _ in 0..w {
                                    *rem -= share;
                                }
                            }
                        }
                    }
                });
            }
            debug_assert_eq!(count[bottleneck as usize], 0, "bottleneck must fully drain");
        }
    }

    /// The rate of entry `id` as of the last recompute (bits/second). For
    /// a coalesced entry this is the rate of *each* member flow.
    #[inline]
    pub fn entry_rate(&self, id: u32) -> f64 {
        self.ent_rate[id as usize]
    }

    /// Number of flows currently represented by entry `id`.
    pub fn entry_weight(&self, id: u32) -> u32 {
        self.ent_weight[id as usize]
    }

    /// Number of live (distinct-path) entries.
    pub fn live_entries(&self) -> usize {
        self.live_entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* for structured-random path sets.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// The parallel round-based pass must match the sequential heap
    /// bit-for-bit — rates and iteration counts — on an entangled pass of
    /// weighted entries at several thread counts.
    #[test]
    fn parallel_waterfill_is_bit_identical_to_the_heap() {
        let caps: Vec<f64> = (0..96).map(|i| 1e9 + i as f64 * 3.7e7).collect();
        let mut paths: Vec<Vec<u32>> = Vec::new();
        let mut st = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..(PARALLEL_MIN_ENTRIES * 3) {
            let len = 1 + (xorshift(&mut st) % 4) as usize;
            let mut p: Vec<u32> = (0..len)
                .map(|_| (xorshift(&mut st) % caps.len() as u64) as u32)
                .collect();
            p.dedup();
            paths.push(p);
        }
        // Duplicate a slice of the paths so coalesced weights > 1 exist.
        for i in 0..40 {
            let p = paths[i * 3].clone();
            paths.push(p);
        }

        let mut seq = MaxMinSolver::new(caps.clone()).unwrap();
        let seq_ids: Vec<u32> = paths
            .iter()
            .map(|p| seq.insert_entry(Arc::from(p.as_slice()), true))
            .collect();
        seq.recompute(true, 0.5);
        assert_eq!(seq.parallel_passes, 0);

        for threads in [2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let mut par = MaxMinSolver::new(caps.clone()).unwrap();
            let par_ids: Vec<u32> = paths
                .iter()
                .map(|p| par.insert_entry(Arc::from(p.as_slice()), true))
                .collect();
            par.recompute_with(true, 0.5, Some(&pool));
            assert_eq!(par.parallel_passes, 1, "threads={threads}");
            assert_eq!(par.iterations, seq.iterations, "threads={threads}");
            for (s, p) in seq_ids.iter().zip(&par_ids) {
                assert_eq!(
                    seq.entry_rate(*s).to_bits(),
                    par.entry_rate(*p).to_bits(),
                    "threads={threads}"
                );
            }
        }
    }

    /// Below the entry threshold a pooled recompute must fall back to the
    /// sequential heap (no dispatch overhead for small dirty components).
    #[test]
    fn small_passes_stay_sequential_even_with_a_pool() {
        let pool = WorkerPool::new(4);
        let mut s = MaxMinSolver::new(vec![1e9; 8]).unwrap();
        for i in 0..4u32 {
            s.insert_entry(Arc::from([i].as_slice()), true);
        }
        s.recompute_with(true, 0.5, Some(&pool));
        assert_eq!(s.parallel_passes, 0);
        assert!((s.entry_rate(0) - 1e9).abs() < 1.0);
    }

    fn solve(caps: &[f64], paths: &[&[u32]]) -> Vec<f64> {
        let mut s = MaxMinSolver::new(caps.to_vec()).unwrap();
        let mut rates = vec![0.0; paths.len()];
        s.solve(paths, &mut rates);
        rates
    }

    #[test]
    fn single_flow_gets_capacity() {
        let r = solve(&[10.0], &[&[0]]);
        assert_eq!(r, vec![10.0]);
    }

    #[test]
    fn two_flows_share_equally() {
        let r = solve(&[10.0], &[&[0], &[0]]);
        assert_eq!(r, vec![5.0, 5.0]);
    }

    #[test]
    fn classic_three_flow_example() {
        // Two links of capacity 1. Flow A uses both, flows B and C one each.
        // Max-min: A = 0.5, B = 0.5, C = 0.5... actually with B on link 0
        // and C on link 1: bottleneck share 0.5 everywhere.
        let r = solve(&[1.0, 1.0], &[&[0, 1], &[0], &[1]]);
        assert!(r.iter().all(|&x| (x - 0.5).abs() < 1e-12), "{r:?}");
    }

    #[test]
    fn asymmetric_capacities() {
        // Link 0: cap 1 shared by A,B; link 1: cap 10 used by A,C.
        // A frozen at 0.5 by link 0; C then gets 9.5.
        let r = solve(&[1.0, 10.0], &[&[0, 1], &[0], &[1]]);
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
        assert!((r[2] - 9.5).abs() < 1e-12);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let r = solve(&[1.0], &[&[], &[0]]);
        assert!(r[0].is_infinite());
        assert_eq!(r[1], 1.0);
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = MaxMinSolver::new(vec![1.0, 0.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidCapacity {
                resource: 1,
                capacity: "0".to_string(),
            }
        );
    }

    #[test]
    fn negative_and_nan_capacities_rejected() {
        assert!(matches!(
            MaxMinSolver::new(vec![-1.0]),
            Err(SimError::InvalidCapacity { resource: 0, .. })
        ));
        assert!(matches!(
            MaxMinSolver::new(vec![5.0, f64::NAN]),
            Err(SimError::InvalidCapacity { resource: 1, .. })
        ));
        assert!(matches!(
            MaxMinSolver::new(vec![f64::INFINITY]),
            Err(SimError::InvalidCapacity { resource: 0, .. })
        ));
    }

    #[test]
    fn no_flows() {
        let mut s = MaxMinSolver::new(vec![1.0; 4]).unwrap();
        let mut rates: Vec<f64> = vec![];
        s.solve(&[] as &[&[u32]], &mut rates);
    }

    #[test]
    fn rates_never_exceed_any_link() {
        // Random-ish structured case: verify feasibility.
        let caps = [3.0, 1.0, 2.0, 5.0];
        let paths: Vec<&[u32]> = vec![&[0, 1], &[1, 2], &[2, 3], &[0, 3], &[3]];
        let r = solve(&caps, &paths);
        let mut used = [0.0f64; 4];
        for (f, p) in paths.iter().enumerate() {
            for &res in *p {
                used[res as usize] += r[f];
            }
        }
        for (res, &cap) in caps.iter().enumerate() {
            assert!(used[res] <= cap + 1e-9, "resource {res} over capacity");
        }
        // Max-min property: at least one resource on each flow's path is
        // saturated (the flow cannot be increased).
        for (f, p) in paths.iter().enumerate() {
            let saturated = p
                .iter()
                .any(|&res| used[res as usize] >= caps[res as usize] - 1e-9);
            assert!(saturated, "flow {f} could be increased");
        }
    }

    #[test]
    fn solver_reusable_across_calls() {
        let mut s = MaxMinSolver::new(vec![4.0, 4.0]).unwrap();
        let mut rates = vec![0.0; 2];
        let paths1: Vec<&[u32]> = vec![&[0], &[0]];
        s.solve(&paths1, &mut rates);
        assert_eq!(rates, vec![2.0, 2.0]);
        let paths2: Vec<&[u32]> = vec![&[1], &[1]];
        s.solve(&paths2, &mut rates);
        assert_eq!(rates, vec![2.0, 2.0]);
        let paths3: Vec<&[u32]> = vec![&[0, 1]];
        s.solve(&paths3, &mut rates[..1]);
        assert_eq!(rates[0], 4.0);
        assert!(s.iterations >= 3);
    }

    #[test]
    fn many_flows_one_bottleneck() {
        let n = 1000;
        let paths: Vec<Vec<u32>> = (0..n).map(|_| vec![0u32]).collect();
        let mut s = MaxMinSolver::new(vec![1000.0]).unwrap();
        let mut rates = vec![0.0; n];
        s.solve(&paths, &mut rates);
        for &r in &rates {
            assert!((r - 1.0).abs() < 1e-9);
        }
    }
}
