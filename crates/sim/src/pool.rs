//! Persistent worker pool for intra-run parallelism.
//!
//! One simulation run owns at most one [`WorkerPool`]; the engine and the
//! rate solver dispatch short data-parallel phases (bottleneck scans, rate
//! subtraction shards, route-construction batches) onto it. The pool is
//! deliberately minimal — the same vendored-deps-only approach as the
//! suite-level `scoped_map` pool, with two differences demanded by the hot
//! path: the threads persist across phases (a solver pass runs thousands
//! of phases; spawning per phase would dwarf the work), and the caller
//! participates as worker 0 (so `threads = 1` degenerates to a plain
//! function call with no synchronisation at all).
//!
//! Determinism contract: the pool only *schedules* work; every phase the
//! engine dispatches partitions its indices statically by worker id, so
//! the set of writes each worker performs — and therefore the result — is
//! independent of execution timing. See `maxmin::waterfill_rounds` for the
//! bit-identity argument.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased borrow of the phase closure. The coordinator keeps the
/// closure alive on its stack until every worker has finished the phase
/// (it blocks on `done_cv`), so the raw pointer never dangles.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointee is a `Fn(usize) + Sync` closure owned by the
// coordinator's stack frame, which outlives the phase (see `run`).
unsafe impl Send for Job {}

struct State {
    /// Bumped once per phase; workers run each epoch's job exactly once.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current phase.
    remaining: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for the next phase (or shutdown).
    work_cv: Condvar,
    /// The coordinator waits here for phase completion.
    done_cv: Condvar,
}

/// A fixed-size pool of `threads - 1` persistent workers plus the calling
/// thread. `threads <= 1` spawns nothing and runs phases inline.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Create a pool that executes phases on `threads` threads total
    /// (including the caller). Clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("exaflow-solver-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawn solver worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total threads participating in each phase (callers partition work
    /// by `0..threads()`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run one phase: `f(worker)` is invoked exactly once for every worker
    /// id in `0..threads()`, concurrently; the call returns only after all
    /// invocations finish. The caller runs worker 0. A panic in any
    /// invocation propagates to the caller (after the phase drains, so no
    /// worker is left holding a dangling job).
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        if self.threads <= 1 {
            f(0);
            return;
        }
        unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), worker: usize) {
            let f = unsafe { &*(data as *const F) };
            f(worker);
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.remaining == 0 && st.job.is_none());
            st.job = Some(Job {
                data: &f as *const F as *const (),
                call: trampoline::<F>,
            });
            st.remaining = self.threads - 1;
            st.epoch += 1;
            self.shared.work_cv.notify_all();
        }
        let own = catch_unwind(AssertUnwindSafe(|| f(0)));
        let worker_panicked = {
            let mut st = self.shared.state.lock().unwrap();
            while st.remaining > 0 {
                st = self.shared.done_cv.wait(st).unwrap();
            }
            st.job = None;
            std::mem::take(&mut st.panicked)
        };
        match own {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) if worker_panicked => panic!("worker thread panicked during a pool phase"),
            Ok(()) => {}
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("a new epoch always carries a job");
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.data, index) })).is_ok();
        let mut st = shared.state.lock().unwrap();
        if !ok {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// Shared mutable slice for pool phases whose writes are disjoint by
/// construction: each index is touched by exactly one worker during a
/// phase (per-worker slots, or resources partitioned by owner).
pub(crate) struct SharedSlice<T> {
    ptr: *mut T,
    #[cfg(debug_assertions)]
    len: usize,
}

// SAFETY: access discipline is delegated to the (unsafe) accessors; the
// wrapper itself only ships the pointer across worker threads.
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    pub(crate) fn new(slice: &mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            #[cfg(debug_assertions)]
            len: slice.len(),
        }
    }

    /// # Safety
    /// `i` must be in bounds and no other worker may access index `i`
    /// during the current phase.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Resolve a configured thread count: `0` means "auto" — the
/// `EXAFLOW_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]. Always at least 1.
pub fn resolve_threads(requested: usize) -> usize {
    if requested >= 1 {
        return requested;
    }
    if let Some(n) = std::env::var("EXAFLOW_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_each_phase_exactly_once() {
        let pool = WorkerPool::new(4);
        for _ in 0..100 {
            let mut slots = vec![0u32; 4];
            let shared = SharedSlice::new(&mut slots);
            pool.run(|w| unsafe { *shared.get_mut(w) += 1 });
            assert_eq!(slots, vec![1; 4]);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.run(|w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn borrowed_state_survives_phases() {
        let pool = WorkerPool::new(3);
        let mut totals = vec![0u64; 3];
        let data: Vec<u64> = (0..999).collect();
        {
            let shared = SharedSlice::new(&mut totals);
            let data = &data;
            pool.run(|w| {
                let sum: u64 = data.iter().skip(w).step_by(3).sum();
                unsafe { *shared.get_mut(w) = sum };
            });
        }
        assert_eq!(totals.iter().sum::<u64>(), 999 * 998 / 2);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The pool must survive a panicked phase and stay usable.
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1);
    }
}
