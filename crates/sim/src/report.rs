//! Simulation results.

use crate::trace::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Result of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Workload completion time in seconds (the paper's "execution time").
    pub makespan_seconds: f64,
    /// Number of flows simulated.
    pub flows: u64,
    /// Number of completion events (rate recomputations). With batching,
    /// this is far below `flows` for symmetric workloads.
    pub events: u64,
    /// Total progressive-filling freeze iterations across all events.
    pub maxmin_iterations: u64,
    /// Per-flow completion times (seconds), when requested via
    /// [`crate::SimConfig::record_flow_times`].
    pub completion_times: Option<Vec<f64>>,
    /// Bytes carried per resource (all links first, then per-endpoint
    /// injection ports, then ejection ports), when requested via
    /// [`crate::SimConfig::collect_link_stats`].
    pub resource_bytes: Option<Vec<f64>>,
    /// Number of links of the simulated topology (layout key for
    /// `resource_bytes`).
    pub num_links: u64,
    /// Number of endpoints of the simulated topology.
    pub num_endpoints: u64,
    /// Flows dropped by the `skip_unreachable` recovery policy because a
    /// mid-run fault made their destination unreachable. Zero for fault-free
    /// runs.
    #[serde(default)]
    pub skipped_flows: u64,
    /// Ids of the dropped flows (their `completion_times` entries record the
    /// drop time, not a delivery).
    #[serde(default)]
    pub skipped_flow_ids: Vec<u32>,
    /// Link-down/link-up events from the fault schedule that actually fired
    /// before the workload completed.
    #[serde(default)]
    pub fault_events_applied: u64,
    /// Water-filling passes the solver executed (full or component-local).
    /// With the incremental solver this tracks `events` but each pass only
    /// covers the dirty component; effort metric, not physics.
    #[serde(default)]
    pub rate_recomputes: u64,
    /// Flows absorbed into an existing identical-path solver entry by
    /// [`crate::SimConfig::coalesce_flows`]. Zero with coalescing off.
    #[serde(default)]
    pub flows_coalesced: u64,
    /// Worker threads the run used for its parallel phases (resolved from
    /// [`crate::SimConfig::solver_threads`]; `1` means the pure sequential
    /// path). Effort metadata, not physics: reports are bit-identical
    /// across thread counts once the parallelism counters are zeroed.
    #[serde(default)]
    pub solver_threads: u64,
    /// Water-filling passes that ran on the round-based parallel path
    /// (0 at one thread or when every pass stayed below the dispatch
    /// threshold).
    #[serde(default)]
    pub parallel_solves: u64,
    /// Route-construction batches dispatched to the worker pool at
    /// activation events.
    #[serde(default)]
    pub parallel_route_batches: u64,
    /// Activation-time route-cache hits. Identical at every thread count:
    /// the admission loop owns the cache trajectory.
    #[serde(default)]
    pub route_cache_hits: u64,
    /// Cached routes dropped by the cache's generational eviction (never
    /// counts fault purges). Non-zero means the workload's distinct pair
    /// count exceeded [`crate::SimConfig::route_cache_cap`].
    #[serde(default)]
    pub route_cache_evictions: u64,
    /// Counters and histograms collected when tracing is enabled (see
    /// [`crate::SimConfig::trace`] and [`crate::trace`]); `None` — and the
    /// report bit-identical to pre-tracing builds — otherwise. Contains
    /// solver wall-clock timings, so traced reports are not bit-comparable
    /// across reruns.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsSnapshot>,
}

impl SimReport {
    /// Flows actually delivered to their destination (total minus skipped).
    pub fn delivered_flows(&self) -> u64 {
        self.flows - self.skipped_flows
    }

    /// Average events per flow — a measure of how much completion batching
    /// compressed the event loop.
    pub fn events_per_flow(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.events as f64 / self.flows as f64
        }
    }

    /// The `n` busiest *links* (excludes NIC injection/ejection resources)
    /// as `(link index, bytes carried)`, hottest first. Empty when link
    /// statistics were not collected.
    pub fn hottest_links(&self, n: usize) -> Vec<(usize, f64)> {
        let Some(bytes) = &self.resource_bytes else {
            return Vec::new();
        };
        let mut links: Vec<(usize, f64)> = bytes[..self.num_links as usize]
            .iter()
            .copied()
            .enumerate()
            .collect();
        links.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        links.truncate(n);
        links
    }

    /// Bytes injected by each endpoint (empty without link statistics).
    pub fn injection_bytes(&self) -> &[f64] {
        match &self.resource_bytes {
            Some(b) => {
                let lo = self.num_links as usize;
                &b[lo..lo + self.num_endpoints as usize]
            }
            None => &[],
        }
    }

    /// Bytes ejected at each endpoint (empty without link statistics).
    pub fn ejection_bytes(&self) -> &[f64] {
        match &self.resource_bytes {
            Some(b) => {
                let lo = self.num_links as usize + self.num_endpoints as usize;
                &b[lo..lo + self.num_endpoints as usize]
            }
            None => &[],
        }
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "makespan {:.6} s over {} flows ({} events)",
            self.makespan_seconds, self.flows, self.events
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimReport {
        SimReport {
            makespan_seconds: 1.5,
            flows: 10,
            events: 4,
            maxmin_iterations: 9,
            completion_times: None,
            resource_bytes: None,
            num_links: 2,
            num_endpoints: 2,
            skipped_flows: 0,
            skipped_flow_ids: Vec::new(),
            fault_events_applied: 0,
            rate_recomputes: 0,
            flows_coalesced: 0,
            solver_threads: 1,
            parallel_solves: 0,
            parallel_route_batches: 0,
            route_cache_hits: 0,
            route_cache_evictions: 0,
            metrics: None,
        }
    }

    #[test]
    fn delivered_flows_subtracts_skipped() {
        let mut r = base();
        assert_eq!(r.delivered_flows(), 10);
        r.skipped_flows = 3;
        r.skipped_flow_ids = vec![1, 4, 7];
        assert_eq!(r.delivered_flows(), 7);
    }

    #[test]
    fn fault_fields_default_when_absent_from_json() {
        // Reports serialized before fault injection existed must still load.
        let json = r#"{"makespan_seconds":1.0,"flows":2,"events":1,
            "maxmin_iterations":1,"completion_times":null,
            "resource_bytes":null,"num_links":2,"num_endpoints":2}"#;
        let r: SimReport = serde_json::from_str(json).unwrap();
        assert_eq!(r.skipped_flows, 0);
        assert!(r.skipped_flow_ids.is_empty());
        assert_eq!(r.fault_events_applied, 0);
    }

    #[test]
    fn events_per_flow_handles_zero() {
        let mut r = base();
        r.flows = 0;
        r.events = 0;
        assert_eq!(r.events_per_flow(), 0.0);
    }

    #[test]
    fn display_format() {
        let r = base();
        let s = r.to_string();
        assert!(s.contains("1.5"));
        assert!(s.contains("10 flows"));
        assert_eq!(r.events_per_flow(), 0.4);
    }

    #[test]
    fn hottest_links_empty_without_stats() {
        assert!(base().hottest_links(3).is_empty());
        assert!(base().injection_bytes().is_empty());
        assert!(base().ejection_bytes().is_empty());
    }

    #[test]
    fn hottest_links_sorted_and_scoped_to_links() {
        let mut r = base();
        // links: [5, 9], injection: [100, 0], ejection: [0, 100]
        r.resource_bytes = Some(vec![5.0, 9.0, 100.0, 0.0, 0.0, 100.0]);
        let hot = r.hottest_links(5);
        assert_eq!(hot, vec![(1, 9.0), (0, 5.0)]);
        assert_eq!(r.injection_bytes(), &[100.0, 0.0]);
        assert_eq!(r.ejection_bytes(), &[0.0, 100.0]);
    }
}
