//! Event tracing and run metrics for the flow engine.
//!
//! When tracing is enabled — [`SimConfig::trace`](crate::SimConfig::trace)
//! or an explicit [`TraceSink`] passed to
//! [`Simulator::run_traced`](crate::Simulator::run_traced) /
//! [`Simulator::run_with_faults_traced`](crate::Simulator::run_with_faults_traced)
//! — the engine emits one [`TraceEvent`] at every state transition:
//! activation, transfer start, completion, skip, rate recomputation, fault
//! application/repair and reroute. The stream is **self-contained**: the
//! leading [`TraceEvent::RunStarted`] header carries the resource
//! capacities, and every path-changing event carries the full resource
//! path, so [`crate::trace_check::check_trace`] can replay a trace and
//! verify the engine's global invariants without the topology in hand.
//!
//! Tracing is **zero-cost when off**: every emission site is guarded by a
//! single branch on a local flag, no event is constructed, no counter is
//! touched, and the report is bit-identical to a build without this module
//! (enforced by the `trace_overhead` bench and `scripts/check.sh`).
//!
//! Events contain no wall-clock data — a trace is a pure function of
//! (topology, workload, config, schedule), bit-identical across reruns,
//! thread counts and solver modes (modulo the solver-effort fields of
//! [`TraceEvent::RateRecompute`], which measure work done, not physics).
//! Wall-clock timings live in the separate [`MetricsRegistry`], surfaced
//! through [`SimReport::metrics`](crate::SimReport::metrics).

use serde::{Deserialize, Serialize};

/// `skip_serializing_if` helper: omit a provenance flag while it is
/// `false` so traces without it stay byte-identical to older ones.
fn is_false(b: &bool) -> bool {
    !*b
}

/// One engine state transition, kind-tagged for JSONL serialisation
/// (`{"event":"flow_started",...}`, one object per line).
///
/// All times are simulated seconds. Resource ids follow the engine's
/// scheme: `0..links` are topology links, `links..links+endpoints` are NIC
/// injection ports, `links+endpoints..links+2·endpoints` ejection ports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum TraceEvent {
    /// Trace header, always first: enough static context to replay the
    /// rest of the stream without the topology.
    RunStarted {
        /// Flows in the DAG.
        flows: u64,
        /// Unidirectional topology links (resource ids `0..links`).
        links: u64,
        /// Endpoints (each owns one injection and one ejection resource).
        endpoints: u64,
        /// The engine's completion-batching tolerance — the oracle's
        /// per-flow byte-conservation slack.
        batch_epsilon: f64,
        /// Capacity of every resource, bits/second, indexed by resource id.
        capacities_bps: Vec<f64>,
        /// The topology was served from a shared topology cache (campaign
        /// runners stamp this; standalone runs leave it `false`). Pure
        /// provenance: absent from the serialized form when `false`, so
        /// cache-off traces are byte-identical to pre-cache ones, and —
        /// like the solver-effort fields of
        /// [`TraceEvent::RateRecompute`] — it is the only header field
        /// allowed to differ between cache-on and cache-off runs.
        #[serde(default, skip_serializing_if = "is_false")]
        topo_cache_hit: bool,
    },
    /// All dependencies satisfied; the flow left the pending set.
    FlowActivated {
        t: f64,
        flow: u32,
        src: u32,
        dst: u32,
        bytes: u64,
        /// Dependency predecessors — all terminal (finished or skipped)
        /// by this point, which the oracle verifies.
        preds: Vec<u32>,
    },
    /// The flow entered the active set and starts transferring (after any
    /// configured head latency) on this resource path.
    FlowStarted { t: f64, flow: u32, path: Vec<u32> },
    /// The flow delivered all its bytes (or was degenerate: zero bytes or
    /// self-traffic, in which case it finishes without ever starting).
    FlowFinished { t: f64, flow: u32 },
    /// The `skip_unreachable` policy dropped the flow: an active fault cut
    /// off its destination.
    FlowSkipped { t: f64, flow: u32 },
    /// The solver reassigned rates. `flows` and `rates_bps` are parallel
    /// arrays covering the whole active set; these rates hold until the
    /// next timestamped event. `entries_solved` (the dirty-component size
    /// actually re-solved) and `full_pass` measure solver effort and are
    /// the only trace fields allowed to differ between solver modes.
    RateRecompute {
        t: f64,
        flows: Vec<u32>,
        rates_bps: Vec<f64>,
        entries_solved: u64,
        full_pass: bool,
    },
    /// A scheduled link-down event took effect.
    FaultApplied { t: f64, link: u32 },
    /// A scheduled link-up event took effect.
    FaultCleared { t: f64, link: u32 },
    /// A fault interrupted the flow and the recovery policy found a detour.
    /// `restarted` means transferred bytes were discarded
    /// ([`RecoveryPolicy::RerouteRestart`](crate::RecoveryPolicy)).
    RerouteTaken {
        t: f64,
        flow: u32,
        path: Vec<u32>,
        restarted: bool,
    },
    /// Terminal: the run stopped at its deterministic event budget
    /// ([`SimConfig::max_events`](crate::SimConfig)). No event may follow;
    /// unresolved flows are cut, not lost — the oracle checks conservation
    /// up to this point and waives the completeness check.
    BudgetExhausted { t: f64, events: u64 },
    /// Terminal: the run stopped at its wall-clock deadline
    /// ([`SimConfig::max_wall_s`](crate::SimConfig)). Same trace semantics
    /// as [`TraceEvent::BudgetExhausted`].
    DeadlineExceeded { t: f64, events: u64 },
}

impl TraceEvent {
    /// Simulated time of the event; `None` for the [`RunStarted`] header.
    ///
    /// [`RunStarted`]: TraceEvent::RunStarted
    pub fn time(&self) -> Option<f64> {
        match self {
            TraceEvent::RunStarted { .. } => None,
            TraceEvent::FlowActivated { t, .. }
            | TraceEvent::FlowStarted { t, .. }
            | TraceEvent::FlowFinished { t, .. }
            | TraceEvent::FlowSkipped { t, .. }
            | TraceEvent::RateRecompute { t, .. }
            | TraceEvent::FaultApplied { t, .. }
            | TraceEvent::FaultCleared { t, .. }
            | TraceEvent::RerouteTaken { t, .. }
            | TraceEvent::BudgetExhausted { t, .. }
            | TraceEvent::DeadlineExceeded { t, .. } => Some(*t),
        }
    }
}

/// Receiver of the engine's event stream. Implementations must be cheap:
/// `record` is called on the hot path of a traced run.
pub trait TraceSink {
    fn record(&mut self, event: &TraceEvent);
}

/// Collects events in memory — the test-suite sink.
#[derive(Default)]
pub struct VecSink {
    /// Every event recorded so far, in emission order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Consume the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Streams events as JSON Lines (one compact object per line) into any
/// writer — the CLI's `--trace <path>` sink.
///
/// I/O errors are deferred: the first failure is stored and every later
/// `record` becomes a no-op; [`JsonlSink::finish`] surfaces it.
pub struct JsonlSink<W: std::io::Write> {
    out: W,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink { out, error: None }
    }

    /// Flush and return the writer, or the first deferred I/O error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: std::io::Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = serde_json::to_string(event).expect("trace events always serialise");
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }
}

/// Parse a JSONL trace (as written by [`JsonlSink`]) back into events.
/// Blank lines are ignored; the error names the offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: TraceEvent =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Number of fixed log₂ buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;
/// Bucket `i` (for `i >= 1`) covers values in `[2^(i-41), 2^(i-40))`;
/// bucket 0 collects non-positive values. The span 2⁻⁴⁰..2²³ covers both
/// sub-microsecond solver timings and active-set sizes in the millions.
const HISTOGRAM_MIN_EXP: i32 = -40;

/// Fixed-layout log₂ histogram over non-negative samples, plus the exact
/// count/sum/min/max. Layout is static so snapshots from different runs
/// merge and compare trivially.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Per-bucket sample counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_index(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        let exp = value.log2().floor() as i32;
        let idx = exp - HISTOGRAM_MIN_EXP + 1;
        idx.clamp(1, HISTOGRAM_BUCKETS as i32 - 1) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Monotonic counters and histograms accumulated during a traced run.
///
/// The registry is fed from the same emission sites as the event stream
/// (so counters and trace agree by construction) plus per-recompute
/// wall-clock and utilisation probes. [`MetricsRegistry::snapshot`]
/// produces the serialisable [`MetricsSnapshot`] attached to
/// [`SimReport::metrics`](crate::SimReport::metrics).
///
/// Solver wall-clock fields are genuinely non-deterministic; everything
/// else is a pure function of the run. Reports are therefore only
/// bit-compared with tracing off.
#[derive(Default)]
pub struct MetricsRegistry {
    pub flows_activated: u64,
    pub flows_started: u64,
    pub flows_finished: u64,
    pub flows_skipped: u64,
    pub faults_applied: u64,
    pub faults_cleared: u64,
    pub reroutes: u64,
    pub rate_recomputes: u64,
    pub full_passes: u64,
    pub budget_exhausted: u64,
    pub deadline_exceeded: u64,
    pub solver_seconds_total: f64,
    pub peak_resource_utilization: f64,
    solver_seconds: Histogram,
    flows_active: Histogram,
    resource_utilization: Histogram,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Bump the counter matching an emitted event.
    pub fn observe(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::RunStarted { .. } => {}
            TraceEvent::FlowActivated { .. } => self.flows_activated += 1,
            TraceEvent::FlowStarted { .. } => self.flows_started += 1,
            TraceEvent::FlowFinished { .. } => self.flows_finished += 1,
            TraceEvent::FlowSkipped { .. } => self.flows_skipped += 1,
            TraceEvent::RateRecompute { full_pass, .. } => {
                self.rate_recomputes += 1;
                if *full_pass {
                    self.full_passes += 1;
                }
            }
            TraceEvent::FaultApplied { .. } => self.faults_applied += 1,
            TraceEvent::FaultCleared { .. } => self.faults_cleared += 1,
            TraceEvent::RerouteTaken { .. } => self.reroutes += 1,
            TraceEvent::BudgetExhausted { .. } => self.budget_exhausted += 1,
            TraceEvent::DeadlineExceeded { .. } => self.deadline_exceeded += 1,
        }
    }

    /// Record one rate recomputation: solver wall time and the size of the
    /// active set it served.
    pub fn record_solve(&mut self, seconds: f64, flows_active: usize) {
        self.solver_seconds_total += seconds;
        self.solver_seconds.record(seconds);
        self.flows_active.record(flows_active as f64);
    }

    /// Record the post-recompute utilisation snapshot: the most loaded
    /// resource's `allocated / capacity`.
    pub fn record_utilization(&mut self, peak: f64) {
        self.peak_resource_utilization = self.peak_resource_utilization.max(peak);
        self.resource_utilization.record(peak);
    }

    /// Freeze the registry into its serialisable form.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            kind: metrics_kind(),
            flows_activated: self.flows_activated,
            flows_started: self.flows_started,
            flows_finished: self.flows_finished,
            flows_skipped: self.flows_skipped,
            faults_applied: self.faults_applied,
            faults_cleared: self.faults_cleared,
            reroutes: self.reroutes,
            rate_recomputes: self.rate_recomputes,
            full_passes: self.full_passes,
            budget_exhausted: self.budget_exhausted,
            deadline_exceeded: self.deadline_exceeded,
            solver_threads: 0,
            parallel_solves: 0,
            topo_cache_hit: 0,
            solver_seconds_total: self.solver_seconds_total,
            solver_seconds: self.solver_seconds.clone(),
            flows_active: self.flows_active.clone(),
            resource_utilization: self.resource_utilization.clone(),
            peak_resource_utilization: self.peak_resource_utilization,
        }
    }
}

fn metrics_kind() -> String {
    "sim_metrics".to_owned()
}

/// Serialisable snapshot of a [`MetricsRegistry`], attached to
/// [`SimReport::metrics`](crate::SimReport::metrics) (kind-tagged so mixed
/// JSON streams stay self-describing).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Always `"sim_metrics"`.
    #[serde(default = "metrics_kind")]
    pub kind: String,
    pub flows_activated: u64,
    pub flows_started: u64,
    pub flows_finished: u64,
    pub flows_skipped: u64,
    pub faults_applied: u64,
    pub faults_cleared: u64,
    pub reroutes: u64,
    /// Rate recomputations performed (one per engine event).
    pub rate_recomputes: u64,
    /// Recomputations that degraded to a full pass over all live entries.
    pub full_passes: u64,
    /// Runs cut by the deterministic event budget (0 or 1 per run).
    #[serde(default)]
    pub budget_exhausted: u64,
    /// Runs cut by the wall-clock deadline (0 or 1 per run).
    #[serde(default)]
    pub deadline_exceeded: u64,
    /// Worker threads the run used (stamped by the engine at snapshot
    /// time; the registry itself never sees the pool).
    #[serde(default)]
    pub solver_threads: u64,
    /// Water-filling passes that ran on the parallel round-based path
    /// (engine-stamped, like `solver_threads`).
    #[serde(default)]
    pub parallel_solves: u64,
    /// Runs whose topology came from a shared topology cache
    /// (engine-stamped provenance, 0 or 1 per run; never affects physics).
    #[serde(default)]
    pub topo_cache_hit: u64,
    /// Total solver wall-clock time, seconds. **Non-deterministic.**
    pub solver_seconds_total: f64,
    /// Per-recompute solver wall time, seconds. **Non-deterministic.**
    pub solver_seconds: Histogram,
    /// Active-set size at each recompute.
    pub flows_active: Histogram,
    /// Most-loaded-resource utilisation (`allocated / capacity`) at each
    /// recompute.
    pub resource_utilization: Histogram,
    /// Largest utilisation ever observed; ≤ 1 + ε for a correct solver.
    pub peak_resource_utilization: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_as_kind_tagged_json() {
        let events = vec![
            TraceEvent::RunStarted {
                flows: 2,
                links: 4,
                endpoints: 2,
                batch_epsilon: 1e-9,
                capacities_bps: vec![1e10; 8],
                topo_cache_hit: false,
            },
            TraceEvent::FlowActivated {
                t: 0.0,
                flow: 0,
                src: 0,
                dst: 1,
                bytes: 1024,
                preds: vec![],
            },
            TraceEvent::FlowStarted {
                t: 0.0,
                flow: 0,
                path: vec![4, 0, 6],
            },
            TraceEvent::RateRecompute {
                t: 0.0,
                flows: vec![0],
                rates_bps: vec![1e10],
                entries_solved: 1,
                full_pass: true,
            },
            TraceEvent::FaultApplied { t: 1e-6, link: 0 },
            TraceEvent::RerouteTaken {
                t: 1e-6,
                flow: 0,
                path: vec![4, 1, 2, 6],
                restarted: false,
            },
            TraceEvent::FaultCleared { t: 2e-6, link: 0 },
            TraceEvent::FlowFinished { t: 3e-6, flow: 0 },
            TraceEvent::FlowSkipped { t: 3e-6, flow: 1 },
        ];
        for ev in &events {
            let json = serde_json::to_string(ev).unwrap();
            assert!(json.contains("\"event\""), "{json}");
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn jsonl_sink_roundtrips_through_parse() {
        let mut sink = JsonlSink::new(Vec::new());
        let ev = TraceEvent::FlowFinished { t: 0.5, flow: 7 };
        sink.record(&ev);
        sink.record(&TraceEvent::FaultApplied { t: 0.75, link: 3 });
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed[0], ev);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn parse_jsonl_reports_the_bad_line() {
        let err = parse_jsonl("{\"event\":\"flow_finished\",\"t\":0.0,\"flow\":0}\nnot json\n")
            .unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn histogram_tracks_extremes_and_buckets() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        h.record(1e-9);
        h.record(4.0);
        h.record(0.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - (1e-9 + 4.0) / 3.0).abs() < 1e-12);
        assert_eq!(h.buckets[0], 1, "zero lands in the non-positive bucket");
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn registry_counters_follow_events() {
        let mut m = MetricsRegistry::new();
        m.observe(&TraceEvent::FlowSkipped { t: 0.0, flow: 1 });
        m.observe(&TraceEvent::RateRecompute {
            t: 0.0,
            flows: vec![],
            rates_bps: vec![],
            entries_solved: 0,
            full_pass: true,
        });
        m.record_solve(1e-6, 3);
        m.record_utilization(0.5);
        m.record_utilization(1.0);
        let snap = m.snapshot();
        assert_eq!(snap.kind, "sim_metrics");
        assert_eq!(snap.flows_skipped, 1);
        assert_eq!(snap.rate_recomputes, 1);
        assert_eq!(snap.full_passes, 1);
        assert_eq!(snap.peak_resource_utilization, 1.0);
        assert_eq!(snap.flows_active.count, 1);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
