//! The trace oracle: replay an event trace and verify the engine's global
//! invariants independently of the engine that produced it.
//!
//! [`check_trace`] is a pure function over a complete [`TraceEvent`]
//! stream (as emitted by a traced [`Simulator`](crate::Simulator) run). It
//! rebuilds the run — per-flow state machines, the current rate
//! assignment, the set of failed links — and asserts:
//!
//! 1. **Monotone time** — event timestamps never decrease.
//! 2. **Byte conservation** — integrating each flow's allocated rate over
//!    its active lifetime delivers exactly its size (within the engine's
//!    completion-batching epsilon), restarting the count when a
//!    `reroute_restart` discards progress.
//! 3. **Capacity** — at every rate recomputation, the allocations crossing
//!    each resource sum to at most its capacity.
//! 4. **Dependencies** — a flow only activates after every DAG predecessor
//!    finished or was skipped.
//! 5. **Fault discipline** — flows are only skipped while at least one
//!    link is down, started/rerouted paths never cross a downed link, and
//!    fault events apply/clear links consistently. With the topology in
//!    hand, [`check_trace_with_topology`] additionally proves every
//!    skipped flow's destination was *actually unreachable* under the
//!    failed links at skip time.
//!
//! This gives the incremental solver, the fault machinery and the
//! coalescing layer an independent witness: bit-equality tests show two
//! engines agree, the oracle shows they agree on something *physical*.

use crate::trace::TraceEvent;
use exaflow_netgraph::{LinkId, NodeId};
use exaflow_topo::{FaultOverlay, Topology};
use std::collections::{BTreeSet, HashMap};

/// Aggregate facts established by a successful replay.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Events replayed (including the header).
    pub events: usize,
    /// Flows that activated.
    pub flows_activated: u64,
    /// Flows that delivered (degenerate flows included).
    pub flows_finished: u64,
    /// Flows dropped by the skip policy.
    pub flows_skipped: u64,
    /// Reroutes taken.
    pub reroutes: u64,
    /// Largest `allocated / capacity` seen on any resource.
    pub max_utilization: f64,
    /// Simulated time of the last event.
    pub end_time_s: f64,
    /// The trace ends in a terminal `budget_exhausted` /
    /// `deadline_exceeded` event: a legal cut, not a complete run, so
    /// mid-flight flows are permitted at end of trace.
    pub terminated: bool,
}

/// A broken invariant: which event tripped it and why.
#[derive(Clone, Debug)]
pub struct TraceViolation {
    /// Index into the event slice (`None`: a whole-trace property).
    pub index: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.index {
            Some(i) => write!(f, "trace event {i}: {}", self.message),
            None => write!(f, "trace: {}", self.message),
        }
    }
}

impl std::error::Error for TraceViolation {}

/// Relative slack for float accumulation beyond the engine's own batching
/// epsilon: integrating rates over thousands of intervals loses a few ulps.
const FLOAT_SLACK: f64 = 1e-6;
/// Relative capacity headroom: progressive filling saturates bottlenecks
/// exactly, so anything beyond rounding noise is a real violation.
const CAPACITY_SLACK: f64 = 1e-9;

#[derive(Clone, Copy, PartialEq, Debug)]
enum FlowState {
    Pending,
    Activated,
    Started,
    Finished,
    Skipped,
}

struct FlowReplay {
    state: FlowState,
    src: u32,
    dst: u32,
    bits: f64,
    /// Bits delivered so far under the rate integration.
    delivered: f64,
    /// Current resource path (set at start, replaced on reroute).
    path: Vec<u32>,
}

/// Verify a complete trace against the engine invariants. See the module
/// docs for the invariant list; returns a [`TraceSummary`] of the replay
/// or the first [`TraceViolation`] encountered.
pub fn check_trace(events: &[TraceEvent]) -> Result<TraceSummary, TraceViolation> {
    check_inner(events, None)
}

/// [`check_trace`], plus the unreachability proof for every skipped flow:
/// re-derive the failed-link set at each `flow_skipped` event and assert
/// `topo` offers no route from the flow's source to its destination. The
/// topology must be the one that produced the trace.
pub fn check_trace_with_topology(
    events: &[TraceEvent],
    topo: &dyn Topology,
) -> Result<TraceSummary, TraceViolation> {
    check_inner(events, Some(topo))
}

fn check_inner(
    events: &[TraceEvent],
    topo: Option<&dyn Topology>,
) -> Result<TraceSummary, TraceViolation> {
    let fail = |index: Option<usize>, message: String| TraceViolation { index, message };

    let Some(TraceEvent::RunStarted {
        flows,
        links,
        endpoints,
        batch_epsilon,
        capacities_bps,
        ..
    }) = events.first()
    else {
        return Err(fail(
            Some(0),
            "trace must begin with a run_started header".into(),
        ));
    };
    let n = *flows as usize;
    let num_links = *links as u32;
    let num_resources = (*links + 2 * *endpoints) as u32;
    if capacities_bps.len() != num_resources as usize {
        return Err(fail(
            Some(0),
            format!(
                "header declares {num_resources} resources but carries {} capacities",
                capacities_bps.len()
            ),
        ));
    }
    if let Some(t) = topo {
        if t.network().num_links() as u64 != *links || t.num_endpoints() as u64 != *endpoints {
            return Err(fail(
                Some(0),
                format!(
                    "topology {} ({} links, {} endpoints) does not match the header \
                     ({links} links, {endpoints} endpoints)",
                    t.name(),
                    t.network().num_links(),
                    t.num_endpoints()
                ),
            ));
        }
    }

    let mut replay: Vec<FlowReplay> = (0..n)
        .map(|_| FlowReplay {
            state: FlowState::Pending,
            src: 0,
            dst: 0,
            bits: 0.0,
            delivered: 0.0,
            path: Vec::new(),
        })
        .collect();
    // Current rate assignment: (flow, bits/second), valid since `last_t`.
    let mut current_rates: Vec<(u32, f64)> = Vec::new();
    let mut down: BTreeSet<u32> = BTreeSet::new();
    let mut load: HashMap<u32, f64> = HashMap::new();
    let mut last_t = 0.0f64;
    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };

    let check_flow = |i: usize, f: u32| -> Result<usize, TraceViolation> {
        let idx = f as usize;
        if idx >= n {
            return Err(fail(
                Some(i),
                format!("flow {f} out of range (dag has {n})"),
            ));
        }
        Ok(idx)
    };
    let check_path = |i: usize, path: &[u32], down: &BTreeSet<u32>| -> Result<(), TraceViolation> {
        if path.len() < 2 {
            return Err(fail(
                Some(i),
                format!("path {path:?} lacks the injection/ejection resources"),
            ));
        }
        for &r in path {
            if r >= num_resources {
                return Err(fail(
                    Some(i),
                    format!("path resource {r} out of range ({num_resources} resources)"),
                ));
            }
            if r < num_links && down.contains(&r) {
                return Err(fail(Some(i), format!("path crosses downed link {r}")));
            }
        }
        Ok(())
    };

    for (i, ev) in events.iter().enumerate() {
        if summary.terminated {
            return Err(fail(
                Some(i),
                format!("event {ev:?} after a terminal budget/deadline cut"),
            ));
        }
        if let Some(t) = ev.time() {
            if t < last_t {
                return Err(fail(
                    Some(i),
                    format!("time went backwards: {t} after {last_t}"),
                ));
            }
            if t > last_t {
                // The rate assignment from the last recompute held for the
                // whole interval: integrate every active flow's delivery.
                let dt = t - last_t;
                for &(f, rate) in &current_rates {
                    replay[f as usize].delivered += rate * dt;
                }
                last_t = t;
            }
        }

        match ev {
            TraceEvent::RunStarted { .. } => {
                if i != 0 {
                    return Err(fail(Some(i), "duplicate run_started header".into()));
                }
            }
            TraceEvent::FlowActivated {
                flow,
                src,
                dst,
                bytes,
                preds,
                ..
            } => {
                let idx = check_flow(i, *flow)?;
                if replay[idx].state != FlowState::Pending {
                    return Err(fail(
                        Some(i),
                        format!("flow {flow} activated twice ({:?})", replay[idx].state),
                    ));
                }
                for &p in preds {
                    let pidx = check_flow(i, p)?;
                    if !matches!(replay[pidx].state, FlowState::Finished | FlowState::Skipped) {
                        return Err(fail(
                            Some(i),
                            format!(
                                "flow {flow} activated before predecessor {p} resolved \
                                 ({:?})",
                                replay[pidx].state
                            ),
                        ));
                    }
                }
                replay[idx].state = FlowState::Activated;
                replay[idx].src = *src;
                replay[idx].dst = *dst;
                replay[idx].bits = *bytes as f64 * 8.0;
                summary.flows_activated += 1;
            }
            TraceEvent::FlowStarted { flow, path, .. } => {
                let idx = check_flow(i, *flow)?;
                if replay[idx].state != FlowState::Activated {
                    return Err(fail(
                        Some(i),
                        format!(
                            "flow {flow} started from state {:?} (want activated)",
                            replay[idx].state
                        ),
                    ));
                }
                check_path(i, path, &down)?;
                replay[idx].state = FlowState::Started;
                replay[idx].path = path.clone();
            }
            TraceEvent::FlowFinished { flow, .. } => {
                let idx = check_flow(i, *flow)?;
                match replay[idx].state {
                    // A started flow must have delivered its bytes.
                    FlowState::Started => {
                        let bits = replay[idx].bits;
                        let tol = bits * (batch_epsilon + FLOAT_SLACK) + 1.0;
                        let got = replay[idx].delivered;
                        if (got - bits).abs() > tol {
                            return Err(fail(
                                Some(i),
                                format!(
                                    "flow {flow} finished having delivered {got} of {bits} \
                                     bits (tolerance {tol})"
                                ),
                            ));
                        }
                    }
                    // Degenerate flows (zero bytes, self-traffic) finish
                    // straight from activation without transferring.
                    FlowState::Activated => {}
                    other => {
                        return Err(fail(
                            Some(i),
                            format!("flow {flow} finished from state {other:?}"),
                        ));
                    }
                }
                replay[idx].state = FlowState::Finished;
                current_rates.retain(|&(f, _)| f != *flow);
                summary.flows_finished += 1;
            }
            TraceEvent::FlowSkipped { flow, .. } => {
                let idx = check_flow(i, *flow)?;
                if !matches!(replay[idx].state, FlowState::Activated | FlowState::Started) {
                    return Err(fail(
                        Some(i),
                        format!("flow {flow} skipped from state {:?}", replay[idx].state),
                    ));
                }
                if down.is_empty() {
                    return Err(fail(
                        Some(i),
                        format!("flow {flow} skipped with no link down"),
                    ));
                }
                if let Some(t) = topo {
                    // The skip policy's claim, re-proved from scratch: under
                    // exactly the currently-failed links, no route exists.
                    let mut overlay = FaultOverlay::new(t);
                    for &l in &down {
                        overlay.fail_link(LinkId(l));
                    }
                    let mut scratch = Vec::new();
                    let (src, dst) = (replay[idx].src, replay[idx].dst);
                    if overlay
                        .try_route(NodeId(src), NodeId(dst), &mut scratch)
                        .is_ok()
                    {
                        return Err(fail(
                            Some(i),
                            format!(
                                "flow {flow} ({src} -> {dst}) skipped although a route \
                                 exists around the {} failed link(s)",
                                down.len()
                            ),
                        ));
                    }
                }
                replay[idx].state = FlowState::Skipped;
                current_rates.retain(|&(f, _)| f != *flow);
                summary.flows_skipped += 1;
            }
            TraceEvent::RateRecompute {
                flows, rates_bps, ..
            } => {
                if flows.len() != rates_bps.len() {
                    return Err(fail(
                        Some(i),
                        format!(
                            "{} flows but {} rates in recompute",
                            flows.len(),
                            rates_bps.len()
                        ),
                    ));
                }
                // The assignment must cover exactly the started flows...
                let started: BTreeSet<u32> = replay
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.state == FlowState::Started)
                    .map(|(f, _)| f as u32)
                    .collect();
                let assigned: BTreeSet<u32> = flows.iter().copied().collect();
                if assigned != started {
                    return Err(fail(
                        Some(i),
                        format!(
                            "recompute covers flows {assigned:?} but the started set is \
                             {started:?}"
                        ),
                    ));
                }
                // ...with finite non-negative rates that fit every resource.
                load.clear();
                for (&f, &rate) in flows.iter().zip(rates_bps) {
                    if !(rate.is_finite() && rate >= 0.0) {
                        return Err(fail(Some(i), format!("flow {f} assigned rate {rate}")));
                    }
                    for &r in &replay[f as usize].path {
                        *load.entry(r).or_insert(0.0) += rate;
                    }
                }
                for (&r, &l) in &load {
                    let cap = capacities_bps[r as usize];
                    if l > cap * (1.0 + CAPACITY_SLACK) {
                        return Err(fail(
                            Some(i),
                            format!("resource {r} loaded to {l} bps over capacity {cap}"),
                        ));
                    }
                    if cap > 0.0 {
                        summary.max_utilization = summary.max_utilization.max(l / cap);
                    }
                }
                current_rates = flows
                    .iter()
                    .copied()
                    .zip(rates_bps.iter().copied())
                    .collect();
            }
            TraceEvent::FaultApplied { link, .. } => {
                if *link >= num_links {
                    return Err(fail(
                        Some(i),
                        format!("fault on link {link} out of range ({num_links} links)"),
                    ));
                }
                if !down.insert(*link) {
                    return Err(fail(
                        Some(i),
                        format!("link {link} failed while already down"),
                    ));
                }
            }
            TraceEvent::FaultCleared { link, .. } => {
                if !down.remove(link) {
                    return Err(fail(
                        Some(i),
                        format!("link {link} repaired while not down"),
                    ));
                }
            }
            TraceEvent::RerouteTaken {
                flow,
                path,
                restarted,
                ..
            } => {
                let idx = check_flow(i, *flow)?;
                match replay[idx].state {
                    FlowState::Started => {
                        check_path(i, path, &down)?;
                        replay[idx].path = path.clone();
                    }
                    // Latency-delayed flows reroute before starting; the
                    // replacement path arrives again with flow_started.
                    FlowState::Activated => check_path(i, path, &down)?,
                    other => {
                        return Err(fail(
                            Some(i),
                            format!("flow {flow} rerouted from state {other:?}"),
                        ));
                    }
                }
                if *restarted {
                    // Restart discards progress: the delivery count begins
                    // again and must still reach the full size.
                    replay[idx].delivered = 0.0;
                }
                summary.reroutes += 1;
            }
            TraceEvent::BudgetExhausted { .. } | TraceEvent::DeadlineExceeded { .. } => {
                // Legal cut point: everything up to here obeyed the
                // invariants (monotone time, conservation, capacities);
                // the run just did not get to finish. Nothing may follow.
                summary.terminated = true;
            }
        }
    }

    // A complete run leaves no flow mid-flight; a budget/deadline cut is
    // allowed to — conservation was checked up to the cut point.
    if !summary.terminated {
        for (f, r) in replay.iter().enumerate() {
            if matches!(r.state, FlowState::Activated | FlowState::Started) {
                return Err(fail(
                    None,
                    format!("flow {f} never resolved (trace ends in {:?})", r.state),
                ));
            }
        }
    }
    summary.end_time_s = last_t;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(flows: u64) -> TraceEvent {
        TraceEvent::RunStarted {
            flows,
            links: 2,
            endpoints: 2,
            batch_epsilon: 1e-9,
            capacities_bps: vec![1e9; 6],
            topo_cache_hit: false,
        }
    }

    fn activated(flow: u32, t: f64) -> TraceEvent {
        TraceEvent::FlowActivated {
            t,
            flow,
            src: 0,
            dst: 1,
            bytes: 1000,
            preds: vec![],
        }
    }

    fn well_formed() -> Vec<TraceEvent> {
        vec![
            header(1),
            activated(0, 0.0),
            TraceEvent::FlowStarted {
                t: 0.0,
                flow: 0,
                path: vec![2, 0, 5],
            },
            TraceEvent::RateRecompute {
                t: 0.0,
                flows: vec![0],
                rates_bps: vec![1e9],
                entries_solved: 1,
                full_pass: true,
            },
            TraceEvent::FlowFinished { t: 8e-6, flow: 0 },
        ]
    }

    #[test]
    fn accepts_a_well_formed_trace() {
        let s = check_trace(&well_formed()).unwrap();
        assert_eq!(s.flows_finished, 1);
        assert_eq!(s.end_time_s, 8e-6);
        assert!((s.max_utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_a_missing_header() {
        let err = check_trace(&well_formed()[1..]).unwrap_err();
        assert!(err.message.contains("run_started"), "{err}");
    }

    #[test]
    fn rejects_backwards_time() {
        let mut t = well_formed();
        t.push(TraceEvent::FaultApplied { t: 1e-6, link: 0 });
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("backwards"), "{err}");
    }

    #[test]
    fn rejects_missing_bytes() {
        let mut t = well_formed();
        // Finishing at half the wire time means half the bits arrived.
        t[4] = TraceEvent::FlowFinished { t: 4e-6, flow: 0 };
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("delivered"), "{err}");
    }

    #[test]
    fn rejects_overcommitted_resources() {
        let mut t = well_formed();
        t[3] = TraceEvent::RateRecompute {
            t: 0.0,
            flows: vec![0],
            rates_bps: vec![2e9],
            entries_solved: 1,
            full_pass: true,
        };
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("over capacity"), "{err}");
    }

    #[test]
    fn rejects_unresolved_dependencies() {
        let t = vec![
            header(2),
            TraceEvent::FlowActivated {
                t: 0.0,
                flow: 1,
                src: 0,
                dst: 1,
                bytes: 0,
                preds: vec![0],
            },
        ];
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("predecessor"), "{err}");
    }

    #[test]
    fn rejects_a_skip_without_a_fault() {
        let t = vec![
            header(1),
            activated(0, 0.0),
            TraceEvent::FlowSkipped { t: 0.0, flow: 0 },
        ];
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("no link down"), "{err}");
    }

    #[test]
    fn rejects_an_unfinished_run() {
        let t = vec![header(1), activated(0, 0.0)];
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("never resolved"), "{err}");
    }

    #[test]
    fn rejects_paths_crossing_downed_links() {
        let t = vec![
            header(1),
            TraceEvent::FaultApplied { t: 0.0, link: 0 },
            activated(0, 0.0),
            TraceEvent::FlowStarted {
                t: 0.0,
                flow: 0,
                path: vec![2, 0, 5],
            },
        ];
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("downed link"), "{err}");
    }

    #[test]
    fn restart_resets_the_delivery_count() {
        let mut t = well_formed();
        t.insert(
            4,
            TraceEvent::RerouteTaken {
                t: 4e-6,
                flow: 0,
                path: vec![2, 1, 5],
                restarted: true,
            },
        );
        // After a restart at the halfway point, finishing at the original
        // time means only half the bits arrived on the second attempt.
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("delivered"), "{err}");
        // Give the retransmission its full wire time and the trace passes.
        let last = t.len() - 1;
        t[last] = TraceEvent::FlowFinished { t: 12e-6, flow: 0 };
        check_trace(&t).unwrap();
    }

    #[test]
    fn skip_unreachability_is_proved_against_the_topology() {
        use exaflow_topo::Torus;
        let topo = Torus::new(&[4]);
        let net = topo.network();
        let net_links = net.num_links() as u64;
        let eps = topo.num_endpoints() as u64;
        let header = TraceEvent::RunStarted {
            flows: 1,
            links: net_links,
            endpoints: eps,
            batch_epsilon: 1e-9,
            capacities_bps: vec![1e9; (net_links + 2 * eps) as usize],
            topo_cache_hit: false,
        };
        // Failing only the reverse cable 1 -> 0 leaves 0 -> 1 reachable:
        // the oracle must reject the skip.
        let reverse = net.find_physical_link(NodeId(1), NodeId(0)).unwrap().0;
        let one_down = vec![
            header.clone(),
            TraceEvent::FaultApplied {
                t: 0.0,
                link: reverse,
            },
            activated(0, 0.0),
            TraceEvent::FlowSkipped { t: 0.0, flow: 0 },
        ];
        let err = check_trace_with_topology(&one_down, &topo).unwrap_err();
        assert!(err.message.contains("route exists"), "{err}");
        // Failing every link genuinely cuts 0 off from 1.
        let mut t = vec![header, activated(0, 0.0)];
        t.extend((0..net_links as u32).map(|l| TraceEvent::FaultApplied { t: 0.0, link: l }));
        t.push(TraceEvent::FlowSkipped { t: 0.0, flow: 0 });
        let s = check_trace_with_topology(&t, &topo).unwrap();
        assert_eq!(s.flows_skipped, 1);
    }

    #[test]
    fn budget_terminated_trace_is_legal_despite_midflight_flows() {
        // Flow 0 starts but never finishes; the terminal cut makes that OK.
        let t = vec![
            header(1),
            activated(0, 0.0),
            TraceEvent::FlowStarted {
                t: 0.0,
                flow: 0,
                path: vec![2, 0, 5],
            },
            TraceEvent::RateRecompute {
                t: 0.0,
                flows: vec![0],
                rates_bps: vec![1e9],
                entries_solved: 1,
                full_pass: true,
            },
            TraceEvent::BudgetExhausted { t: 4e-6, events: 1 },
        ];
        let s = check_trace(&t).unwrap();
        assert!(s.terminated);
        assert_eq!(s.flows_activated, 1);
        assert_eq!(s.flows_finished, 0);
        assert_eq!(s.end_time_s, 4e-6);

        // Without the terminal event the same trace is incomplete.
        let incomplete = &t[..t.len() - 1];
        let err = check_trace(incomplete).unwrap_err();
        assert!(err.message.contains("never resolved"), "{err}");
    }

    #[test]
    fn deadline_terminated_trace_still_checks_conservation_to_the_cut() {
        // 1000 bytes at 1e9 bps finish at 8e-6; claiming completion after a
        // deadline cut placed *before* enough bytes flowed must still fail.
        let t = vec![
            header(1),
            activated(0, 0.0),
            TraceEvent::FlowStarted {
                t: 0.0,
                flow: 0,
                path: vec![2, 0, 5],
            },
            TraceEvent::RateRecompute {
                t: 0.0,
                flows: vec![0],
                rates_bps: vec![1e9],
                entries_solved: 1,
                full_pass: true,
            },
            TraceEvent::FlowFinished { t: 1e-6, flow: 0 },
            TraceEvent::DeadlineExceeded { t: 1e-6, events: 2 },
        ];
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("delivered"), "{err}");

        // Time must stay monotone across the terminal event too.
        let backwards = vec![
            header(0),
            TraceEvent::FaultApplied { t: 1.0, link: 0 },
            TraceEvent::DeadlineExceeded { t: 0.5, events: 1 },
        ];
        let err = check_trace(&backwards).unwrap_err();
        assert!(err.message.contains("backwards"), "{err}");
    }

    #[test]
    fn events_after_a_terminal_cut_are_rejected() {
        let t = vec![
            header(1),
            TraceEvent::BudgetExhausted { t: 0.0, events: 0 },
            activated(0, 0.0),
        ];
        let err = check_trace(&t).unwrap_err();
        assert!(err.message.contains("after a terminal"), "{err}");
    }
}
