//! Property tests for the flow engine: physical sanity bounds, max-min
//! feasibility/saturation, and determinism on random DAGs.

use exaflow_netgraph::NodeId;
use exaflow_sim::maxmin::MaxMinSolver;
use exaflow_sim::{FlowDagBuilder, FlowId, SimConfig, Simulator, VecSink};
use exaflow_topo::Torus;
use proptest::prelude::*;

/// Random DAG: flows with random endpoints/sizes; each flow may depend on
/// up to two earlier flows.
fn random_dag(eps: u32) -> impl Strategy<Value = Vec<(u32, u32, u64, Vec<usize>)>> {
    prop::collection::vec(
        (
            0..eps,
            0..eps,
            1u64..1_000_000,
            prop::collection::vec(any::<usize>(), 0..3),
        ),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn makespan_within_physical_bounds(flows in random_dag(16)) {
        let topo = Torus::new(&[4, 4]);
        let rate = 10e9;
        let mut b = FlowDagBuilder::new();
        for (i, (s, d, bytes, deps)) in flows.iter().enumerate() {
            let deps: Vec<FlowId> = deps
                .iter()
                .filter(|_| i > 0)
                .map(|&x| FlowId((x % i) as u32))
                .collect();
            b.add_flow(NodeId(*s), NodeId(*d), *bytes, &deps);
        }
        let dag = b.build();
        let report = Simulator::new(&topo).run(&dag).unwrap();

        // Upper bound: fully serial execution of every flow at line rate.
        let serial: f64 = flows
            .iter()
            .map(|(s, d, bytes, _)| if s == d { 0.0 } else { *bytes as f64 * 8.0 / rate })
            .sum();
        prop_assert!(report.makespan_seconds <= serial * (1.0 + 1e-9) + 1e-15);

        // Lower bound: the largest single network flow at line rate.
        let widest: f64 = flows
            .iter()
            .map(|(s, d, bytes, _)| if s == d { 0.0 } else { *bytes as f64 * 8.0 / rate })
            .fold(0.0, f64::max);
        prop_assert!(report.makespan_seconds >= widest * (1.0 - 1e-9));
    }

    #[test]
    fn engine_deterministic(flows in random_dag(16)) {
        let topo = Torus::new(&[4, 4]);
        let mut b = FlowDagBuilder::new();
        for (i, (s, d, bytes, deps)) in flows.iter().enumerate() {
            let deps: Vec<FlowId> = deps
                .iter()
                .filter(|_| i > 0)
                .map(|&x| FlowId((x % i) as u32))
                .collect();
            b.add_flow(NodeId(*s), NodeId(*d), *bytes, &deps);
        }
        let dag = b.build();
        let a = Simulator::new(&topo).run(&dag).unwrap();
        let b2 = Simulator::new(&topo).run(&dag).unwrap();
        prop_assert_eq!(a.makespan_seconds, b2.makespan_seconds);
        prop_assert_eq!(a.events, b2.events);
    }

    #[test]
    fn completion_times_monotone_along_dependencies(flows in random_dag(12)) {
        let topo = Torus::new(&[4, 3]);
        let mut b = FlowDagBuilder::new();
        let mut dep_pairs = Vec::new();
        for (i, (s, d, bytes, deps)) in flows.iter().enumerate() {
            let deps: Vec<FlowId> = deps
                .iter()
                .filter(|_| i > 0)
                .map(|&x| FlowId((x % i) as u32))
                .collect();
            for &p in &deps {
                dep_pairs.push((p, FlowId(i as u32)));
            }
            b.add_flow(NodeId(*s), NodeId(*d), *bytes, &deps);
        }
        let dag = b.build();
        let cfg = SimConfig { record_flow_times: true, ..SimConfig::default() };
        let report = Simulator::with_config(&topo, cfg).run(&dag).unwrap();
        let times = report.completion_times.unwrap();
        for (pred, succ) in dep_pairs {
            prop_assert!(
                times[pred.index()] <= times[succ.index()] + 1e-15,
                "dep finished after dependent"
            );
        }
    }

    #[test]
    fn maxmin_feasible_and_saturating(
        paths in prop::collection::vec(prop::collection::vec(0u32..30, 1..6), 1..50),
        caps in prop::collection::vec(1.0f64..100.0, 30),
    ) {
        // Deduplicate resources within each path (engine paths are loop-free).
        let paths: Vec<Vec<u32>> = paths
            .into_iter()
            .map(|mut p| {
                p.sort_unstable();
                p.dedup();
                p
            })
            .collect();
        let mut solver = MaxMinSolver::new(caps.clone()).unwrap();
        let mut rates = vec![0.0; paths.len()];
        solver.solve(&paths, &mut rates);

        let mut used = vec![0.0f64; caps.len()];
        for (f, p) in paths.iter().enumerate() {
            prop_assert!(rates[f] >= 0.0);
            for &r in p {
                used[r as usize] += rates[f];
            }
        }
        // Feasibility: no resource above capacity.
        for (r, &u) in used.iter().enumerate() {
            prop_assert!(u <= caps[r] * (1.0 + 1e-9) + 1e-9, "resource {r} over");
        }
        // Max-min: every flow crosses at least one saturated resource.
        for (f, p) in paths.iter().enumerate() {
            let saturated = p.iter().any(|&r| used[r as usize] >= caps[r as usize] * (1.0 - 1e-6));
            prop_assert!(saturated, "flow {f} not bottlenecked");
        }
    }

    /// The worker pool is invisible in results: random DAGs on a
    /// 64-endpoint torus (large enough to cross the parallel-solve and
    /// route-prefetch thresholds on bigger cases) produce event-for-event
    /// identical traces and bit-identical completion times at every
    /// thread count.
    #[test]
    fn thread_counts_trace_identically(flows in random_dag(64)) {
        let topo = Torus::new(&[8, 8]);
        let mut b = FlowDagBuilder::new();
        for (i, (s, d, bytes, deps)) in flows.iter().enumerate() {
            let deps: Vec<FlowId> = deps
                .iter()
                .filter(|_| i > 0)
                .map(|&x| FlowId((x % i) as u32))
                .collect();
            b.add_flow(NodeId(*s), NodeId(*d), *bytes, &deps);
        }
        let dag = b.build();
        let run = |threads: usize| {
            let cfg = SimConfig {
                solver_threads: threads,
                record_flow_times: true,
                ..SimConfig::default()
            };
            let mut sink = VecSink::new();
            let report = Simulator::with_config(&topo, cfg)
                .run_traced(&dag, &mut sink)
                .unwrap();
            (report, sink.into_events())
        };
        let (reference, ref_events) = run(1);
        let ref_times = reference.completion_times.as_ref().unwrap();
        for threads in [2, 8] {
            let (report, events) = run(threads);
            prop_assert_eq!(&events, &ref_events, "threads={}", threads);
            prop_assert_eq!(
                report.makespan_seconds.to_bits(),
                reference.makespan_seconds.to_bits(),
                "threads={}", threads
            );
            let times = report.completion_times.as_ref().unwrap();
            for (f, (t, r)) in times.iter().zip(ref_times).enumerate() {
                prop_assert!(
                    t.to_bits() == r.to_bits(),
                    "threads={threads}, flow {f}: {t:e} != {r:e}"
                );
            }
            prop_assert_eq!(report.maxmin_iterations, reference.maxmin_iterations);
        }
    }

    #[test]
    fn batching_epsilon_bounds_error(flows in random_dag(16)) {
        let topo = Torus::new(&[4, 4]);
        let mut b = FlowDagBuilder::new();
        for (i, (s, d, bytes, deps)) in flows.iter().enumerate() {
            let deps: Vec<FlowId> = deps
                .iter()
                .filter(|_| i > 0)
                .map(|&x| FlowId((x % i) as u32))
                .collect();
            b.add_flow(NodeId(*s), NodeId(*d), *bytes, &deps);
        }
        let dag = b.build();
        let run = |eps: f64| {
            let cfg = SimConfig { batch_epsilon: eps, ..SimConfig::default() };
            Simulator::with_config(&topo, cfg).run(&dag).unwrap().makespan_seconds
        };
        let exact = run(0.0);
        let loose = run(1e-6);
        // A loose epsilon can only shorten flows (they retire early), and by
        // no more than a per-event epsilon factor; with a tiny epsilon the
        // results must agree to ~1e-4 relative.
        prop_assert!((exact - loose).abs() <= exact * 1e-4 + 1e-12, "{exact} vs {loose}");
    }
}
