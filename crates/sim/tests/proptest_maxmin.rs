//! Property tests for [`MaxMinSolver`]: feasibility and max-min
//! saturation on arbitrary capacity/path sets — the generalisation of the
//! hand-written `rates_never_exceed_any_link` case in `maxmin.rs` — plus
//! scale invariance and cross-call reusability.

use exaflow_sim::maxmin::MaxMinSolver;
use proptest::prelude::*;

const RESOURCES: usize = 24;

/// Arbitrary loop-free paths over `RESOURCES` resources. Empty paths are
/// legal (unconstrained flows).
fn paths_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(0u32..RESOURCES as u32, 0..6).prop_map(|mut p| {
            p.sort_unstable();
            p.dedup();
            p
        }),
        1..60,
    )
}

fn caps_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.5f64..500.0, RESOURCES)
}

fn solve(caps: &[f64], paths: &[Vec<u32>]) -> Vec<f64> {
    let mut solver = MaxMinSolver::new(caps.to_vec()).unwrap();
    let mut rates = vec![0.0; paths.len()];
    solver.solve(paths, &mut rates);
    rates
}

fn usage(caps: &[f64], paths: &[Vec<u32>], rates: &[f64]) -> Vec<f64> {
    let mut used = vec![0.0f64; caps.len()];
    for (f, p) in paths.iter().enumerate() {
        for &r in p {
            used[r as usize] += rates[f];
        }
    }
    used
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feasibility: no resource is allocated beyond its capacity.
    #[test]
    fn allocation_is_feasible(paths in paths_strategy(), caps in caps_strategy()) {
        let rates = solve(&caps, &paths);
        let used = usage(&caps, &paths, &rates);
        for (r, &u) in used.iter().enumerate() {
            prop_assert!(
                u <= caps[r] * (1.0 + 1e-9) + 1e-9,
                "resource {r}: used {u} > cap {}", caps[r]
            );
        }
    }

    /// Max-min saturation: no constrained flow can be increased — each
    /// crosses at least one saturated resource. Unconstrained (empty-path)
    /// flows get infinite rate; everything else is finite and non-negative.
    #[test]
    fn every_flow_is_bottlenecked(paths in paths_strategy(), caps in caps_strategy()) {
        let rates = solve(&caps, &paths);
        let used = usage(&caps, &paths, &rates);
        for (f, p) in paths.iter().enumerate() {
            if p.is_empty() {
                prop_assert!(rates[f].is_infinite());
                continue;
            }
            prop_assert!(rates[f].is_finite() && rates[f] >= 0.0);
            let saturated = p
                .iter()
                .any(|&r| used[r as usize] >= caps[r as usize] * (1.0 - 1e-6));
            prop_assert!(saturated, "flow {f} (rate {}) could be increased", rates[f]);
        }
    }

    /// Scale invariance: multiplying every capacity by λ multiplies every
    /// finite rate by λ (progressive filling is homogeneous of degree 1).
    #[test]
    fn allocation_scales_with_capacity(
        paths in paths_strategy(),
        caps in caps_strategy(),
        lambda in 0.1f64..50.0,
    ) {
        let base = solve(&caps, &paths);
        let scaled_caps: Vec<f64> = caps.iter().map(|c| c * lambda).collect();
        let scaled = solve(&scaled_caps, &paths);
        for (f, (&a, &b)) in base.iter().zip(&scaled).enumerate() {
            if a.is_infinite() {
                prop_assert!(b.is_infinite());
            } else {
                prop_assert!(
                    (b - a * lambda).abs() <= a.abs() * lambda * 1e-9 + 1e-9,
                    "flow {f}: {a} scaled by {lambda} gave {b}"
                );
            }
        }
    }

    /// The solver's scratch state is fully reset between calls: solving a
    /// different problem and then the original again reproduces the first
    /// answer exactly.
    #[test]
    fn solver_state_resets_between_calls(
        paths_a in paths_strategy(),
        paths_b in paths_strategy(),
        caps in caps_strategy(),
    ) {
        let mut solver = MaxMinSolver::new(caps.clone()).unwrap();
        let mut first = vec![0.0; paths_a.len()];
        solver.solve(&paths_a, &mut first);
        let mut other = vec![0.0; paths_b.len()];
        solver.solve(&paths_b, &mut other);
        let mut again = vec![0.0; paths_a.len()];
        solver.solve(&paths_a, &mut again);
        prop_assert_eq!(first, again);
    }
}
