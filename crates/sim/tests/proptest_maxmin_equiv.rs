//! Property tests for the incremental entry API of [`MaxMinSolver`]: under
//! arbitrary join/leave/reroute/invalidate sequences — with and without
//! coalescing, and under real `FaultOverlay` path churn — the incremental
//! rates match a from-scratch `MaxMinSolver::solve` over the same flow set.
//!
//! The design guarantee is stronger than the 1e-9 tolerance the engine
//! needs: the incremental path is *bit-identical* to the full solve (see
//! the `maxmin` module docs), and that is what these tests assert.

use exaflow_netgraph::{LinkId, NodeId};
use exaflow_sim::maxmin::{MaxMinSolver, PARALLEL_MIN_ENTRIES};
use exaflow_sim::WorkerPool;
use exaflow_topo::{FaultOverlay, Topology, Torus};
use proptest::prelude::*;
use std::sync::Arc;

const RESOURCES: usize = 24;

/// Resource pool wide enough that passes regularly clear
/// [`PARALLEL_MIN_ENTRIES`] and actually dispatch to the worker pool.
const WIDE_RESOURCES: usize = 2 * PARALLEL_MIN_ENTRIES;

/// Arbitrary loop-free paths over `RESOURCES` resources. Empty paths are
/// legal (unconstrained flows).
fn path_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..RESOURCES as u32, 0..6).prop_map(|mut p| {
        p.sort_unstable();
        p.dedup();
        p
    })
}

fn caps_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.5f64..500.0, RESOURCES)
}

/// Op stream: the `u8` selects join/leave/reroute/invalidate, the path
/// feeds joins and reroutes, the `usize` picks the affected flow.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, Vec<u32>, usize)>> {
    prop::collection::vec((0u8..8, path_strategy(), 0usize..1 << 16), 1..50)
}

/// From-scratch reference: a fresh solver's `solve` over `paths`.
fn reference_rates(caps: &[f64], paths: &[Vec<u32>]) -> Vec<f64> {
    let mut solver = MaxMinSolver::new(caps.to_vec()).unwrap();
    let mut rates = vec![0.0; paths.len()];
    solver.solve(paths, &mut rates);
    rates
}

/// Assert the incremental solver's per-flow rates are bit-identical to the
/// reference (which trivially satisfies the 1e-9 requirement).
fn assert_rates_match(solver: &MaxMinSolver, live: &[(u32, Vec<u32>)], caps: &[f64], step: usize) {
    let paths: Vec<Vec<u32>> = live.iter().map(|(_, p)| p.clone()).collect();
    let want = reference_rates(caps, &paths);
    for (i, &(entry, ref path)) in live.iter().enumerate() {
        let got = solver.entry_rate(entry);
        assert!(
            got.to_bits() == want[i].to_bits(),
            "step {step}, flow {i} (path {path:?}): incremental {got:e} != full {:e}",
            want[i]
        );
    }
}

fn run_op_sequence(
    caps: Vec<f64>,
    ops: Vec<(u8, Vec<u32>, usize)>,
    coalesce: bool,
    threshold: f64,
) {
    let mut solver = MaxMinSolver::new(caps.clone()).unwrap();
    // Mirror of the live flows: (entry id, path). Coalesced flows share ids.
    let mut live: Vec<(u32, Vec<u32>)> = Vec::new();
    for (step, (kind, path, pick)) in ops.into_iter().enumerate() {
        match kind {
            0..=2 => {
                let id = solver.insert_entry(Arc::from(path.clone()), coalesce);
                live.push((id, path));
            }
            3 | 4 => {
                if !live.is_empty() {
                    let (id, _) = live.swap_remove(pick % live.len());
                    solver.remove_entry(id);
                }
            }
            5 | 6 => {
                if !live.is_empty() {
                    let i = pick % live.len();
                    solver.remove_entry(live[i].0);
                    let id = solver.insert_entry(Arc::from(path.clone()), coalesce);
                    live[i] = (id, path);
                }
            }
            _ => solver.invalidate_all(),
        }
        solver.recompute(true, threshold);
        assert_rates_match(&solver, &live, &caps, step);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join/leave/reroute/invalidate churn, uncoalesced entries.
    #[test]
    fn incremental_matches_full_solve(
        caps in caps_strategy(),
        ops in ops_strategy(),
        threshold in 0.0f64..1.2,
    ) {
        run_op_sequence(caps, ops, false, threshold);
    }

    /// The same churn with identical-path coalescing: weighted entries must
    /// still land on the exact rates of the separate-flow solve.
    #[test]
    fn coalesced_incremental_matches_full_solve(
        caps in caps_strategy(),
        ops in ops_strategy(),
        threshold in 0.0f64..1.2,
    ) {
        run_op_sequence(caps, ops, true, threshold);
    }

    /// A degenerate threshold of 0 forces the full-fallback path on every
    /// recompute; it must agree with the purely incremental path.
    #[test]
    fn zero_threshold_always_full(caps in caps_strategy(), ops in ops_strategy()) {
        run_op_sequence(caps, ops, true, 0.0);
    }
}

/// Paths for the threaded churn test: wider and longer than
/// [`path_strategy`] so components routinely span many resources.
fn wide_path_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..WIDE_RESOURCES as u32, 0..12).prop_map(|mut p| {
        p.sort_unstable();
        p.dedup();
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The churn of `incremental_matches_full_solve` stepped through three
    /// solvers in lockstep — no pool, a 2-thread pool, an 8-thread pool:
    /// every live entry's rate is `to_bits`-identical across all three at
    /// every step, and the pooled solvers genuinely run the parallel
    /// water-fill (a preload of shared-bottleneck entries keeps every
    /// pass over them above [`PARALLEL_MIN_ENTRIES`]).
    #[test]
    fn threaded_churn_is_bit_identical_across_pool_sizes(
        caps in prop::collection::vec(0.5f64..500.0, WIDE_RESOURCES),
        ops in prop::collection::vec(
            (0u8..8, wide_path_strategy(), 0usize..1 << 16),
            1..30,
        ),
        threshold in 0.0f64..1.2,
    ) {
        let pools = [None, Some(WorkerPool::new(2)), Some(WorkerPool::new(8))];
        let mut solvers: Vec<MaxMinSolver> = pools
            .iter()
            .map(|_| MaxMinSolver::new(caps.clone()).unwrap())
            .collect();
        let mut live: Vec<(u32, Vec<u32>)> = Vec::new();

        // Preload one component of 3x the parallel threshold: every entry
        // crosses resource 0, so any pass touching the component covers
        // all of them and clears the parallel gate. Identical op order
        // means identical entry ids across the three solvers.
        for i in 0..PARALLEL_MIN_ENTRIES as u32 * 3 {
            let mut path = vec![0, 1 + i % (WIDE_RESOURCES as u32 - 1)];
            path.dedup();
            let mut id = 0;
            for s in solvers.iter_mut() {
                id = s.insert_entry(Arc::from(path.clone()), false);
            }
            live.push((id, path));
        }

        let check = |solvers: &mut [MaxMinSolver], live: &[(u32, Vec<u32>)], step: usize| {
            for (s, pool) in solvers.iter_mut().zip(&pools) {
                s.recompute_with(true, threshold, pool.as_ref());
            }
            let (reference, pooled) = solvers.split_first().unwrap();
            for p in pooled {
                for &(entry, ref path) in live {
                    let (got, want) = (p.entry_rate(entry), reference.entry_rate(entry));
                    assert!(
                        got.to_bits() == want.to_bits(),
                        "step {step}, entry {entry} (path {path:?}): \
                         pooled {got:e} != sequential {want:e}"
                    );
                }
            }
        };
        check(&mut solvers, &live, usize::MAX);

        for (step, (kind, path, pick)) in ops.into_iter().enumerate() {
            match kind {
                0..=2 => {
                    let mut id = 0;
                    for s in solvers.iter_mut() {
                        id = s.insert_entry(Arc::from(path.clone()), false);
                    }
                    live.push((id, path));
                }
                3 | 4 => {
                    let (id, _) = live.swap_remove(pick % live.len());
                    for s in solvers.iter_mut() {
                        s.remove_entry(id);
                    }
                }
                5 | 6 => {
                    let i = pick % live.len();
                    let old = live[i].0;
                    let mut id = 0;
                    for s in solvers.iter_mut() {
                        s.remove_entry(old);
                        id = s.insert_entry(Arc::from(path.clone()), false);
                    }
                    live[i] = (id, path);
                }
                _ => solvers.iter_mut().for_each(MaxMinSolver::invalidate_all),
            }
            check(&mut solvers, &live, step);
        }

        prop_assert_eq!(solvers[0].parallel_passes, 0);
        prop_assert!(
            solvers[1].parallel_passes > 0,
            "the 2-thread pool never took the parallel water-fill"
        );
        prop_assert_eq!(solvers[1].parallel_passes, solvers[2].parallel_passes);
    }
}

/// Engine-shaped churn through a real [`FaultOverlay`]: flows between
/// endpoint pairs of a 4x4 torus, links failing and recovering mid-stream,
/// affected entries rerouted (or dropped when partitioned) and the solver
/// invalidated — exactly the `run_with_faults` contract.
#[test]
fn overlay_path_churn_matches_full_solve() {
    let topo = Torus::new(&[4, 4]);
    let num_links = topo.network().num_links();
    let num_eps = topo.num_endpoints();
    let caps = vec![10e9; num_links + 2 * num_eps];
    let build = |overlay: &mut FaultOverlay, src: u32, dst: u32| -> Option<Vec<u32>> {
        let mut links: Vec<LinkId> = Vec::new();
        overlay
            .try_route(NodeId(src), NodeId(dst), &mut links)
            .ok()?;
        let mut p = vec![(num_links + src as usize) as u32];
        p.extend(links.iter().map(|l| l.0));
        p.push((num_links + num_eps + dst as usize) as u32);
        Some(p)
    };

    for coalesce in [false, true] {
        let mut overlay = FaultOverlay::new(&topo);
        let mut solver = MaxMinSolver::new(caps.clone()).unwrap();
        let mut live: Vec<(u32, u32, u32, Vec<u32>)> = Vec::new(); // (entry, src, dst, path)
        let mut x = 0x2545F49_u64; // deterministic xorshift stream
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for step in 0..400 {
            match rng() % 5 {
                0 | 1 => {
                    // Join a random pair (duplicates welcome: they coalesce).
                    let (src, dst) = (rng() as u32 % 16, rng() as u32 % 16);
                    if src != dst {
                        if let Some(p) = build(&mut overlay, src, dst) {
                            let id = solver.insert_entry(Arc::from(p.clone()), coalesce);
                            live.push((id, src, dst, p));
                        }
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let i = rng() as usize % live.len();
                        let (id, ..) = live.swap_remove(i);
                        solver.remove_entry(id);
                    }
                }
                3 => {
                    // Fail a link; reroute every flow crossing it.
                    let l = rng() as u32 % num_links as u32;
                    if overlay.fail_link(LinkId(l)) {
                        solver.invalidate_all();
                        let mut i = 0;
                        while i < live.len() {
                            if !live[i].3.contains(&l) {
                                i += 1;
                                continue;
                            }
                            let (id, src, dst, _) = live[i].clone();
                            solver.remove_entry(id);
                            match build(&mut overlay, src, dst) {
                                Some(p) => {
                                    let nid = solver.insert_entry(Arc::from(p.clone()), coalesce);
                                    live[i] = (nid, src, dst, p);
                                    i += 1;
                                }
                                None => {
                                    live.swap_remove(i); // partitioned: drop
                                }
                            }
                        }
                    }
                }
                _ => {
                    let l = rng() as u32 % num_links as u32;
                    if overlay.restore_link(LinkId(l)) {
                        solver.invalidate_all();
                    }
                }
            }
            solver.recompute(true, 0.5);
            let flows: Vec<(u32, Vec<u32>)> =
                live.iter().map(|(id, _, _, p)| (*id, p.clone())).collect();
            assert_rates_match(&solver, &flows, &caps, step);
        }
        assert!(solver.rate_recomputes > 0);
    }
}
