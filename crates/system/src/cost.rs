//! The cost/power model of the paper's Table 2.
//!
//! The paper publishes switch counts plus "back-of-the-envelope" cost and
//! power overheads for every hybrid configuration. The percentages are
//! internally consistent with a simple linear model, which we adopt:
//!
//! * one upper-tier switch costs **0.75×** a QFDB,
//! * one upper-tier switch draws **0.25×** a QFDB's power,
//! * overhead = `switches · ratio / qfdbs`.
//!
//! Switch counts follow the paper's own closed forms (reverse-engineered
//! and documented in DESIGN.md §5):
//!
//! * `NestTree`: with `U = qfdbs/u` uplinks, `U/16` 16-down-port leaf
//!   switches plus a fixed 1024-switch spine — at `u = 1` this equals the
//!   paper's 9216-switch standalone fattree.
//! * `NestGHC`: identical to the tree *except* at `u = 1`, where the paper
//!   counts `U/16 = 8192` sixteen-port FPGA routers and no spine.
//!
//! The paper's Table 2 lists identical NestGHC and NestTree columns for
//! u ∈ {2, 4, 8}; we reproduce that (and flag it), while the `table2`
//! harness also prints the switch counts of our *as-built* upper tiers for
//! comparison.

use serde::{Deserialize, Serialize};

/// Which upper tier a configuration uses.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum UpperTier {
    /// 3-stage fattree.
    Fattree,
    /// Generalised hypercube of 16-port FPGA routers.
    GeneralizedHypercube,
}

/// Cost/power overhead estimates.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Overheads {
    /// Upper-tier switches required.
    pub switches: u64,
    /// Cost increase relative to the switchless torus system, in percent.
    pub cost_increase_pct: f64,
    /// Power increase relative to the switchless torus system, in percent.
    pub power_increase_pct: f64,
}

/// The linear cost model described in the module docs.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Switch cost as a fraction of QFDB cost.
    pub switch_cost_ratio: f64,
    /// Switch power as a fraction of QFDB power.
    pub switch_power_ratio: f64,
    /// Downlinks per leaf switch / ports per GHC router.
    pub ports_per_switch: u64,
    /// Fixed spine switches above the leaf stage of a NestTree.
    pub tree_spine_switches: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            switch_cost_ratio: 0.75,
            switch_power_ratio: 0.25,
            ports_per_switch: 16,
            tree_spine_switches: 1024,
        }
    }
}

impl CostModel {
    /// Upper-tier switch count for `NestX(t, u)` at system size `qfdbs`,
    /// following the paper's closed forms. Independent of `t`, exactly as
    /// in Table 2.
    pub fn paper_switch_count(&self, tier: UpperTier, qfdbs: u64, u: u32) -> u64 {
        assert!(u >= 1);
        let uplinks = qfdbs / u as u64;
        let leaves = uplinks / self.ports_per_switch;
        match tier {
            UpperTier::GeneralizedHypercube if u == 1 => leaves,
            _ => leaves + self.tree_spine_switches,
        }
    }

    /// Switch count of the paper's standalone fattree reference (equals the
    /// NestTree count at u = 1).
    pub fn paper_fattree_switch_count(&self, qfdbs: u64) -> u64 {
        self.paper_switch_count(UpperTier::Fattree, qfdbs, 1)
    }

    /// Overheads for a given switch count at system size `qfdbs`.
    pub fn overheads(&self, switches: u64, qfdbs: u64) -> Overheads {
        Overheads {
            switches,
            cost_increase_pct: switches as f64 * self.switch_cost_ratio / qfdbs as f64 * 100.0,
            power_increase_pct: switches as f64 * self.switch_power_ratio / qfdbs as f64 * 100.0,
        }
    }

    /// Overheads for `NestX(t, u)` straight from the paper model.
    pub fn paper_overheads(&self, tier: UpperTier, qfdbs: u64, u: u32) -> Overheads {
        self.overheads(self.paper_switch_count(tier, qfdbs, u), qfdbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 131_072;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 0.005
    }

    #[test]
    fn table2_switch_counts_every_row() {
        // (u, NestGHC switches, NestTree switches) — Table 2 is identical
        // for t ∈ {2, 4, 8}.
        let m = CostModel::default();
        let rows = [
            (8u32, 2048u64, 2048u64),
            (4, 3072, 3072),
            (2, 5120, 5120),
            (1, 8192, 9216),
        ];
        for (u, ghc, tree) in rows {
            assert_eq!(
                m.paper_switch_count(UpperTier::GeneralizedHypercube, N, u),
                ghc,
                "GHC u={u}"
            );
            assert_eq!(
                m.paper_switch_count(UpperTier::Fattree, N, u),
                tree,
                "tree u={u}"
            );
        }
    }

    #[test]
    fn table2_cost_and_power_percentages() {
        let m = CostModel::default();
        // Paper: (u, cost%, power%) for the tree column.
        let rows = [
            (8u32, 1.17, 0.39),
            (4, 1.76, 0.59),
            (2, 2.93, 0.98),
            (1, 5.27, 1.76),
        ];
        for (u, cost, power) in rows {
            let o = m.paper_overheads(UpperTier::Fattree, N, u);
            assert!(
                approx(o.cost_increase_pct, cost),
                "u={u}: {}",
                o.cost_increase_pct
            );
            assert!(
                approx(o.power_increase_pct, power),
                "u={u}: {}",
                o.power_increase_pct
            );
        }
        // GHC at u=1: 4.69% / 1.56%.
        let g = m.paper_overheads(UpperTier::GeneralizedHypercube, N, 1);
        assert!(approx(g.cost_increase_pct, 4.69));
        assert!(approx(g.power_increase_pct, 1.56));
    }

    #[test]
    fn fattree_reference() {
        let m = CostModel::default();
        assert_eq!(m.paper_fattree_switch_count(N), 9216);
        let o = m.overheads(9216, N);
        assert!(approx(o.cost_increase_pct, 5.27));
        assert!(approx(o.power_increase_pct, 1.76));
    }

    #[test]
    fn overheads_scale_linearly() {
        let m = CostModel::default();
        let a = m.overheads(1000, N);
        let b = m.overheads(2000, N);
        assert!(approx(b.cost_increase_pct, 2.0 * a.cost_increase_pct));
    }
}
