//! QFDB / blade / system packaging (paper §3 and Figure 1).

use serde::{Deserialize, Serialize};

/// A Quad-FPGA daughterboard.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Qfdb;

impl Qfdb {
    /// Zynq Ultrascale+ MPSoCs per board.
    pub const MPSOCS: u32 = 4;
    /// 10 Gbps transceiver ports per board.
    pub const PORTS: u32 = 10;
    /// Ports consumed by the intra-blade 3-D mesh.
    pub const MESH_PORTS: u32 = 6;
    /// Ports reserved for external 10 GbE.
    pub const ETHERNET_PORTS: u32 = 1;

    /// Ports available to uplink into the higher interconnect tiers.
    pub const fn uplink_ports() -> u32 {
        Self::PORTS - Self::MESH_PORTS - Self::ETHERNET_PORTS
    }
}

/// A blade: 16 QFDBs on a backplane arranged as a 4×2×2 mesh.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blade;

impl Blade {
    /// QFDBs per blade.
    pub const QFDBS: u32 = 16;
    /// The blade's internal mesh arrangement.
    pub const MESH_DIMS: [u32; 3] = [4, 2, 2];
}

/// Whole-system accounting for a given QFDB count.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemHierarchy {
    /// Total QFDBs in the system.
    pub qfdbs: u64,
}

impl SystemHierarchy {
    /// The paper's evaluation scale: 131 072 QFDBs ("around 50 cabinets").
    pub const PAPER_SCALE: SystemHierarchy = SystemHierarchy { qfdbs: 131_072 };

    /// Create for an arbitrary scale.
    pub fn new(qfdbs: u64) -> Self {
        SystemHierarchy { qfdbs }
    }

    /// MPSoCs ("Zynq FPGAs") in the system. The paper quotes "over half a
    /// million Zynq FPGAs" at the evaluation scale.
    pub fn mpsocs(&self) -> u64 {
        self.qfdbs * Qfdb::MPSOCS as u64
    }

    /// Number of blades (rounded up).
    pub fn blades(&self) -> u64 {
        self.qfdbs.div_ceil(Blade::QFDBS as u64)
    }

    /// Uplink-capable ports in the whole system.
    pub fn uplink_ports(&self) -> u64 {
        self.qfdbs * Qfdb::uplink_ports() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qfdb_port_budget() {
        // 10 ports = 6 mesh + 1 ethernet + 3 uplinks (paper §3).
        assert_eq!(Qfdb::uplink_ports(), 3);
        assert_eq!(
            Qfdb::MESH_PORTS + Qfdb::ETHERNET_PORTS + Qfdb::uplink_ports(),
            Qfdb::PORTS
        );
    }

    #[test]
    fn blade_mesh_is_16_boards() {
        let n: u32 = Blade::MESH_DIMS.iter().product();
        assert_eq!(n, Blade::QFDBS);
    }

    #[test]
    fn paper_scale_quotes() {
        let s = SystemHierarchy::PAPER_SCALE;
        // "over half a million Zynq FPGAAs" — 4 * 131072 = 524288.
        assert_eq!(s.mpsocs(), 524_288);
        assert!(s.mpsocs() > 500_000);
        assert_eq!(s.blades(), 8192);
    }

    #[test]
    fn rounding_up_blades() {
        assert_eq!(SystemHierarchy::new(17).blades(), 2);
        assert_eq!(SystemHierarchy::new(16).blades(), 1);
    }
}
