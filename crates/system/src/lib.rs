//! The ExaNeSt system model: packaging hierarchy and the cost/power
//! accounting behind the paper's Table 2.
//!
//! The unit of compute is the **QFDB** (Quad-FPGA daughterboard): four
//! Xilinx Zynq Ultrascale+ MPSoCs with ten 10 Gbps transceivers. Sixteen
//! QFDBs form a blade over a backplane in a fixed 4×2×2 mesh; blades extend
//! the mesh seamlessly into a torus across the machine. Of each QFDB's ten
//! links, six serve the intra-blade mesh, one is reserved for external
//! 10 GbE, and up to three may uplink into the higher tiers of the hybrid
//! interconnect.

pub mod cost;
pub mod hierarchy;

pub use cost::{CostModel, Overheads, UpperTier};
pub use hierarchy::{Blade, Qfdb, SystemHierarchy};
