//! Uplink-density connection rules (the paper's Figure 3).
//!
//! A subtorus of `t×t×t` QFDBs exposes one uplink to the upper tier for
//! every `u` QFDBs, with `u ∈ {1, 2, 4, 8}`. Placement follows the paper:
//! the subtorus is tiled with 2×2×2 subgrids and within each subgrid:
//!
//! * `u = 1`: every node is uplinked.
//! * `u = 2`: the four nodes with even X are uplinked; every other node has
//!   an uplinked neighbour one hop away in the X dimension.
//! * `u = 4`: two opposite vertices of the subgrid are uplinked, so every
//!   node is at most one hop from an uplink.
//! * `u = 8`: only the subgrid root (its even-coordinate corner) is
//!   uplinked; the farthest node is three hops away.
//!
//! [`UplinkMap`] precomputes, for every local node of a subtorus, whether it
//! is uplinked and which uplinked node it routes through (the paper's
//! "closest uplinked node", deterministic).

use crate::mixed_radix::MixedRadix;
use serde::{Deserialize, Serialize};

/// Uplink density: one uplink per `u` QFDBs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ConnectionRule {
    /// `u = 1`: every node uplinked.
    EveryNode,
    /// `u = 2`: nodes with even X uplinked.
    HalfNodes,
    /// `u = 4`: opposite vertices of each 2×2×2 subgrid uplinked.
    QuarterNodes,
    /// `u = 8`: root of each 2×2×2 subgrid uplinked.
    EighthNodes,
}

impl ConnectionRule {
    /// The `u` parameter: QFDBs per uplink.
    pub fn u(self) -> u32 {
        match self {
            ConnectionRule::EveryNode => 1,
            ConnectionRule::HalfNodes => 2,
            ConnectionRule::QuarterNodes => 4,
            ConnectionRule::EighthNodes => 8,
        }
    }

    /// Parse from the paper's `u` value.
    pub fn from_u(u: u32) -> Option<Self> {
        match u {
            1 => Some(ConnectionRule::EveryNode),
            2 => Some(ConnectionRule::HalfNodes),
            4 => Some(ConnectionRule::QuarterNodes),
            8 => Some(ConnectionRule::EighthNodes),
            _ => None,
        }
    }

    /// All four rules in the paper's order of decreasing density.
    pub fn all() -> [ConnectionRule; 4] {
        [
            ConnectionRule::EveryNode,
            ConnectionRule::HalfNodes,
            ConnectionRule::QuarterNodes,
            ConnectionRule::EighthNodes,
        ]
    }

    /// Whether a local node at `coords` is uplinked under this rule.
    ///
    /// Requires every coordinate dimension to be even-sized for rules other
    /// than [`ConnectionRule::EveryNode`] (the 2×2×2 tiling must fit).
    pub fn is_uplinked(self, coords: &[u32]) -> bool {
        match self {
            ConnectionRule::EveryNode => true,
            ConnectionRule::HalfNodes => coords[0].is_multiple_of(2),
            ConnectionRule::QuarterNodes => {
                // Opposite vertices of the 2x2x2 subgrid: parity (0,0,..,0)
                // or (1,1,..,1).
                let first = coords[0] % 2;
                coords.iter().all(|&c| c % 2 == first)
            }
            ConnectionRule::EighthNodes => coords.iter().all(|&c| c % 2 == 0),
        }
    }

    /// Local coordinates of the uplinked node that `coords` routes through
    /// (the closest uplinked node; `coords` itself when uplinked).
    pub fn uplink_target(self, coords: &[u32]) -> Vec<u32> {
        match self {
            ConnectionRule::EveryNode => coords.to_vec(),
            ConnectionRule::HalfNodes => {
                let mut c = coords.to_vec();
                c[0] -= c[0] % 2;
                c
            }
            ConnectionRule::QuarterNodes => {
                // Within the subgrid, go to the nearer of the two uplinked
                // vertices: parity popcount <= half => base corner, else the
                // all-ones corner.
                let base: Vec<u32> = coords.iter().map(|&c| c - c % 2).collect();
                let ones: u32 = coords.iter().map(|&c| c % 2).sum();
                if ones * 2 <= coords.len() as u32 {
                    base
                } else {
                    base.iter().map(|&c| c + 1).collect()
                }
            }
            ConnectionRule::EighthNodes => coords.iter().map(|&c| c - c % 2).collect(),
        }
    }
}

/// Precomputed uplink structure for one subtorus shape.
#[derive(Clone, Debug)]
pub struct UplinkMap {
    /// For each local node: the local id of its uplink target.
    target: Vec<u32>,
    /// Local ids of uplinked nodes, ascending.
    uplinked: Vec<u32>,
    /// For each local node: index into `uplinked` of its target, i.e. the
    /// *uplink ordinal* within the subtorus.
    target_ordinal: Vec<u32>,
    rule: ConnectionRule,
}

impl UplinkMap {
    /// Build the map for a subtorus with the given shape.
    ///
    /// Panics if the rule's 2×2×2 tiling does not fit the shape (odd-sized
    /// dimensions with `u > 1`).
    pub fn new(shape: &MixedRadix, rule: ConnectionRule) -> Self {
        if rule != ConnectionRule::EveryNode {
            assert!(
                shape.dims().iter().all(|&d| d % 2 == 0),
                "connection rule u={} requires even dimensions, got {:?}",
                rule.u(),
                shape.dims()
            );
        }
        let n = shape.len();
        let mut target = Vec::with_capacity(n as usize);
        let mut uplinked = Vec::new();
        let mut coords = Vec::new();
        for i in 0..n {
            shape.decode_into(i, &mut coords);
            if rule.is_uplinked(&coords) {
                uplinked.push(i as u32);
            }
            let t = shape.encode(&rule.uplink_target(&coords));
            target.push(t as u32);
        }
        let ordinal_of = |local: u32| -> u32 {
            uplinked
                .binary_search(&local)
                .expect("uplink target must itself be uplinked") as u32
        };
        let target_ordinal = target.iter().map(|&t| ordinal_of(t)).collect();
        UplinkMap {
            target,
            uplinked,
            target_ordinal,
            rule,
        }
    }

    /// The connection rule.
    pub fn rule(&self) -> ConnectionRule {
        self.rule
    }

    /// Number of uplinks in the subtorus.
    pub fn num_uplinks(&self) -> usize {
        self.uplinked.len()
    }

    /// Local ids of the uplinked nodes, ascending.
    pub fn uplinked(&self) -> &[u32] {
        &self.uplinked
    }

    /// Local id of the uplink target of `local`.
    #[inline]
    pub fn target(&self, local: u32) -> u32 {
        self.target[local as usize]
    }

    /// Ordinal (0-based index among this subtorus' uplinks) of the uplink
    /// target of `local`.
    #[inline]
    pub fn target_ordinal(&self, local: u32) -> u32 {
        self.target_ordinal[local as usize]
    }

    /// Whether `local` is itself uplinked.
    #[inline]
    pub fn is_uplinked(&self, local: u32) -> bool {
        self.target[local as usize] == local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subtorus(t: u32) -> MixedRadix {
        MixedRadix::new(&[t, t, t])
    }

    #[test]
    fn densities_match_u() {
        for t in [2u32, 4, 8] {
            let shape = subtorus(t);
            for rule in ConnectionRule::all() {
                let map = UplinkMap::new(&shape, rule);
                let expect = (t * t * t) / rule.u();
                assert_eq!(map.num_uplinks() as u32, expect, "t={t} u={}", rule.u());
            }
        }
    }

    #[test]
    fn u1_everyone_uplinked() {
        let map = UplinkMap::new(&subtorus(2), ConnectionRule::EveryNode);
        for i in 0..8 {
            assert!(map.is_uplinked(i));
            assert_eq!(map.target(i), i);
        }
    }

    #[test]
    fn u2_even_x_and_one_hop() {
        let shape = subtorus(4);
        let map = UplinkMap::new(&shape, ConnectionRule::HalfNodes);
        let mut coords = Vec::new();
        for i in 0..shape.len() {
            shape.decode_into(i, &mut coords);
            let up = map.is_uplinked(i as u32);
            assert_eq!(up, coords[0] % 2 == 0);
            if !up {
                // Target is one hop away in X.
                let t = map.target(i as u32);
                let tc = shape.decode(t as u64);
                assert_eq!(tc[0] + 1, coords[0]);
                assert_eq!(tc[1], coords[1]);
                assert_eq!(tc[2], coords[2]);
            }
        }
    }

    #[test]
    fn u4_at_most_one_hop() {
        let shape = subtorus(4);
        let map = UplinkMap::new(&shape, ConnectionRule::QuarterNodes);
        let mut coords = Vec::new();
        for i in 0..shape.len() {
            shape.decode_into(i, &mut coords);
            let t = map.target(i as u32);
            let tc = shape.decode(t as u64);
            let hops: u32 = coords.iter().zip(&tc).map(|(&a, &b)| a.abs_diff(b)).sum();
            assert!(hops <= 1, "node {coords:?} target {tc:?} is {hops} hops");
        }
    }

    #[test]
    fn u8_at_most_three_hops_via_root() {
        let shape = subtorus(8);
        let map = UplinkMap::new(&shape, ConnectionRule::EighthNodes);
        let mut coords = Vec::new();
        for i in 0..shape.len() {
            shape.decode_into(i, &mut coords);
            let t = map.target(i as u32);
            let tc = shape.decode(t as u64);
            let hops: u32 = coords.iter().zip(&tc).map(|(&a, &b)| a.abs_diff(b)).sum();
            assert!(hops <= 3);
            assert!(tc.iter().all(|&c| c % 2 == 0));
        }
    }

    #[test]
    fn targets_are_uplinked_nodes() {
        for rule in ConnectionRule::all() {
            let shape = subtorus(4);
            let map = UplinkMap::new(&shape, rule);
            for i in 0..shape.len() as u32 {
                let t = map.target(i);
                assert!(map.is_uplinked(t), "u={} node {i}", rule.u());
                assert_eq!(map.uplinked()[map.target_ordinal(i) as usize], t);
            }
        }
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn odd_dims_rejected_for_dense_rules() {
        UplinkMap::new(&MixedRadix::new(&[3, 3, 3]), ConnectionRule::HalfNodes);
    }

    #[test]
    fn from_u_roundtrip() {
        for rule in ConnectionRule::all() {
            assert_eq!(ConnectionRule::from_u(rule.u()), Some(rule));
        }
        assert_eq!(ConnectionRule::from_u(3), None);
    }
}
