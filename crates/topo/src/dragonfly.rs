//! Dragonfly topology (Kim, Dally, Scott, Abts — ISCA'08).
//!
//! **Extension beyond the paper**: the paper's related-work section singles
//! out the dragonfly as "one of the latest network organizations … getting
//! great interest" but does not evaluate it; this implementation makes it
//! available as an additional comparator for the design exploration.
//!
//! Structure, with `p` endpoints, `a` routers per group and `h` global
//! ports per router (balanced designs use `a = 2p = 2h`):
//!
//! * routers within a group form a complete graph,
//! * every router owns `h` global ports; with the *absolute* arrangement,
//!   global port `q ∈ [0, a·h)` of group `i` connects to group `q` (skipping
//!   `i` itself), giving exactly one global cable per group pair at the
//!   maximum size `g = a·h + 1`,
//! * minimal routing takes at most one local hop, one global hop and one
//!   more local hop (diameter 5 counting the two endpoint links).

use crate::{Topology, LINK_RATE_BPS};
use exaflow_netgraph::{LinkId, Network, NetworkBuilder, NodeId};

/// A dragonfly of `groups` groups, `a` routers per group, `p` endpoints per
/// router and `h` global ports per router.
#[derive(Debug)]
pub struct Dragonfly {
    net: Network,
    groups: u32,
    a: u32,
    p: u32,
    h: u32,
    /// `local[(g*a + r1)*a + r2]` = link (g,r1) → (g,r2); unused on diagonal.
    local: Vec<u32>,
    /// `global[g*a*h + q]` = global link leaving port q of group g.
    global: Vec<u32>,
    /// endpoint ↔ router attach links.
    ep_up: Vec<u32>,
    ep_down: Vec<u32>,
}

impl Dragonfly {
    /// The balanced dragonfly for a given `p`: `a = 2p`, `h = p`, and the
    /// full `a·h + 1` groups.
    pub fn balanced(p: u32) -> Self {
        let a = 2 * p;
        let h = p;
        Self::new(a * h + 1, a, p, h)
    }

    /// Build a dragonfly at 10 Gbps. `groups` must be at least 1 and at
    /// most `a·h + 1` (one global cable per group pair, no parallel cables).
    pub fn new(groups: u32, a: u32, p: u32, h: u32) -> Self {
        Self::with_capacity_bps(groups, a, p, h, LINK_RATE_BPS)
    }

    /// Build with a custom link capacity.
    pub fn with_capacity_bps(groups: u32, a: u32, p: u32, h: u32, capacity_bps: f64) -> Self {
        assert!(groups >= 1 && a >= 1 && p >= 1 && h >= 1);
        assert!(
            groups <= a * h + 1,
            "{groups} groups exceed the {} supported by a*h global ports",
            a * h + 1
        );
        let routers = groups as u64 * a as u64;
        let eps = routers * p as u64;
        let mut b = NetworkBuilder::new();
        b.add_endpoints(eps as usize);
        let router_base = eps as u32;
        let router_node = |g: u32, r: u32| NodeId(router_base + g * a + r);
        b.add_switches(routers as usize);

        let mut ep_up = vec![0u32; eps as usize];
        let mut ep_down = vec![0u32; eps as usize];
        for e in 0..eps as u32 {
            let router = e / p;
            let (up, down) = b.add_duplex(NodeId(e), NodeId(router_base + router), capacity_bps);
            ep_up[e as usize] = up.0;
            ep_down[e as usize] = down.0;
        }

        // Local complete graphs.
        let mut local = vec![u32::MAX; (groups * a) as usize * a as usize];
        for g in 0..groups {
            for r1 in 0..a {
                for r2 in r1 + 1..a {
                    let (fwd, back) =
                        b.add_duplex(router_node(g, r1), router_node(g, r2), capacity_bps);
                    local[((g * a + r1) * a + r2) as usize] = fwd.0;
                    local[((g * a + r2) * a + r1) as usize] = back.0;
                }
            }
        }

        // Global links, absolute arrangement: port q of group i targets
        // group q (shifted past i); build each cable once from the lower
        // group id.
        let mut global = vec![u32::MAX; (groups * a * h) as usize];
        for i in 0..groups {
            for q in 0..a * h {
                let j = if q < i { q } else { q + 1 };
                if j >= groups || j < i {
                    continue; // unused port at reduced size, or already built
                }
                // Reverse port on group j that targets group i.
                let q_back = i; // i < j, so no shift
                let (fwd, back) = b.add_duplex(
                    router_node(i, q / h),
                    router_node(j, q_back / h),
                    capacity_bps,
                );
                global[(i * a * h + q) as usize] = fwd.0;
                global[(j * a * h + q_back) as usize] = back.0;
            }
        }

        Dragonfly {
            net: b.build(),
            groups,
            a,
            p,
            h,
            local,
            global,
            ep_up,
            ep_down,
        }
    }

    /// Number of groups.
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Routers per group.
    pub fn routers_per_group(&self) -> u32 {
        self.a
    }

    /// Endpoints per router.
    pub fn endpoints_per_router(&self) -> u32 {
        self.p
    }

    /// Global ports per router.
    pub fn global_ports_per_router(&self) -> u32 {
        self.h
    }

    #[inline]
    fn router_of(&self, ep: u32) -> (u32, u32) {
        let router = ep / self.p;
        (router / self.a, router % self.a)
    }

    /// The global port of group `src_g` that reaches group `dst_g`.
    #[inline]
    fn global_port(&self, src_g: u32, dst_g: u32) -> u32 {
        debug_assert_ne!(src_g, dst_g);
        if dst_g < src_g {
            dst_g
        } else {
            dst_g - 1
        }
    }

    #[inline]
    fn local_link(&self, g: u32, r1: u32, r2: u32) -> LinkId {
        let raw = self.local[((g * self.a + r1) * self.a + r2) as usize];
        debug_assert_ne!(raw, u32::MAX);
        LinkId(raw)
    }
}

impl Topology for Dragonfly {
    fn name(&self) -> String {
        format!(
            "Dragonfly(g={},a={},p={},h={})",
            self.groups, self.a, self.p, self.h
        )
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        let (gs, rs) = self.router_of(src.0);
        let (gd, rd) = self.router_of(dst.0);
        path.push(LinkId(self.ep_up[src.0 as usize]));
        if gs == gd {
            if rs != rd {
                path.push(self.local_link(gs, rs, rd));
            }
        } else {
            let q = self.global_port(gs, gd);
            let exit = q / self.h;
            if rs != exit {
                path.push(self.local_link(gs, rs, exit));
            }
            path.push(LinkId(self.global[(gs * self.a * self.h + q) as usize]));
            let entry = self.global_port(gd, gs) / self.h;
            if entry != rd {
                path.push(self.local_link(gd, entry, rd));
            }
        }
        path.push(LinkId(self.ep_down[dst.0 as usize]));
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        if src == dst {
            return 0;
        }
        let (gs, rs) = self.router_of(src.0);
        let (gd, rd) = self.router_of(dst.0);
        if gs == gd {
            return 2 + u32::from(rs != rd);
        }
        let exit = self.global_port(gs, gd) / self.h;
        let entry = self.global_port(gd, gs) / self.h;
        2 + u32::from(rs != exit) + 1 + u32::from(entry != rd)
    }

    fn diameter_bound(&self) -> u32 {
        // up + local + global + local + down, counting the endpoint links.
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_route;
    use exaflow_netgraph::bfs_distances_physical;

    #[test]
    fn balanced_sizing() {
        let d = Dragonfly::balanced(2);
        // p=2: a=4, h=2, groups = 9, routers 36, endpoints 72.
        assert_eq!(d.groups(), 9);
        assert_eq!(d.num_endpoints(), 72);
        assert_eq!(d.network().num_switches(), 36);
    }

    #[test]
    fn routes_valid_all_pairs() {
        let d = Dragonfly::balanced(2);
        let e = d.num_endpoints() as u32;
        for s in (0..e).step_by(5) {
            for t in 0..e {
                check_route(&d, NodeId(s), NodeId(t)).unwrap();
            }
        }
    }

    #[test]
    fn routing_is_hierarchically_minimal() {
        // Dragonfly minimal routing is the shortest local-global-local
        // path. Graph-theoretic BFS can occasionally do better in small
        // configurations by chaining two global links, so the route is
        // bounded by BFS + 2 (one local detour on each side), never below
        // BFS.
        let d = Dragonfly::new(5, 2, 1, 2);
        for s in [0u32, 3, 7] {
            let bfs = bfs_distances_physical(d.network(), NodeId(s));
            for t in 0..d.num_endpoints() as u32 {
                let dist = d.distance(NodeId(s), NodeId(t));
                assert!(dist >= bfs[t as usize], "({s},{t})");
                assert!(dist <= bfs[t as usize] + 2, "({s},{t})");
            }
        }
        // With h = 1 the direct global link leaves the only candidate
        // router, and l-g-l *is* graph-minimal.
        let d1 = Dragonfly::new(3, 2, 1, 1);
        for s in 0..d1.num_endpoints() as u32 {
            let bfs = bfs_distances_physical(d1.network(), NodeId(s));
            for t in 0..d1.num_endpoints() as u32 {
                assert_eq!(
                    d1.distance(NodeId(s), NodeId(t)),
                    bfs[t as usize],
                    "({s},{t})"
                );
            }
        }
    }

    #[test]
    fn diameter_is_five() {
        let d = Dragonfly::balanced(2);
        let mut max = 0;
        for s in 0..d.num_endpoints() as u32 {
            for t in 0..d.num_endpoints() as u32 {
                max = max.max(d.distance(NodeId(s), NodeId(t)));
            }
        }
        assert_eq!(max, 5);
    }

    #[test]
    fn one_global_cable_per_group_pair() {
        let d = Dragonfly::balanced(2);
        // Count global links (router-router across groups).
        let base = d.num_endpoints() as u32;
        let a = d.routers_per_group();
        let mut count = 0;
        for l in d.network().links() {
            if l.src.0 >= base && l.dst.0 >= base {
                let gs = (l.src.0 - base) / a;
                let gd = (l.dst.0 - base) / a;
                if gs != gd {
                    count += 1;
                }
            }
        }
        // 9 groups: 36 pairs, 2 directed links each.
        assert_eq!(count, 72);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_groups_panics() {
        Dragonfly::new(10, 2, 1, 2);
    }
}
