//! Link-failure injection with fault-tolerant rerouting.
//!
//! **Extension beyond the paper** (flagged as future work in its §6: "we
//! are developing … mechanisms for fault tolerance"): [`Degraded`] wraps
//! any topology, marks a set of links as failed, and transparently reroutes
//! affected endpoint pairs over the surviving physical links via BFS. Pairs
//! whose deterministic route is unaffected keep their original path, so the
//! performance impact of a failure stays local — which is what makes the
//! wrapper useful for availability experiments.
//!
//! A destination that became unreachable (the failures partitioned the
//! network) surfaces as a [`RouteError`] through [`Topology::try_route`];
//! the infallible [`Topology::route`] keeps the documented panic for
//! callers that have already validated connectivity.

use crate::{RouteError, Topology};
use exaflow_netgraph::{LinkId, Network, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};

/// Reusable per-thread buffers for [`Degraded::is_affected`] and the BFS
/// reroute: the failure-resilience harness calls both once per flow, and a
/// fresh path vector plus an O(V) predecessor array per call thrashes the
/// allocator. Thread-local (rather than interior mutability on `Degraded`)
/// keeps the wrapper `Sync`, which the parallel suite runner relies on.
#[derive(Default)]
struct Scratch {
    path: Vec<LinkId>,
    pred: Vec<u32>,
    queue: VecDeque<NodeId>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// A topology with some links out of service.
pub struct Degraded<T: Topology> {
    inner: T,
    failed: HashSet<u32>,
    /// Duplex cables asked for / actually failed; both zero for
    /// [`Degraded::new`], which takes explicit links rather than a count.
    cables_requested: usize,
    cables_applied: usize,
}

impl<T: Topology> Degraded<T> {
    /// Wrap `inner` with the given failed links.
    pub fn new(inner: T, failed: impl IntoIterator<Item = LinkId>) -> Self {
        Degraded {
            inner,
            failed: failed.into_iter().map(|l| l.0).collect(),
            cables_requested: 0,
            cables_applied: 0,
        }
    }

    /// Fail `count` random physical cables (both directions of each duplex
    /// pair), deterministic in `seed`. NIC-virtual links are never failed,
    /// and a cable is skipped when it is the last surviving link of either
    /// of its end nodes — a failure study needs a degraded network, not a
    /// partitioned one. Fewer than `count` cables fail if the network runs
    /// out of safely removable ones; compare [`Degraded::cables_applied`]
    /// against [`Degraded::cables_requested`] to detect the shortfall.
    pub fn with_random_failures(inner: T, count: usize, seed: u64) -> Self {
        let net = inner.network();
        // Collect one representative per duplex pair (src < dst).
        let mut cables: Vec<(LinkId, Option<LinkId>)> = Vec::new();
        for (i, link) in net.links().iter().enumerate() {
            if link.is_virtual || link.src > link.dst {
                continue;
            }
            let reverse = net.find_physical_link(link.dst, link.src);
            cables.push((LinkId(i as u32), reverse));
        }
        let mut degree = vec![0u32; net.num_nodes()];
        for link in net.links() {
            if !link.is_virtual {
                degree[link.src.index()] += 1;
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        cables.shuffle(&mut rng);
        let mut failed = HashSet::new();
        let mut taken = 0;
        for (fwd, rev) in cables {
            if taken >= count {
                break;
            }
            let link = net.link(fwd);
            if degree[link.src.index()] <= 1 || degree[link.dst.index()] <= 1 {
                continue;
            }
            degree[link.src.index()] -= 1;
            degree[link.dst.index()] -= 1;
            failed.insert(fwd.0);
            if let Some(r) = rev {
                failed.insert(r.0);
            }
            taken += 1;
        }
        Degraded {
            inner,
            failed,
            cables_requested: count,
            cables_applied: taken,
        }
    }

    /// The wrapped topology.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Ids of failed links.
    pub fn failed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.failed.iter().map(|&l| LinkId(l))
    }

    /// Number of failed unidirectional links.
    pub fn num_failed(&self) -> usize {
        self.failed.len()
    }

    /// Duplex cables requested by [`Degraded::with_random_failures`]
    /// (zero for [`Degraded::new`]).
    pub fn cables_requested(&self) -> usize {
        self.cables_requested
    }

    /// Duplex cables actually failed by [`Degraded::with_random_failures`]
    /// — less than [`Degraded::cables_requested`] when the network ran out
    /// of safely removable cables (zero for [`Degraded::new`]).
    pub fn cables_applied(&self) -> usize {
        self.cables_applied
    }

    /// Whether the deterministic route of `(src, dst)` crosses a failure.
    pub fn is_affected(&self, src: NodeId, dst: NodeId) -> bool {
        // Take the buffer out rather than borrowing across `inner.route`,
        // which may itself be a `Degraded` using the same scratch.
        let mut path = SCRATCH.with(|s| std::mem::take(&mut s.borrow_mut().path));
        path.clear();
        self.inner.route(src, dst, &mut path);
        let affected = path.iter().any(|l| self.failed.contains(&l.0));
        SCRATCH.with(|s| s.borrow_mut().path = path);
        affected
    }

    /// BFS a shortest path over surviving physical links, or report the
    /// partition as a [`RouteError`].
    fn try_reroute(
        &self,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<LinkId>,
    ) -> Result<(), RouteError> {
        let net = self.inner.network();
        let n = net.num_nodes();
        SCRATCH.with(|s| {
            let scratch = &mut *s.borrow_mut();
            let pred = &mut scratch.pred;
            pred.clear();
            pred.resize(n, u32::MAX);
            let queue = &mut scratch.queue;
            queue.clear();
            pred[src.index()] = u32::MAX - 1; // visited marker for the source
            queue.push_back(src);
            'search: while let Some(node) = queue.pop_front() {
                for &lid in net.out_links(node) {
                    if self.failed.contains(&lid.0) || net.link(lid).is_virtual {
                        continue;
                    }
                    let next = net.link(lid).dst;
                    if pred[next.index()] == u32::MAX {
                        pred[next.index()] = lid.0;
                        if next == dst {
                            break 'search;
                        }
                        queue.push_back(next);
                    }
                }
            }
            if pred[dst.index()] == u32::MAX {
                return Err(RouteError {
                    src,
                    dst,
                    topology: self.inner.name(),
                    failed_links: self.failed.len(),
                });
            }
            // Walk predecessors back to the source.
            let start = out.len();
            let mut at = dst;
            while at != src {
                let lid = LinkId(pred[at.index()]);
                out.push(lid);
                at = net.link(lid).src;
            }
            out[start..].reverse();
            Ok(())
        })
    }
}

impl<T: Topology> Topology for Degraded<T> {
    fn name(&self) -> String {
        format!("{} [{} failed links]", self.inner.name(), self.failed.len())
    }

    fn network(&self) -> &Network {
        self.inner.network()
    }

    /// Panics if `dst` became unreachable — use [`Topology::try_route`]
    /// when the failure set comes from untrusted configuration.
    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        self.try_route(src, dst, path)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn try_route(
        &self,
        src: NodeId,
        dst: NodeId,
        path: &mut Vec<LinkId>,
    ) -> Result<(), RouteError> {
        if src == dst {
            return Ok(());
        }
        let start = path.len();
        self.inner.route(src, dst, path);
        if path[start..].iter().any(|l| self.failed.contains(&l.0)) {
            path.truncate(start);
            self.try_reroute(src, dst, path)?;
        }
        Ok(())
    }

    // Distance falls back to the default (route length): with failures
    // there is no closed form.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_route, Torus};

    fn first_route_link(t: &Torus, s: u32, d: u32) -> LinkId {
        t.route_vec(NodeId(s), NodeId(d))[0]
    }

    #[test]
    fn unaffected_pairs_keep_routes() {
        let t = Torus::new(&[4, 4]);
        let far_link = first_route_link(&t, 10, 11);
        let original = t.route_vec(NodeId(0), NodeId(3));
        let degraded = Degraded::new(Torus::new(&[4, 4]), [far_link]);
        assert_eq!(degraded.route_vec(NodeId(0), NodeId(3)), original);
        assert!(!degraded.is_affected(NodeId(0), NodeId(3)));
    }

    #[test]
    fn affected_pairs_reroute_validly() {
        let t = Torus::new(&[4, 4]);
        let broken = first_route_link(&t, 0, 1);
        let degraded = Degraded::new(Torus::new(&[4, 4]), [broken]);
        assert!(degraded.is_affected(NodeId(0), NodeId(1)));
        let d = check_route(&degraded, NodeId(0), NodeId(1)).unwrap();
        // The detour around a single failed torus link is 3 hops.
        assert_eq!(d, 3);
        let path = degraded.route_vec(NodeId(0), NodeId(1));
        assert!(!path.contains(&broken));
    }

    #[test]
    fn all_pairs_survive_scattered_failures() {
        let degraded = Degraded::with_random_failures(Torus::new(&[4, 4, 2]), 4, 7);
        assert!(degraded.num_failed() >= 4); // duplex pairs: 2 per cable
        assert_eq!(degraded.cables_requested(), 4);
        assert_eq!(degraded.cables_applied(), 4);
        let e = degraded.num_endpoints() as u32;
        for s in 0..e {
            for d in 0..e {
                check_route(&degraded, NodeId(s), NodeId(d)).unwrap();
            }
        }
    }

    #[test]
    fn random_failures_deterministic() {
        let a = Degraded::with_random_failures(Torus::new(&[4, 4]), 3, 9);
        let b = Degraded::with_random_failures(Torus::new(&[4, 4]), 3, 9);
        let fa: Vec<u32> = a.failed_links().map(|l| l.0).collect();
        let fb: Vec<u32> = b.failed_links().map(|l| l.0).collect();
        let mut fa = fa;
        let mut fb = fb;
        fa.sort_unstable();
        fb.sort_unstable();
        assert_eq!(fa, fb);
    }

    #[test]
    fn oversized_failure_request_truncates_with_signal() {
        // A 2x2 torus has far fewer than 100 safely removable cables: the
        // shortfall must be visible, not silent.
        let d = Degraded::with_random_failures(Torus::new(&[2, 2]), 100, 3);
        assert_eq!(d.cables_requested(), 100);
        assert!(d.cables_applied() < 100);
        // And no node lost its last link (that is the point of the cap;
        // global connectivity is not guaranteed and partitions surface as
        // `RouteError` through `try_route`).
        let net = d.network();
        for node in 0..net.num_nodes() as u32 {
            let surviving = net
                .out_links(NodeId(node))
                .iter()
                .filter(|l| !net.link(**l).is_virtual)
                .filter(|l| !d.failed_links().any(|f| f == **l))
                .count();
            assert!(surviving >= 1, "node {node} was isolated");
        }
    }

    #[test]
    fn virtual_links_never_failed() {
        // Build a network with virtual links via the simulator convention is
        // not possible from Torus (it has none); assert the torus case
        // simply fails physical cables.
        let d = Degraded::with_random_failures(Torus::new(&[8]), 2, 1);
        for l in d.failed_links() {
            assert!(!d.network().link(l).is_virtual);
        }
    }

    #[test]
    #[should_panic(expected = "cannot reach")]
    fn partition_panics() {
        // A 2-node ring has a single duplex pair; failing it partitions.
        let t = Torus::new(&[2]);
        let links: Vec<LinkId> = (0..t.network().num_links() as u32).map(LinkId).collect();
        let degraded = Degraded::new(t, links);
        degraded.route_vec(NodeId(0), NodeId(1));
    }

    #[test]
    fn partition_is_a_typed_error_via_try_route() {
        let t = Torus::new(&[2]);
        let links: Vec<LinkId> = (0..t.network().num_links() as u32).map(LinkId).collect();
        let failed = links.len();
        let degraded = Degraded::new(t, links);
        let mut path = Vec::new();
        let err = degraded
            .try_route(NodeId(0), NodeId(1), &mut path)
            .unwrap_err();
        assert_eq!(err.src, NodeId(0));
        assert_eq!(err.dst, NodeId(1));
        assert_eq!(err.failed_links, failed);
        assert!(err.to_string().contains("cannot reach"), "{err}");
        // The output buffer is left clean on failure.
        assert!(path.is_empty());
    }

    #[test]
    fn name_reports_failures() {
        let d = Degraded::new(Torus::new(&[4]), [LinkId(0)]);
        assert!(d.name().contains("1 failed link"));
    }
}
