//! Link-failure injection with fault-tolerant rerouting.
//!
//! **Extension beyond the paper** (flagged as future work in its §6: "we
//! are developing … mechanisms for fault tolerance"): [`Degraded`] wraps
//! any topology, marks a set of links as failed, and transparently reroutes
//! affected endpoint pairs over the surviving physical links via BFS. Pairs
//! whose deterministic route is unaffected keep their original path, so the
//! performance impact of a failure stays local — which is what makes the
//! wrapper useful for availability experiments.
//!
//! A destination that became unreachable (the failures partitioned the
//! network) surfaces as a [`RouteError`] through [`Topology::try_route`];
//! the infallible [`Topology::route`] keeps the documented panic for
//! callers that have already validated connectivity.
//!
//! [`Degraded`] models failures that exist *before* a run starts;
//! [`FaultOverlay`] is its dynamic sibling — a mutable overlay the
//! simulation engine drives with link-down/link-up transitions mid-run,
//! with a reroute cache that a transition invalidates only as far as it
//! must.

use crate::{RouteError, Topology};
use exaflow_netgraph::{LinkId, Network, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};

/// Reusable per-thread buffers for [`Degraded::is_affected`] and the BFS
/// reroute: the failure-resilience harness calls both once per flow, and a
/// fresh path vector plus an O(V) predecessor array per call thrashes the
/// allocator. Thread-local (rather than interior mutability on `Degraded`)
/// keeps the wrapper `Sync`, which the parallel suite runner relies on.
#[derive(Default)]
struct Scratch {
    path: Vec<LinkId>,
    pred: Vec<u32>,
    queue: VecDeque<NodeId>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// BFS a shortest path from `src` to `dst` over links for which `blocked`
/// returns `false`, appending it to `out`. Returns `false` (leaving `out`
/// untouched) when no such path exists. Shared by [`Degraded`] (static
/// failure sets) and [`FaultOverlay`] (mid-run transitions).
fn bfs_route(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    blocked: impl Fn(LinkId) -> bool,
    out: &mut Vec<LinkId>,
) -> bool {
    let n = net.num_nodes();
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        let pred = &mut scratch.pred;
        pred.clear();
        pred.resize(n, u32::MAX);
        let queue = &mut scratch.queue;
        queue.clear();
        pred[src.index()] = u32::MAX - 1; // visited marker for the source
        queue.push_back(src);
        'search: while let Some(node) = queue.pop_front() {
            for &lid in net.out_links(node) {
                if net.link(lid).is_virtual || blocked(lid) {
                    continue;
                }
                let next = net.link(lid).dst;
                if pred[next.index()] == u32::MAX {
                    pred[next.index()] = lid.0;
                    if next == dst {
                        break 'search;
                    }
                    queue.push_back(next);
                }
            }
        }
        if pred[dst.index()] == u32::MAX {
            return false;
        }
        // Walk predecessors back to the source.
        let start = out.len();
        let mut at = dst;
        while at != src {
            let lid = LinkId(pred[at.index()]);
            out.push(lid);
            at = net.link(lid).src;
        }
        out[start..].reverse();
        true
    })
}

/// A topology with some links out of service.
pub struct Degraded<T: Topology> {
    inner: T,
    failed: HashSet<u32>,
    /// Duplex cables asked for / actually failed; both zero for
    /// [`Degraded::new`], which takes explicit links rather than a count.
    cables_requested: usize,
    cables_applied: usize,
}

impl<T: Topology> Degraded<T> {
    /// Wrap `inner` with the given failed links.
    pub fn new(inner: T, failed: impl IntoIterator<Item = LinkId>) -> Self {
        Degraded {
            inner,
            failed: failed.into_iter().map(|l| l.0).collect(),
            cables_requested: 0,
            cables_applied: 0,
        }
    }

    /// Fail `count` random physical cables (both directions of each duplex
    /// pair), deterministic in `seed`. NIC-virtual links are never failed,
    /// and a cable is skipped when it is the last surviving link of either
    /// of its end nodes — a failure study needs a degraded network, not a
    /// partitioned one. Fewer than `count` cables fail if the network runs
    /// out of safely removable ones; compare [`Degraded::cables_applied`]
    /// against [`Degraded::cables_requested`] to detect the shortfall.
    pub fn with_random_failures(inner: T, count: usize, seed: u64) -> Self {
        let net = inner.network();
        // Collect one representative per duplex pair (src < dst).
        let mut cables: Vec<(LinkId, Option<LinkId>)> = Vec::new();
        for (i, link) in net.links().iter().enumerate() {
            if link.is_virtual || link.src > link.dst {
                continue;
            }
            let reverse = net.find_physical_link(link.dst, link.src);
            cables.push((LinkId(i as u32), reverse));
        }
        let mut degree = vec![0u32; net.num_nodes()];
        for link in net.links() {
            if !link.is_virtual {
                degree[link.src.index()] += 1;
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        cables.shuffle(&mut rng);
        let mut failed = HashSet::new();
        let mut taken = 0;
        for (fwd, rev) in cables {
            if taken >= count {
                break;
            }
            let link = net.link(fwd);
            if degree[link.src.index()] <= 1 || degree[link.dst.index()] <= 1 {
                continue;
            }
            degree[link.src.index()] -= 1;
            degree[link.dst.index()] -= 1;
            failed.insert(fwd.0);
            if let Some(r) = rev {
                failed.insert(r.0);
            }
            taken += 1;
        }
        Degraded {
            inner,
            failed,
            cables_requested: count,
            cables_applied: taken,
        }
    }

    /// The wrapped topology.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Ids of failed links.
    pub fn failed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.failed.iter().map(|&l| LinkId(l))
    }

    /// Number of failed unidirectional links.
    pub fn num_failed(&self) -> usize {
        self.failed.len()
    }

    /// Duplex cables requested by [`Degraded::with_random_failures`]
    /// (zero for [`Degraded::new`]).
    pub fn cables_requested(&self) -> usize {
        self.cables_requested
    }

    /// Duplex cables actually failed by [`Degraded::with_random_failures`]
    /// — less than [`Degraded::cables_requested`] when the network ran out
    /// of safely removable cables (zero for [`Degraded::new`]).
    pub fn cables_applied(&self) -> usize {
        self.cables_applied
    }

    /// Whether the deterministic route of `(src, dst)` crosses a failure.
    pub fn is_affected(&self, src: NodeId, dst: NodeId) -> bool {
        // Take the buffer out rather than borrowing across `inner.route`,
        // which may itself be a `Degraded` using the same scratch.
        let mut path = SCRATCH.with(|s| std::mem::take(&mut s.borrow_mut().path));
        path.clear();
        self.inner.route(src, dst, &mut path);
        let affected = path.iter().any(|l| self.failed.contains(&l.0));
        SCRATCH.with(|s| s.borrow_mut().path = path);
        affected
    }

    /// BFS a shortest path over surviving physical links, or report the
    /// partition as a [`RouteError`].
    fn try_reroute(
        &self,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<LinkId>,
    ) -> Result<(), RouteError> {
        let net = self.inner.network();
        if bfs_route(net, src, dst, |lid| self.failed.contains(&lid.0), out) {
            Ok(())
        } else {
            Err(RouteError {
                src,
                dst,
                topology: self.inner.name(),
                failed_links: self.failed.len(),
            })
        }
    }
}

impl<T: Topology> Topology for Degraded<T> {
    fn name(&self) -> String {
        format!("{} [{} failed links]", self.inner.name(), self.failed.len())
    }

    fn network(&self) -> &Network {
        self.inner.network()
    }

    /// Panics if `dst` became unreachable — use [`Topology::try_route`]
    /// when the failure set comes from untrusted configuration.
    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        self.try_route(src, dst, path)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn try_route(
        &self,
        src: NodeId,
        dst: NodeId,
        path: &mut Vec<LinkId>,
    ) -> Result<(), RouteError> {
        if src == dst {
            return Ok(());
        }
        let start = path.len();
        self.inner.route(src, dst, path);
        if path[start..].iter().any(|l| self.failed.contains(&l.0)) {
            path.truncate(start);
            self.try_reroute(src, dst, path)?;
        }
        Ok(())
    }

    fn link_is_failed(&self, link: LinkId) -> bool {
        self.failed.contains(&link.0)
    }

    fn num_failed_links(&self) -> usize {
        self.failed.len()
    }

    // Distance falls back to the default (route length): with failures
    // there is no closed form.
}

/// A **time-varying** failure overlay: the dynamic counterpart of
/// [`Degraded`], consumed by the simulation engine's mid-run fault
/// injection.
///
/// Where `Degraded` freezes a failure set before a run starts, a
/// `FaultOverlay` borrows any topology (including a `Degraded` one — its
/// static failures are honoured through [`Topology::link_is_failed`]) and
/// applies link-down / link-up transitions *during* a run. Routing prefers
/// the wrapped topology's deterministic path and falls back to a BFS over
/// links that are neither statically nor dynamically failed.
///
/// Reroutes are memoised per `(src, dst)` pair under the *current* failure
/// set; a transition invalidates only what it must:
///
/// * [`FaultOverlay::fail_link`] drops exactly the cached reroutes that
///   traverse the newly-failed link (the rest remain valid), and
/// * [`FaultOverlay::restore_link`] clears the cache, because *any* cached
///   detour might now have a shorter — and for determinism, canonical —
///   alternative through the restored link.
pub struct FaultOverlay<'a> {
    topo: &'a dyn Topology,
    /// Dynamically failed links (on top of whatever `topo` already failed).
    down: HashSet<u32>,
    /// Reroutes valid under the current failure set.
    cache: HashMap<(u32, u32), Box<[LinkId]>>,
    cache_cap: usize,
    transitions: u64,
}

impl<'a> FaultOverlay<'a> {
    /// Default bound on memoised reroutes.
    pub const DEFAULT_CACHE_CAP: usize = 1 << 16;

    /// A healthy overlay over `topo` (no dynamic failures yet).
    pub fn new(topo: &'a dyn Topology) -> Self {
        Self::with_cache_cap(topo, Self::DEFAULT_CACHE_CAP)
    }

    /// A healthy overlay with a custom reroute-cache bound.
    pub fn with_cache_cap(topo: &'a dyn Topology, cache_cap: usize) -> Self {
        FaultOverlay {
            topo,
            down: HashSet::new(),
            cache: HashMap::new(),
            cache_cap,
            transitions: 0,
        }
    }

    /// The wrapped topology.
    pub fn topology(&self) -> &'a dyn Topology {
        self.topo
    }

    /// Whether `link` is out of service right now (dynamically or in the
    /// wrapped topology's static failure set).
    pub fn is_down(&self, link: LinkId) -> bool {
        self.down.contains(&link.0) || self.topo.link_is_failed(link)
    }

    /// Number of dynamically failed links.
    pub fn num_down(&self) -> usize {
        self.down.len()
    }

    /// Total failed links: dynamic plus the wrapped topology's static set.
    pub fn total_failed_links(&self) -> usize {
        self.down.len() + self.topo.num_failed_links()
    }

    /// Applied fail/restore transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Take `link` out of service. Returns `false` (a no-op) when the link
    /// is virtual, already statically failed, or already down; otherwise
    /// invalidates exactly the cached reroutes crossing it.
    pub fn fail_link(&mut self, link: LinkId) -> bool {
        if self.topo.network().link(link).is_virtual || self.topo.link_is_failed(link) {
            return false;
        }
        if !self.down.insert(link.0) {
            return false;
        }
        self.transitions += 1;
        self.cache.retain(|_, path| !path.contains(&link));
        true
    }

    /// Return a dynamically-failed `link` to service. Returns `false` when
    /// the link was not dynamically down (static failures cannot be
    /// restored — they belong to the wrapped topology).
    pub fn restore_link(&mut self, link: LinkId) -> bool {
        if !self.down.remove(&link.0) {
            return false;
        }
        self.transitions += 1;
        self.cache.clear();
        true
    }

    /// Route `src → dst` avoiding every currently-failed link, appending to
    /// `out`. Prefers the wrapped topology's deterministic route; falls
    /// back to a (memoised) BFS over surviving links, and reports a
    /// partition as a [`RouteError`].
    pub fn try_route(
        &mut self,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<LinkId>,
    ) -> Result<(), RouteError> {
        if src == dst {
            return Ok(());
        }
        let start = out.len();
        // The wrapped topology already avoids its own static failures (and
        // errors on a static partition, which no dynamic repair can fix).
        self.topo.try_route(src, dst, out)?;
        if !out[start..].iter().any(|l| self.down.contains(&l.0)) {
            return Ok(());
        }
        out.truncate(start);
        if let Some(path) = self.cache.get(&(src.0, dst.0)) {
            out.extend_from_slice(path);
            return Ok(());
        }
        let net = self.topo.network();
        let (down, topo) = (&self.down, self.topo);
        let found = bfs_route(
            net,
            src,
            dst,
            |lid| down.contains(&lid.0) || topo.link_is_failed(lid),
            out,
        );
        if !found {
            return Err(RouteError {
                src,
                dst,
                topology: self.topo.name(),
                failed_links: self.total_failed_links(),
            });
        }
        if self.cache.len() < self.cache_cap {
            self.cache
                .insert((src.0, dst.0), out[start..].to_vec().into_boxed_slice());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_route, Torus};

    fn first_route_link(t: &Torus, s: u32, d: u32) -> LinkId {
        t.route_vec(NodeId(s), NodeId(d))[0]
    }

    #[test]
    fn unaffected_pairs_keep_routes() {
        let t = Torus::new(&[4, 4]);
        let far_link = first_route_link(&t, 10, 11);
        let original = t.route_vec(NodeId(0), NodeId(3));
        let degraded = Degraded::new(Torus::new(&[4, 4]), [far_link]);
        assert_eq!(degraded.route_vec(NodeId(0), NodeId(3)), original);
        assert!(!degraded.is_affected(NodeId(0), NodeId(3)));
    }

    #[test]
    fn affected_pairs_reroute_validly() {
        let t = Torus::new(&[4, 4]);
        let broken = first_route_link(&t, 0, 1);
        let degraded = Degraded::new(Torus::new(&[4, 4]), [broken]);
        assert!(degraded.is_affected(NodeId(0), NodeId(1)));
        let d = check_route(&degraded, NodeId(0), NodeId(1)).unwrap();
        // The detour around a single failed torus link is 3 hops.
        assert_eq!(d, 3);
        let path = degraded.route_vec(NodeId(0), NodeId(1));
        assert!(!path.contains(&broken));
    }

    #[test]
    fn all_pairs_survive_scattered_failures() {
        let degraded = Degraded::with_random_failures(Torus::new(&[4, 4, 2]), 4, 7);
        assert!(degraded.num_failed() >= 4); // duplex pairs: 2 per cable
        assert_eq!(degraded.cables_requested(), 4);
        assert_eq!(degraded.cables_applied(), 4);
        let e = degraded.num_endpoints() as u32;
        for s in 0..e {
            for d in 0..e {
                check_route(&degraded, NodeId(s), NodeId(d)).unwrap();
            }
        }
    }

    #[test]
    fn random_failures_deterministic() {
        let a = Degraded::with_random_failures(Torus::new(&[4, 4]), 3, 9);
        let b = Degraded::with_random_failures(Torus::new(&[4, 4]), 3, 9);
        let fa: Vec<u32> = a.failed_links().map(|l| l.0).collect();
        let fb: Vec<u32> = b.failed_links().map(|l| l.0).collect();
        let mut fa = fa;
        let mut fb = fb;
        fa.sort_unstable();
        fb.sort_unstable();
        assert_eq!(fa, fb);
    }

    #[test]
    fn oversized_failure_request_truncates_with_signal() {
        // A 2x2 torus has far fewer than 100 safely removable cables: the
        // shortfall must be visible, not silent.
        let d = Degraded::with_random_failures(Torus::new(&[2, 2]), 100, 3);
        assert_eq!(d.cables_requested(), 100);
        assert!(d.cables_applied() < 100);
        // And no node lost its last link (that is the point of the cap;
        // global connectivity is not guaranteed and partitions surface as
        // `RouteError` through `try_route`).
        let net = d.network();
        for node in 0..net.num_nodes() as u32 {
            let surviving = net
                .out_links(NodeId(node))
                .iter()
                .filter(|l| !net.link(**l).is_virtual)
                .filter(|l| !d.failed_links().any(|f| f == **l))
                .count();
            assert!(surviving >= 1, "node {node} was isolated");
        }
    }

    #[test]
    fn virtual_links_never_failed() {
        // Build a network with virtual links via the simulator convention is
        // not possible from Torus (it has none); assert the torus case
        // simply fails physical cables.
        let d = Degraded::with_random_failures(Torus::new(&[8]), 2, 1);
        for l in d.failed_links() {
            assert!(!d.network().link(l).is_virtual);
        }
    }

    #[test]
    #[should_panic(expected = "cannot reach")]
    fn partition_panics() {
        // A 2-node ring has a single duplex pair; failing it partitions.
        let t = Torus::new(&[2]);
        let links: Vec<LinkId> = (0..t.network().num_links() as u32).map(LinkId).collect();
        let degraded = Degraded::new(t, links);
        degraded.route_vec(NodeId(0), NodeId(1));
    }

    #[test]
    fn partition_is_a_typed_error_via_try_route() {
        let t = Torus::new(&[2]);
        let links: Vec<LinkId> = (0..t.network().num_links() as u32).map(LinkId).collect();
        let failed = links.len();
        let degraded = Degraded::new(t, links);
        let mut path = Vec::new();
        let err = degraded
            .try_route(NodeId(0), NodeId(1), &mut path)
            .unwrap_err();
        assert_eq!(err.src, NodeId(0));
        assert_eq!(err.dst, NodeId(1));
        assert_eq!(err.failed_links, failed);
        assert!(err.to_string().contains("cannot reach"), "{err}");
        // The output buffer is left clean on failure.
        assert!(path.is_empty());
    }

    #[test]
    fn name_reports_failures() {
        let d = Degraded::new(Torus::new(&[4]), [LinkId(0)]);
        assert!(d.name().contains("1 failed link"));
    }

    fn duplex(t: &Torus, a: u32, b: u32) -> [LinkId; 2] {
        let net = t.network();
        [
            net.find_physical_link(NodeId(a), NodeId(b)).unwrap(),
            net.find_physical_link(NodeId(b), NodeId(a)).unwrap(),
        ]
    }

    #[test]
    fn overlay_healthy_routes_match_topology() {
        let t = Torus::new(&[4, 4]);
        let mut overlay = FaultOverlay::new(&t);
        for (s, d) in [(0u32, 5u32), (3, 12), (15, 0)] {
            let mut path = Vec::new();
            overlay.try_route(NodeId(s), NodeId(d), &mut path).unwrap();
            assert_eq!(path, t.route_vec(NodeId(s), NodeId(d)));
        }
        assert_eq!(overlay.num_down(), 0);
        assert_eq!(overlay.transitions(), 0);
    }

    #[test]
    fn overlay_fail_and_restore_roundtrip() {
        let t = Torus::new(&[4]);
        let broken = first_route_link(&t, 0, 1);
        let original = t.route_vec(NodeId(0), NodeId(1));
        let mut overlay = FaultOverlay::new(&t);

        assert!(overlay.fail_link(broken));
        assert!(!overlay.fail_link(broken), "double-fail is a no-op");
        let mut detour = Vec::new();
        overlay
            .try_route(NodeId(0), NodeId(1), &mut detour)
            .unwrap();
        assert!(!detour.contains(&broken));
        assert_eq!(detour.len(), 3, "detour around one ring link is 3 hops");
        // The detour is served from cache on a second call.
        let mut again = Vec::new();
        overlay.try_route(NodeId(0), NodeId(1), &mut again).unwrap();
        assert_eq!(detour, again);

        assert!(overlay.restore_link(broken));
        assert!(!overlay.restore_link(broken), "double-restore is a no-op");
        let mut back = Vec::new();
        overlay.try_route(NodeId(0), NodeId(1), &mut back).unwrap();
        assert_eq!(
            back, original,
            "restoration reverts to the deterministic route"
        );
        assert_eq!(overlay.transitions(), 2);
    }

    #[test]
    fn overlay_partition_is_typed_error() {
        // Ring 0-1-2-3: cutting cables (0,1) and (2,3) splits {0,3}|{1,2}.
        let t = Torus::new(&[4]);
        let mut overlay = FaultOverlay::new(&t);
        for l in duplex(&t, 0, 1).into_iter().chain(duplex(&t, 2, 3)) {
            assert!(overlay.fail_link(l));
        }
        let mut path = Vec::new();
        let err = overlay
            .try_route(NodeId(0), NodeId(1), &mut path)
            .unwrap_err();
        assert_eq!((err.src, err.dst), (NodeId(0), NodeId(1)));
        assert_eq!(err.failed_links, 4);
        assert!(path.is_empty(), "output buffer left clean on failure");
        // Repairing one cut cable restores reachability.
        for l in duplex(&t, 0, 1) {
            assert!(overlay.restore_link(l));
        }
        overlay.try_route(NodeId(0), NodeId(1), &mut path).unwrap();
        assert!(!path.is_empty());
    }

    #[test]
    fn overlay_honours_static_failures_of_degraded() {
        // Statically fail (0,1); dynamically fail (1,2). The route 0 -> 2
        // must avoid both, and restoring the *static* link is refused.
        let t = Torus::new(&[6]);
        let static_cut = duplex(&t, 0, 1);
        let degraded = Degraded::new(Torus::new(&[6]), static_cut);
        let dynamic_cut = duplex(degraded.inner(), 1, 2);
        let mut overlay = FaultOverlay::new(&degraded);
        for l in dynamic_cut {
            assert!(overlay.fail_link(l));
        }
        assert!(
            !overlay.fail_link(static_cut[0]),
            "statically failed already"
        );
        assert!(!overlay.restore_link(static_cut[0]));
        let mut path = Vec::new();
        overlay.try_route(NodeId(0), NodeId(2), &mut path).unwrap();
        for l in static_cut.into_iter().chain(dynamic_cut) {
            assert!(!path.contains(&l), "path crosses failed link {l:?}");
        }
        assert_eq!(overlay.total_failed_links(), 2 + 2);
    }
}
