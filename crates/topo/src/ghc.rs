//! Generalised hypercube (Bhuyan & Agrawal) with e-cube routing.
//!
//! Routers sit at the points of a mixed-radix grid and every dimension is a
//! complete graph: a router links directly to the `a_i − 1` routers that
//! differ from it only in coordinate `i`. Each router additionally hosts up
//! to `ports_per_router` attached ports. The paper uses this topology as the
//! `NestGHC` upper tier, inspired by BCube-style container deployments.
//!
//! Routing is e-cube: correct each differing dimension in index order with a
//! single direct hop. Port-to-port distance is therefore
//! `2 + hamming(coords)` between distinct routers, 2 within a router, and 0
//! for self-traffic.
//!
//! [`GhcTier`] is the reusable core (mirroring [`crate::kary_tree::TreeTier`]):
//! it wires the router fabric into an existing [`NetworkBuilder`] and
//! attaches caller-supplied nodes as ports.

use crate::mixed_radix::MixedRadix;
use crate::{Topology, LINK_RATE_BPS};
use exaflow_netgraph::{LinkId, Network, NetworkBuilder, NodeId};

/// The router fabric of a generalised hypercube attached to port nodes.
#[derive(Debug)]
pub struct GhcTier {
    shape: MixedRadix,
    ports_per_router: u32,
    num_ports: usize,
    /// `ep_up[p]`, `ep_down[p]`: port ↔ home-router links.
    ep_up: Vec<u32>,
    ep_down: Vec<u32>,
    /// `router_links[router * link_stride + dim_offset[dim] + target_coord]`.
    router_links: Vec<u32>,
    dim_offset: Vec<u32>,
    link_stride: u32,
}

impl GhcTier {
    /// Wire a GHC into `b`, attaching `ports` (existing nodes) to routers in
    /// blocks of `ports_per_router`.
    pub fn build_into(
        b: &mut NetworkBuilder,
        dims: &[u32],
        ports_per_router: u32,
        ports: &[NodeId],
        capacity_bps: f64,
    ) -> Self {
        assert!(ports_per_router >= 1, "routers must host at least one port");
        let shape = MixedRadix::new(dims);
        let routers = shape.len();
        let max_ports = routers * ports_per_router as u64;
        assert!(
            ports.len() as u64 <= max_ports,
            "{} ports exceed {max_ports}",
            ports.len()
        );
        assert!(!ports.is_empty(), "at least one port required");
        let router_base = b.num_nodes() as u32;
        b.add_switches(routers as usize);
        let router_node = |r: u64| NodeId(router_base + r as u32);
        let mut ep_up = vec![0u32; ports.len()];
        let mut ep_down = vec![0u32; ports.len()];
        for (p, &node) in ports.iter().enumerate() {
            let home = router_node(p as u64 / ports_per_router as u64);
            let (upl, downl) = b.add_duplex(node, home, capacity_bps);
            ep_up[p] = upl.0;
            ep_down[p] = downl.0;
        }
        let dim_offset: Vec<u32> = dims
            .iter()
            .scan(0u32, |acc, &d| {
                let here = *acc;
                *acc += d;
                Some(here)
            })
            .collect();
        let link_stride: u32 = dims.iter().sum();
        let mut router_links = vec![u32::MAX; routers as usize * link_stride as usize];
        for r in 0..routers {
            for dim in 0..shape.ndims() {
                let my = shape.coord(r, dim);
                for target in my + 1..dims[dim] {
                    let peer = shape.with_coord(r, dim, target);
                    let (fwd, back) = b.add_duplex(router_node(r), router_node(peer), capacity_bps);
                    router_links[r as usize * link_stride as usize
                        + dim_offset[dim] as usize
                        + target as usize] = fwd.0;
                    router_links[peer as usize * link_stride as usize
                        + dim_offset[dim] as usize
                        + my as usize] = back.0;
                }
            }
        }
        GhcTier {
            shape,
            ports_per_router,
            num_ports: ports.len(),
            ep_up,
            ep_down,
            router_links,
            dim_offset,
            link_stride,
        }
    }

    /// Router grid shape.
    pub fn shape(&self) -> &MixedRadix {
        &self.shape
    }

    /// Number of routers.
    pub fn num_routers(&self) -> u64 {
        self.shape.len()
    }

    /// Ports per router.
    pub fn ports_per_router(&self) -> u32 {
        self.ports_per_router
    }

    /// Number of attached ports.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Home router index of a port.
    #[inline]
    pub fn home(&self, port: u64) -> u64 {
        port / self.ports_per_router as u64
    }

    #[inline]
    fn router_link(&self, r: u64, dim: usize, target: u32) -> LinkId {
        let idx = r as usize * self.link_stride as usize
            + self.dim_offset[dim] as usize
            + target as usize;
        let raw = self.router_links[idx];
        debug_assert_ne!(raw, u32::MAX, "missing GHC link r{r} dim{dim} -> {target}");
        LinkId(raw)
    }

    /// Append the port-to-port path (including both attach links).
    pub fn route_ports(&self, src: u64, dst: u64, path: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        path.push(LinkId(self.ep_up[src as usize]));
        let mut r = self.home(src);
        let target = self.home(dst);
        if r != target {
            for dim in 0..self.shape.ndims() {
                let want = self.shape.coord(target, dim);
                if self.shape.coord(r, dim) != want {
                    path.push(self.router_link(r, dim, want));
                    r = self.shape.with_coord(r, dim, want);
                }
            }
        }
        debug_assert_eq!(r, target);
        path.push(LinkId(self.ep_down[dst as usize]));
    }

    /// Port-to-port hop count: `2 + hamming` across routers.
    #[inline]
    pub fn distance_ports(&self, src: u64, dst: u64) -> u32 {
        if src == dst {
            return 0;
        }
        let (a, b) = (self.home(src), self.home(dst));
        let mut d = 2;
        for dim in 0..self.shape.ndims() {
            if self.shape.coord(a, dim) != self.shape.coord(b, dim) {
                d += 1;
            }
        }
        d
    }

    /// Largest possible port-to-port hop count: both attach links plus one
    /// router hop per grid dimension.
    pub fn max_distance_ports(&self) -> u32 {
        if self.num_ports <= 1 {
            return 0;
        }
        2 + self.shape.ndims() as u32
    }
}

/// A standalone generalised hypercube whose ports are compute endpoints.
#[derive(Debug)]
pub struct GeneralizedHypercube {
    net: Network,
    tier: GhcTier,
}

impl GeneralizedHypercube {
    /// Build a fully-populated GHC at 10 Gbps.
    pub fn new(dims: &[u32], ports_per_router: u32) -> Self {
        let routers = MixedRadix::new(dims).len();
        Self::with_endpoints(
            dims,
            ports_per_router,
            (routers * ports_per_router as u64) as usize,
        )
    }

    /// Build with only the first `num_eps` ports populated.
    pub fn with_endpoints(dims: &[u32], ports_per_router: u32, num_eps: usize) -> Self {
        Self::with_capacity_bps(dims, ports_per_router, num_eps, LINK_RATE_BPS)
    }

    /// Build with a custom link capacity.
    pub fn with_capacity_bps(
        dims: &[u32],
        ports_per_router: u32,
        num_eps: usize,
        capacity_bps: f64,
    ) -> Self {
        let mut b = NetworkBuilder::new();
        let first = b.add_endpoints(num_eps);
        let ports: Vec<NodeId> = (0..num_eps as u32).map(|i| NodeId(first.0 + i)).collect();
        let tier = GhcTier::build_into(&mut b, dims, ports_per_router, &ports, capacity_bps);
        GeneralizedHypercube {
            net: b.build(),
            tier,
        }
    }

    /// The underlying tier.
    pub fn tier(&self) -> &GhcTier {
        &self.tier
    }

    /// Number of routers.
    pub fn num_routers(&self) -> u64 {
        self.tier.num_routers()
    }

    /// Ports per router.
    pub fn ports_per_router(&self) -> u32 {
        self.tier.ports_per_router
    }

    /// Diameter over populated ports.
    pub fn diameter(&self) -> u32 {
        let e = self.tier.num_ports as u64;
        if e <= 1 {
            return 0;
        }
        if e <= self.tier.ports_per_router as u64 {
            return 2; // all ports share one router
        }
        // Populated routers are the contiguous range 0..=last; a dimension
        // contributes to the worst-case hamming distance iff two populated
        // routers differ in it.
        let last = self.tier.home(e - 1);
        let dims = self.tier.shape.dims();
        let mut varying = 0;
        let mut stride: u64 = 1;
        for &d in dims {
            if d > 1 && last >= stride {
                varying += 1;
            }
            stride *= d as u64;
        }
        2 + varying
    }

    /// Exact average port-to-port distance over ordered pairs of populated
    /// endpoints (`src != dst`).
    pub fn average_distance(&self) -> f64 {
        let e = self.tier.num_ports as u64;
        if e <= 1 {
            return 0.0;
        }
        let p = self.tier.ports_per_router as u64;
        let shape = &self.tier.shape;
        if e == shape.len() * p {
            // Fully populated: dimensions are independent; sum (2 + hamming)
            // over all ordered endpoint pairs, then remove the e self-pairs
            // that would wrongly contribute 2.
            let routers = shape.len() as f64;
            let mut sum_h = 0.0;
            for &d in shape.dims() {
                sum_h += routers * routers * (d as f64 - 1.0) / d as f64;
            }
            let sum = (2.0 * routers * routers + sum_h) * (p * p) as f64 - 2.0 * e as f64;
            return sum / (e as f64 * (e as f64 - 1.0));
        }
        let routers_used = e.div_ceil(p);
        let pop = |r: u64| -> f64 {
            let lo = r * p;
            let hi = ((r + 1) * p).min(e);
            (hi - lo) as f64
        };
        let mut total = 0.0;
        for a in 0..routers_used {
            let ca = pop(a);
            for b in 0..routers_used {
                let cb = pop(b);
                if a == b {
                    total += ca * (ca - 1.0) * 2.0;
                } else {
                    let mut h = 0u32;
                    for dim in 0..shape.ndims() {
                        if shape.coord(a, dim) != shape.coord(b, dim) {
                            h += 1;
                        }
                    }
                    total += ca * cb * (2 + h) as f64;
                }
            }
        }
        total / (e as f64 * (e as f64 - 1.0))
    }
}

impl Topology for GeneralizedHypercube {
    fn name(&self) -> String {
        let dims: Vec<String> = self
            .tier
            .shape
            .dims()
            .iter()
            .map(|d| d.to_string())
            .collect();
        format!(
            "GHC({}; {} ports/router)",
            dims.join("x"),
            self.tier.ports_per_router
        )
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        self.tier.route_ports(src.0 as u64, dst.0 as u64, path);
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        self.tier.distance_ports(src.0 as u64, dst.0 as u64)
    }

    fn diameter_bound(&self) -> u32 {
        self.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_route;
    use exaflow_netgraph::bfs_distances_physical;

    #[test]
    fn counts_4ary_2cube() {
        // The paper's Figure 2b upper tier: a 4-ary 2-GHC = 16 routers.
        let g = GeneralizedHypercube::new(&[4, 4], 1);
        assert_eq!(g.num_routers(), 16);
        assert_eq!(g.num_endpoints(), 16);
        // Per dim: 4 rows/cols of K4 = 4 * 6 duplex pairs; 2 dims => 48.
        assert_eq!(g.network().num_links(), 2 * (16 + 48));
    }

    #[test]
    fn routes_valid_all_pairs() {
        let g = GeneralizedHypercube::new(&[3, 2, 4], 2);
        let n = g.num_endpoints() as u32;
        for s in (0..n).step_by(3) {
            for d in 0..n {
                check_route(&g, NodeId(s), NodeId(d)).unwrap();
            }
        }
    }

    #[test]
    fn distance_matches_bfs() {
        // e-cube is minimal in a GHC.
        let g = GeneralizedHypercube::new(&[4, 3], 2);
        let bfs = bfs_distances_physical(g.network(), NodeId(5));
        for d in 0..g.num_endpoints() as u32 {
            assert_eq!(g.distance(NodeId(5), NodeId(d)), bfs[d as usize]);
        }
    }

    #[test]
    fn same_router_distance_two() {
        let g = GeneralizedHypercube::new(&[4, 4], 4);
        assert_eq!(g.distance(NodeId(0), NodeId(3)), 2);
        assert_eq!(g.distance(NodeId(0), NodeId(4)), 3); // adjacent router
    }

    #[test]
    fn diameter_full_and_partial() {
        assert_eq!(GeneralizedHypercube::new(&[4, 4], 1).diameter(), 4);
        assert_eq!(GeneralizedHypercube::new(&[2, 2, 2], 2).diameter(), 5);
        // 3 endpoints on a 4-port router: everything local.
        assert_eq!(
            GeneralizedHypercube::with_endpoints(&[4, 4], 4, 3).diameter(),
            2
        );
        // 5 endpoints, 1 port/router: routers 0..=4 of a 4x4 grid populated;
        // both dims vary.
        assert_eq!(
            GeneralizedHypercube::with_endpoints(&[4, 4], 1, 5).diameter(),
            4
        );
        // 3 endpoints, 1 port/router: routers (0,0),(1,0),(2,0): one dim.
        assert_eq!(
            GeneralizedHypercube::with_endpoints(&[4, 4], 1, 3).diameter(),
            3
        );
    }

    #[test]
    fn partial_diameter_matches_brute_force() {
        for eps in [2usize, 3, 5, 7, 9, 12] {
            let g = GeneralizedHypercube::with_endpoints(&[3, 2, 2], 1, eps);
            let n = g.num_endpoints() as u32;
            let mut max = 0;
            for s in 0..n {
                for d in 0..n {
                    max = max.max(g.distance(NodeId(s), NodeId(d)));
                }
            }
            assert_eq!(g.diameter(), max, "eps={eps}");
        }
    }

    #[test]
    fn average_distance_matches_brute_full() {
        let g = GeneralizedHypercube::new(&[3, 4], 2);
        let e = g.num_endpoints() as u32;
        let mut sum = 0u64;
        for s in 0..e {
            for d in 0..e {
                if s != d {
                    sum += g.distance(NodeId(s), NodeId(d)) as u64;
                }
            }
        }
        let brute = sum as f64 / (e as u64 * (e as u64 - 1)) as f64;
        assert!(
            (g.average_distance() - brute).abs() < 1e-9,
            "{} vs {brute}",
            g.average_distance()
        );
    }

    #[test]
    fn average_distance_matches_brute_partial() {
        let g = GeneralizedHypercube::with_endpoints(&[3, 3], 3, 20);
        let e = g.num_endpoints() as u32;
        let mut sum = 0u64;
        for s in 0..e {
            for d in 0..e {
                if s != d {
                    sum += g.distance(NodeId(s), NodeId(d)) as u64;
                }
            }
        }
        let brute = sum as f64 / (e as u64 * (e as u64 - 1)) as f64;
        assert!((g.average_distance() - brute).abs() < 1e-9);
    }

    #[test]
    fn ecube_corrects_dims_in_order() {
        let g = GeneralizedHypercube::new(&[4, 4], 1);
        // 0 (0,0) -> 15 (3,3): first hop corrects dim 0 => router (3,0).
        let path = g.route_vec(NodeId(0), NodeId(15));
        assert_eq!(path.len(), 4); // up, dim0, dim1, down
        let second = g.network().link(path[1]).dst;
        assert_eq!(second, NodeId(16 + 3));
    }
}
