//! Jellyfish: switches wired as a random regular graph (Singla et al.,
//! NSDI'12).
//!
//! **Extension beyond the paper**: discussed in its related-work section
//! ("demonstrated to be able to outperform tree-like topologies … but its
//! lack of structure brings many challenges") and provided here as an extra
//! comparator. Each of `switches` switches exposes `endpoint_ports`
//! endpoints and `fabric_degree` inter-switch cables, wired by a seeded
//! stub-matching construction with swap fix-ups (no self-loops, no parallel
//! cables). Routing is deterministic shortest-path over a precomputed
//! all-pairs BFS forest — the practical stand-in for the paper's k-shortest
//!-paths routing at flow-level granularity.

use crate::{Topology, LINK_RATE_BPS};
use exaflow_netgraph::{LinkId, Network, NetworkBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A Jellyfish random-graph network.
#[derive(Debug)]
pub struct Jellyfish {
    net: Network,
    switches: u32,
    endpoint_ports: u32,
    /// `next_link[s*switches + d]` = first link of the shortest path from
    /// switch s towards switch d (u32::MAX on the diagonal).
    next_link: Vec<u32>,
    /// `dist[s*switches + d]` = switch-level hop count.
    dist: Vec<u16>,
    ep_up: Vec<u32>,
    ep_down: Vec<u32>,
}

impl Jellyfish {
    /// Build a jellyfish at 10 Gbps.
    ///
    /// Panics if the random regular graph cannot be constructed (odd total
    /// degree) or ends up disconnected for the given seed (rare for
    /// `fabric_degree >= 3`; pick another seed).
    pub fn new(switches: u32, endpoint_ports: u32, fabric_degree: u32, seed: u64) -> Self {
        Self::with_capacity_bps(switches, endpoint_ports, fabric_degree, seed, LINK_RATE_BPS)
    }

    /// Build with a custom link capacity.
    pub fn with_capacity_bps(
        switches: u32,
        endpoint_ports: u32,
        fabric_degree: u32,
        seed: u64,
        capacity_bps: f64,
    ) -> Self {
        assert!(switches >= 2 && endpoint_ports >= 1);
        assert!(
            fabric_degree >= 1 && fabric_degree < switches,
            "fabric degree {fabric_degree} must be in 1..{switches}"
        );
        assert!(
            (switches as u64 * fabric_degree as u64).is_multiple_of(2),
            "total fabric degree must be even"
        );
        let edges = random_regular_graph(switches, fabric_degree, seed);

        let eps = switches as u64 * endpoint_ports as u64;
        let mut b = NetworkBuilder::new();
        b.add_endpoints(eps as usize);
        let switch_base = eps as u32;
        b.add_switches(switches as usize);

        let mut ep_up = vec![0u32; eps as usize];
        let mut ep_down = vec![0u32; eps as usize];
        for e in 0..eps as u32 {
            let sw = e / endpoint_ports;
            let (up, down) = b.add_duplex(NodeId(e), NodeId(switch_base + sw), capacity_bps);
            ep_up[e as usize] = up.0;
            ep_down[e as usize] = down.0;
        }
        // Adjacency in link-id form for the BFS forest.
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); switches as usize];
        for &(x, y) in &edges {
            let (fwd, back) = b.add_duplex(
                NodeId(switch_base + x),
                NodeId(switch_base + y),
                capacity_bps,
            );
            adj[x as usize].push((y, fwd.0));
            adj[y as usize].push((x, back.0));
        }
        // Deterministic neighbour order.
        for a in &mut adj {
            a.sort_unstable();
        }

        // All-pairs BFS: next_link[s][d] = first hop from s toward d.
        // Computed by BFS from each *destination* over reversed edges —
        // equivalently BFS from d storing, for every s, the link s uses.
        let s_count = switches as usize;
        let mut next_link = vec![u32::MAX; s_count * s_count];
        let mut dist = vec![u16::MAX; s_count * s_count];
        let mut queue = std::collections::VecDeque::new();
        for d in 0..s_count {
            dist[d * s_count + d] = 0;
            queue.clear();
            queue.push_back(d as u32);
            while let Some(v) = queue.pop_front() {
                let dv = dist[d * s_count + v as usize];
                // For each neighbour u of v, u can reach d via v.
                for &(u, _link_vu) in &adj[v as usize] {
                    let slot = d * s_count + u as usize;
                    if dist[slot] == u16::MAX {
                        dist[slot] = dv + 1;
                        // u's first hop toward d is its link to v.
                        let link_uv = adj[u as usize]
                            .iter()
                            .find(|&&(w, _)| w == v)
                            .expect("symmetric adjacency")
                            .1;
                        next_link[u as usize * s_count + d] = link_uv;
                        queue.push_back(u);
                    }
                }
            }
        }
        // Connectivity check.
        for s in 0..s_count {
            for d in 0..s_count {
                assert!(
                    dist[d * s_count + s] != u16::MAX,
                    "jellyfish seed produced a disconnected graph (switch {s} / {d})"
                );
            }
        }
        // Re-index dist to [s][d] layout for the public distance query.
        let mut dist_sd = vec![0u16; s_count * s_count];
        for s in 0..s_count {
            for d in 0..s_count {
                dist_sd[s * s_count + d] = dist[d * s_count + s];
            }
        }

        Jellyfish {
            net: b.build(),
            switches,
            endpoint_ports,
            next_link,
            dist: dist_sd,
            ep_up,
            ep_down,
        }
    }

    /// Number of switches.
    pub fn num_switches(&self) -> u32 {
        self.switches
    }

    /// Endpoints per switch.
    pub fn endpoint_ports(&self) -> u32 {
        self.endpoint_ports
    }

    #[inline]
    fn switch_of(&self, ep: u32) -> u32 {
        ep / self.endpoint_ports
    }
}

/// Seeded random regular graph on `n` vertices with degree `r`: stub
/// matching with rejection of self-loops/parallel edges and pairwise swap
/// fix-ups, retried with derived seeds until simple (in practice the first
/// or second attempt succeeds).
fn random_regular_graph(n: u32, r: u32, seed: u64) -> Vec<(u32, u32)> {
    for attempt in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt));
        let mut stubs: Vec<u32> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v, r as usize))
            .collect();
        stubs.shuffle(&mut rng);
        let mut edges: Vec<(u32, u32)> = stubs
            .chunks_exact(2)
            .map(|c| (c[0].min(c[1]), c[0].max(c[1])))
            .collect();
        // Swap fix-ups: resolve self-loops and duplicates by exchanging
        // endpoints with a random other edge.
        let mut ok = false;
        for _ in 0..10 * edges.len() {
            let mut seen = std::collections::HashSet::new();
            let bad: Vec<usize> = edges
                .iter()
                .enumerate()
                .filter(|(_, &(x, y))| x == y || !seen.insert((x, y)))
                .map(|(i, _)| i)
                .collect();
            if bad.is_empty() {
                ok = true;
                break;
            }
            for &i in &bad {
                let j = rand::Rng::random_range(&mut rng, 0..edges.len());
                if i == j {
                    continue;
                }
                let (a, bq) = edges[i];
                let (c, d) = edges[j];
                edges[i] = (a.min(d), a.max(d));
                edges[j] = (c.min(bq), c.max(bq));
            }
        }
        if ok {
            return edges;
        }
    }
    panic!("failed to build a simple {r}-regular graph on {n} vertices");
}

impl Topology for Jellyfish {
    fn name(&self) -> String {
        format!(
            "Jellyfish({} switches, {} eps/switch)",
            self.switches, self.endpoint_ports
        )
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        path.push(LinkId(self.ep_up[src.0 as usize]));
        let mut s = self.switch_of(src.0);
        let d = self.switch_of(dst.0);
        while s != d {
            let lid = self.next_link[(s as usize) * self.switches as usize + d as usize];
            debug_assert_ne!(lid, u32::MAX);
            path.push(LinkId(lid));
            // The link's destination node is a switch; recover its index.
            let node = self.net.link(LinkId(lid)).dst;
            s = node.0 - self.num_endpoints() as u32;
        }
        path.push(LinkId(self.ep_down[dst.0 as usize]));
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        if src == dst {
            return 0;
        }
        let s = self.switch_of(src.0);
        let d = self.switch_of(dst.0);
        2 + self.dist[(s as usize) * self.switches as usize + d as usize] as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_route;
    use exaflow_netgraph::bfs_distances_physical;

    #[test]
    fn sizes_and_degrees() {
        let j = Jellyfish::new(16, 2, 4, 1);
        assert_eq!(j.num_endpoints(), 32);
        assert_eq!(j.network().num_switches(), 16);
        // Every switch: 2 endpoint duplex + 4 fabric duplex = 12 directed.
        for sw in j.network().switch_ids() {
            assert_eq!(j.network().out_degree(sw), 6);
        }
    }

    #[test]
    fn routes_valid_all_pairs() {
        let j = Jellyfish::new(12, 2, 3, 7);
        let e = j.num_endpoints() as u32;
        for s in 0..e {
            for d in 0..e {
                check_route(&j, NodeId(s), NodeId(d)).unwrap();
            }
        }
    }

    #[test]
    fn distances_match_bfs() {
        let j = Jellyfish::new(10, 1, 3, 3);
        for s in [0u32, 4, 9] {
            let bfs = bfs_distances_physical(j.network(), NodeId(s));
            for d in 0..j.num_endpoints() as u32 {
                assert_eq!(
                    j.distance(NodeId(s), NodeId(d)),
                    bfs[d as usize],
                    "({s},{d})"
                );
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Jellyfish::new(12, 1, 3, 9);
        let b = Jellyfish::new(12, 1, 3, 9);
        assert_eq!(a.network().num_links(), b.network().num_links());
        for (la, lb) in a.network().links().iter().zip(b.network().links()) {
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn regular_graph_is_simple_and_regular() {
        let edges = random_regular_graph(20, 5, 42);
        assert_eq!(edges.len(), 50);
        let mut deg = [0u32; 20];
        let mut seen = std::collections::HashSet::new();
        for &(x, y) in &edges {
            assert_ne!(x, y, "self-loop");
            assert!(seen.insert((x, y)), "parallel edge {x}-{y}");
            deg[x as usize] += 1;
            deg[y as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d == 5));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_degree_sum_rejected() {
        Jellyfish::new(5, 1, 3, 0);
    }
}
