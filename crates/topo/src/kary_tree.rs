//! k-ary n-tree fattrees (Petrini & Vanneschi) with destination-based
//! minimal UP*/DOWN* routing.
//!
//! A k-ary n-tree has `k^n` endpoint ports and `n·k^(n-1)` switches of radix
//! `2k` arranged in `n` stages. Switches are identified by `(level, word)`
//! where `word` is an (n-1)-digit base-k number; switch `(l, w)` connects to
//! `(l+1, w')` iff the words agree on every digit except digit `l`.
//! Port `p` attaches to leaf switch `(0, p / k)`.
//!
//! Routing ascends to the lowest common ancestor level, choosing the free
//! word digits from the *destination* (the classic d-mod-k scheme, which
//! spreads uniform traffic and makes the downward route a pure function of
//! the destination), then descends along forced links. The paper uses this
//! tree both as its `Fattree` baseline (restricted to three stages) and as
//! the `NestTree` upper tier.
//!
//! [`TreeTier`] is the reusable core: it wires the switch fabric into an
//! existing [`NetworkBuilder`] and attaches an arbitrary caller-supplied
//! list of nodes as ports — endpoints for the standalone [`KAryTree`],
//! uplinked torus QFDBs for `NestTree`.

use crate::{Topology, LINK_RATE_BPS};
use exaflow_netgraph::{LinkId, Network, NetworkBuilder, NodeId};

/// The switch fabric of a k-ary n-tree attached to a list of port nodes.
#[derive(Debug)]
pub struct TreeTier {
    k: u32,
    n: u32,
    num_ports: usize,
    /// k^(n-1): switches per level.
    words: u64,
    /// Node id of switch (0, 0); levels are contiguous.
    switch_base: u32,
    /// Port uplink / downlink link ids, indexed by port.
    ep_up: Vec<u32>,
    ep_down: Vec<u32>,
    /// `up[(l*words + w)*k + v]` = link (l,w) → (l+1, w[l←v]).
    up: Vec<u32>,
    /// `down[(l*words + w')*k + v]` = link (l+1,w') → (l, w'[l←v]).
    down: Vec<u32>,
}

impl TreeTier {
    /// Wire a k-ary n-tree into `b`, attaching `ports` (existing nodes) to
    /// the first `ports.len()` tree ports in order.
    ///
    /// Panics if `ports.len()` exceeds `k^n` or is zero.
    pub fn build_into(
        b: &mut NetworkBuilder,
        k: u32,
        n: u32,
        ports: &[NodeId],
        capacity_bps: f64,
    ) -> Self {
        Self::build_into_oversubscribed(b, k, n, ports, capacity_bps, 1.0)
    }

    /// Like [`TreeTier::build_into`], but thinning the capacity of every
    /// switch-to-switch link by `oversubscription` (≥ 1): a factor of 4
    /// models a 4:1 thintree, the k:k'-ary n-tree of Navaridas et al. 2010
    /// cited by the paper, at flow-level fidelity (aggregate upward
    /// bandwidth rather than individual trunk cables).
    ///
    /// The paper's own fattrees use no oversubscription (factor 1).
    pub fn build_into_oversubscribed(
        b: &mut NetworkBuilder,
        k: u32,
        n: u32,
        ports: &[NodeId],
        capacity_bps: f64,
        oversubscription: f64,
    ) -> Self {
        assert!(
            oversubscription >= 1.0 && oversubscription.is_finite(),
            "oversubscription factor must be >= 1, got {oversubscription}"
        );
        let fabric_bps = capacity_bps / oversubscription;
        assert!(k >= 2, "arity must be >= 2");
        assert!(n >= 1, "at least one stage required");
        let max_ports = (k as u64).checked_pow(n).expect("tree size overflow");
        assert!(
            ports.len() as u64 <= max_ports,
            "{} ports exceed {max_ports} of a {k}-ary {n}-tree",
            ports.len()
        );
        assert!(!ports.is_empty(), "at least one port required");
        let words = (k as u64).pow(n - 1);
        let switch_base = b.num_nodes() as u32;
        b.add_switches((n as u64 * words) as usize);
        let switch_id =
            |l: u32, w: u64| -> NodeId { NodeId(switch_base + (l as u64 * words + w) as u32) };
        let mut ep_up = vec![0u32; ports.len()];
        let mut ep_down = vec![0u32; ports.len()];
        for (p, &node) in ports.iter().enumerate() {
            let leaf = switch_id(0, p as u64 / k as u64);
            let (upl, downl) = b.add_duplex(node, leaf, capacity_bps);
            ep_up[p] = upl.0;
            ep_down[p] = downl.0;
        }
        let table_len = (n as usize - 1) * words as usize * k as usize;
        let mut up = vec![0u32; table_len];
        let mut down = vec![0u32; table_len];
        for l in 0..n - 1 {
            let stride = (k as u64).pow(l);
            for w in 0..words {
                let wl = (w / stride) % k as u64;
                for v in 0..k as u64 {
                    let w_up = (w as i64 + (v as i64 - wl as i64) * stride as i64) as u64;
                    let (a, bk) = b.add_duplex(switch_id(l, w), switch_id(l + 1, w_up), fabric_bps);
                    up[((l as u64 * words + w) * k as u64 + v) as usize] = a.0;
                    down[((l as u64 * words + w_up) * k as u64 + wl) as usize] = bk.0;
                }
            }
        }
        TreeTier {
            k,
            n,
            num_ports: ports.len(),
            words,
            switch_base,
            ep_up,
            ep_down,
            up,
            down,
        }
    }

    /// Tree arity (half the switch radix).
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of stages.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of attached ports.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Total port slots (`k^n`), populated or not.
    pub fn max_ports(&self) -> u64 {
        (self.k as u64).pow(self.n)
    }

    /// Number of switches (`n · k^(n-1)`).
    pub fn num_switches(&self) -> u64 {
        self.n as u64 * self.words
    }

    /// Highest digit position at which two leaf words differ, if any.
    #[inline]
    fn highest_diff_digit(&self, wa: u64, wb: u64) -> Option<u32> {
        if wa == wb {
            return None;
        }
        let k = self.k as u64;
        let mut pos = None;
        let (mut x, mut y, mut p) = (wa, wb, 0u32);
        while x != 0 || y != 0 {
            if x % k != y % k {
                pos = Some(p);
            }
            x /= k;
            y /= k;
            p += 1;
        }
        pos
    }

    /// Append the port-to-port path (including both port attach links).
    pub fn route_ports(&self, src: u64, dst: u64, path: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        let k = self.k as u64;
        path.push(LinkId(self.ep_up[src as usize]));
        let leaf_s = src / k;
        let leaf_d = dst / k;
        if let Some(hi) = self.highest_diff_digit(leaf_s, leaf_d) {
            let levels = hi + 1;
            // Ascend with d-mod-k load spreading: the free word digit of
            // each up step is digit l of the *full destination id*, so
            // flows to the k endpoints of one leaf fan out over k distinct
            // subtrees and flows to one destination converge on a single
            // apex (the InfiniBand-style deterministic fattree routing).
            let mut w = leaf_s;
            for l in 0..levels {
                let stride = k.pow(l);
                let v = (dst / stride) % k;
                let wl = (w / stride) % k;
                path.push(LinkId(
                    self.up[((l as u64 * self.words + w) * k + v) as usize],
                ));
                w = (w as i64 + (v as i64 - wl as i64) * stride as i64) as u64;
            }
            // Descend along forced links: step level l+1 → l fixes word
            // digit l to the destination word's digit.
            for l in (0..levels).rev() {
                let stride = k.pow(l);
                let v = (leaf_d / stride) % k;
                let wl = (w / stride) % k;
                path.push(LinkId(
                    self.down[((l as u64 * self.words + w) * k + v) as usize],
                ));
                w = (w as i64 + (v as i64 - wl as i64) * stride as i64) as u64;
            }
            debug_assert_eq!(w, leaf_d, "descent must land on the destination leaf");
        }
        path.push(LinkId(self.ep_down[dst as usize]));
    }

    /// Port-to-port hop count: 0, 2 (same leaf) or `2·(hi+1) + 2`.
    #[inline]
    pub fn distance_ports(&self, src: u64, dst: u64) -> u32 {
        if src == dst {
            return 0;
        }
        let k = self.k as u64;
        match self.highest_diff_digit(src / k, dst / k) {
            None => 2,
            Some(hi) => 2 * (hi + 1) + 2,
        }
    }

    /// Largest port-to-port hop count over populated ports. Ports `0` and
    /// `num_ports - 1` differ in the highest digit any populated pair can
    /// differ in, so their distance is the populated diameter.
    pub fn max_distance_ports(&self) -> u32 {
        if self.num_ports <= 1 {
            return 0;
        }
        self.distance_ports(0, self.num_ports as u64 - 1)
    }

    /// Node id of switch `(level, word)`.
    pub fn switch_node(&self, level: u32, word: u64) -> NodeId {
        NodeId(self.switch_base + (level as u64 * self.words + word) as u32)
    }
}

/// A standalone k-ary n-tree whose ports are compute endpoints.
#[derive(Debug)]
pub struct KAryTree {
    net: Network,
    tier: TreeTier,
}

impl KAryTree {
    /// Build a fully-populated k-ary n-tree (`k^n` endpoints) at 10 Gbps.
    pub fn new(k: u32, n: u32) -> Self {
        let eps = (k as u64).pow(n);
        Self::with_endpoints(k, n, eps as usize)
    }

    /// Build a k-ary n-tree with only the first `num_eps` ports populated.
    pub fn with_endpoints(k: u32, n: u32, num_eps: usize) -> Self {
        Self::with_capacity_bps(k, n, num_eps, LINK_RATE_BPS)
    }

    /// Build with a custom link capacity.
    pub fn with_capacity_bps(k: u32, n: u32, num_eps: usize, capacity_bps: f64) -> Self {
        Self::with_oversubscription(k, n, num_eps, capacity_bps, 1.0)
    }

    /// Build a thinned tree: switch-to-switch capacity divided by
    /// `oversubscription` (a flow-level k:k\'-ary n-tree). Extension beyond
    /// the paper, which studies non-blocking fattrees only.
    pub fn with_oversubscription(
        k: u32,
        n: u32,
        num_eps: usize,
        capacity_bps: f64,
        oversubscription: f64,
    ) -> Self {
        let mut b = NetworkBuilder::new();
        let first = b.add_endpoints(num_eps);
        let ports: Vec<NodeId> = (0..num_eps as u32).map(|i| NodeId(first.0 + i)).collect();
        let tier = TreeTier::build_into_oversubscribed(
            &mut b,
            k,
            n,
            &ports,
            capacity_bps,
            oversubscription,
        );
        KAryTree {
            net: b.build(),
            tier,
        }
    }

    /// The underlying tier.
    pub fn tier(&self) -> &TreeTier {
        &self.tier
    }

    /// Tree arity.
    pub fn k(&self) -> u32 {
        self.tier.k
    }

    /// Number of stages.
    pub fn n(&self) -> u32 {
        self.tier.n
    }

    /// Number of switches.
    pub fn num_switches(&self) -> u64 {
        self.tier.num_switches()
    }

    /// Smallest arity `k` such that a k-ary `n`-tree has at least `ports`
    /// endpoint ports. Used to size `NestTree` upper tiers.
    pub fn arity_for_ports(ports: u64, n: u32) -> u32 {
        assert!(ports >= 1 && n >= 1);
        let mut k = 2u32;
        while (k as u64).pow(n) < ports {
            k += 1;
        }
        k
    }

    /// Diameter over populated endpoints.
    pub fn diameter(&self) -> u32 {
        if self.tier.num_ports <= 1 {
            return 0;
        }
        self.tier.distance_ports(0, self.tier.num_ports as u64 - 1)
    }

    /// Exact average port-to-port distance over ordered pairs of populated
    /// endpoints, `src != dst`.
    pub fn average_distance(&self) -> f64 {
        let e = self.tier.num_ports as u64;
        if e <= 1 {
            return 0.0;
        }
        let k = self.tier.k as u64;
        if e == self.tier.max_ports() {
            let mut sum = (k - 1) as f64 * 2.0;
            for j in 0..self.tier.n - 1 {
                let count = (k - 1) as f64 * k.pow(j) as f64 * k as f64;
                sum += count * (2 * (j + 1) + 2) as f64;
            }
            return sum / (e - 1) as f64;
        }
        // Partial population: distance depends only on the two leaf words.
        let leaves = e.div_ceil(k);
        let pop = |leaf: u64| -> f64 {
            let lo = leaf * k;
            let hi = ((leaf + 1) * k).min(e);
            (hi - lo) as f64
        };
        let mut total = 0f64;
        for la in 0..leaves {
            let ca = pop(la);
            for lb in 0..leaves {
                let cb = pop(lb);
                if la == lb {
                    total += ca * (ca - 1.0) * 2.0;
                } else {
                    let hi = self.tier.highest_diff_digit(la, lb).expect("distinct");
                    total += ca * cb * (2 * (hi + 1) + 2) as f64;
                }
            }
        }
        total / (e * (e - 1)) as f64
    }
}

impl Topology for KAryTree {
    fn name(&self) -> String {
        if self.tier.num_ports as u64 == self.tier.max_ports() {
            format!("Fattree({}-ary {}-tree)", self.tier.k, self.tier.n)
        } else {
            format!(
                "Fattree({}-ary {}-tree, {} of {} ports)",
                self.tier.k,
                self.tier.n,
                self.tier.num_ports,
                self.tier.max_ports()
            )
        }
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        self.tier.route_ports(src.0 as u64, dst.0 as u64, path);
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        self.tier.distance_ports(src.0 as u64, dst.0 as u64)
    }

    fn diameter_bound(&self) -> u32 {
        self.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_route;
    use exaflow_netgraph::bfs_distances_physical;

    #[test]
    fn counts_4ary_2tree() {
        // The paper's Figure 2c example: 16 endpoints, 8 switches.
        let t = KAryTree::new(4, 2);
        assert_eq!(t.num_endpoints(), 16);
        assert_eq!(t.num_switches(), 8);
        assert_eq!(t.network().num_switches(), 8);
        assert_eq!(t.network().num_links(), 2 * (16 + 16));
    }

    #[test]
    fn routes_valid_all_pairs() {
        let t = KAryTree::new(3, 3);
        let n = t.num_endpoints() as u32;
        for s in 0..n {
            for d in 0..n {
                check_route(&t, NodeId(s), NodeId(d)).unwrap();
            }
        }
    }

    #[test]
    fn distances_match_bfs() {
        // UP*/DOWN* through the LCA is minimal in a k-ary n-tree.
        let t = KAryTree::new(4, 2);
        for s in [0u32, 5, 15] {
            let bfs = bfs_distances_physical(t.network(), NodeId(s));
            for d in 0..t.num_endpoints() as u32 {
                assert_eq!(
                    t.distance(NodeId(s), NodeId(d)),
                    bfs[d as usize],
                    "({s},{d})"
                );
            }
        }
    }

    #[test]
    fn diameter_is_2n() {
        assert_eq!(KAryTree::new(2, 3).diameter(), 6);
        assert_eq!(KAryTree::new(4, 2).diameter(), 4);
        // Any 3-stage fattree has diameter 6 — the paper's reference value.
        assert_eq!(KAryTree::new(3, 3).diameter(), 6);
    }

    #[test]
    fn same_leaf_distance_two() {
        let t = KAryTree::new(4, 2);
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 2);
        assert_eq!(t.distance(NodeId(0), NodeId(3)), 2);
        assert_eq!(t.distance(NodeId(0), NodeId(4)), 4);
    }

    #[test]
    fn partial_population_routes() {
        let t = KAryTree::with_endpoints(4, 2, 10);
        assert_eq!(t.num_endpoints(), 10);
        let n = t.num_endpoints() as u32;
        for s in 0..n {
            for d in 0..n {
                check_route(&t, NodeId(s), NodeId(d)).unwrap();
            }
        }
    }

    #[test]
    fn average_distance_closed_form_matches_brute() {
        for (k, n) in [(2u32, 2u32), (4, 2), (2, 3), (3, 3)] {
            let t = KAryTree::new(k, n);
            let e = t.num_endpoints() as u32;
            let mut sum = 0u64;
            for s in 0..e {
                for d in 0..e {
                    if s != d {
                        sum += t.distance(NodeId(s), NodeId(d)) as u64;
                    }
                }
            }
            let brute = sum as f64 / (e as u64 * (e as u64 - 1)) as f64;
            assert!(
                (t.average_distance() - brute).abs() < 1e-9,
                "k={k} n={n}: {} vs {brute}",
                t.average_distance()
            );
        }
    }

    #[test]
    fn average_distance_partial_matches_brute() {
        let t = KAryTree::with_endpoints(3, 3, 17);
        let e = t.num_endpoints() as u32;
        let mut sum = 0u64;
        for s in 0..e {
            for d in 0..e {
                if s != d {
                    sum += t.distance(NodeId(s), NodeId(d)) as u64;
                }
            }
        }
        let brute = sum as f64 / (e as u64 * (e as u64 - 1)) as f64;
        assert!((t.average_distance() - brute).abs() < 1e-9);
    }

    #[test]
    fn arity_for_ports_minimal() {
        assert_eq!(KAryTree::arity_for_ports(4096, 3), 16);
        assert_eq!(KAryTree::arity_for_ports(4097, 3), 17);
        assert_eq!(KAryTree::arity_for_ports(1, 3), 2);
        assert_eq!(KAryTree::arity_for_ports(131072, 3), 51);
    }

    #[test]
    fn up_routes_spread_over_subtrees() {
        // d-mod-k: flows from one leaf to the k endpoints of another leaf
        // fan out over k distinct apex switches, and flows from different
        // sources to one destination converge on the same apex.
        let t = KAryTree::new(4, 3);
        let apex = |path: &[LinkId]| {
            let apex_link = path[path.len() / 2 - 1];
            t.network().link(apex_link).dst
        };
        let mut apexes = std::collections::HashSet::new();
        for dst in 32..48u32 {
            apexes.insert(apex(&t.route_vec(NodeId(0), NodeId(dst))));
        }
        assert!(apexes.len() >= 4, "only {} distinct apexes", apexes.len());
        let p1 = t.route_vec(NodeId(0), NodeId(37));
        let p2 = t.route_vec(NodeId(55), NodeId(37));
        assert_eq!(apex(&p1), apex(&p2));
    }

    #[test]
    fn routing_is_deterministic() {
        let t = KAryTree::new(5, 3);
        for (s, d) in [(0u32, 99u32), (37, 11), (124, 0)] {
            assert_eq!(
                t.route_vec(NodeId(s), NodeId(d)),
                t.route_vec(NodeId(s), NodeId(d))
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_endpoints_panics() {
        KAryTree::with_endpoints(2, 2, 5);
    }

    #[test]
    fn oversubscription_thins_fabric_links() {
        let full = KAryTree::new(4, 2);
        let thin = KAryTree::with_oversubscription(4, 2, 16, 10e9, 4.0);
        // Endpoint links keep line rate; switch-switch links are thinned.
        let mut fabric_caps = std::collections::HashSet::new();
        for l in thin.network().links() {
            let is_ep_link = thin.network().is_endpoint(l.src) || thin.network().is_endpoint(l.dst);
            if is_ep_link {
                assert_eq!(l.capacity_bps, 10e9);
            } else {
                fabric_caps.insert(l.capacity_bps.to_bits());
            }
        }
        assert_eq!(fabric_caps.len(), 1);
        assert_eq!(f64::from_bits(*fabric_caps.iter().next().unwrap()), 2.5e9);
        // Structure identical to the full tree.
        assert_eq!(thin.network().num_links(), full.network().num_links());
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn oversubscription_below_one_rejected() {
        KAryTree::with_oversubscription(4, 2, 16, 10e9, 0.5);
    }

    #[test]
    fn switch_node_layout() {
        let t = KAryTree::new(2, 2);
        // 4 endpoints then switches: (0,0),(0,1),(1,0),(1,1).
        assert_eq!(t.tier().switch_node(0, 0), NodeId(4));
        assert_eq!(t.tier().switch_node(1, 1), NodeId(7));
    }
}
