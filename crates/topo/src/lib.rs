//! Topology generators and deterministic routing functions.
//!
//! This crate implements every network arrangement studied in
//! *"Design Exploration of Multi-tier Interconnection Networks for Exascale
//! Systems"* (ICPP 2019):
//!
//! * [`Torus`] — d-dimensional torus with dimension-order routing (DOR);
//!   the hard-wired lower tier of the ExaNeSt system and the `Torus3D`
//!   baseline of the paper's figures.
//! * [`KAryTree`] — the k-ary n-tree fattree (Petrini & Vanneschi) with
//!   minimal UP*/DOWN* destination-based routing; the `Fattree` baseline and
//!   the `NestTree` upper tier.
//! * [`GeneralizedHypercube`] — the GHC (Bhuyan & Agrawal) with e-cube
//!   routing; the `NestGHC` upper tier.
//! * [`Nested`] — the paper's hybrid multi-tier topologies `NestTree(t,u)`
//!   and `NestGHC(t,u)`: disjoint t×t×t subtori whose uplinked nodes attach
//!   to an upper-tier fattree or GHC, with the paper's three-segment routing
//!   (DOR to the nearest uplinked node, minimal routing in the upper tier,
//!   DOR to the destination) and the rule that intra-subtorus traffic never
//!   leaves its subtorus.
//! * [`connection`] — the four uplink-density connection rules of Figure 3
//!   (u ∈ {1, 2, 4, 8} QFDBs per uplink).
//!
//! Extensions beyond the paper, clearly flagged in their module docs:
//! [`Dragonfly`] and [`Jellyfish`] (comparators the paper only discusses in
//! related work) and [`Degraded`] (link-failure injection with
//! fault-tolerant rerouting, from the paper's future-work list).
//!
//! All routing functions are deterministic and table-driven: each generator
//! records the link ids it creates so the hot routing path performs O(1)
//! array lookups per hop instead of adjacency searches.

pub mod connection;
pub mod dragonfly;
pub mod failures;
pub mod ghc;
pub mod jellyfish;
pub mod kary_tree;
pub mod mixed_radix;
pub mod nested;
pub mod route_table;
pub mod torus;

pub use connection::{ConnectionRule, UplinkMap};
pub use dragonfly::Dragonfly;
pub use failures::{Degraded, FaultOverlay};
pub use ghc::GeneralizedHypercube;
pub use jellyfish::Jellyfish;
pub use kary_tree::KAryTree;
pub use mixed_radix::MixedRadix;
pub use nested::{Nested, UpperTierKind};
pub use route_table::{RouteTable, Tabled, DEFAULT_TABLE_MAX_ENDPOINTS};
pub use torus::Torus;

use exaflow_netgraph::{LinkId, Network, NodeId};

/// Default link rate of the ExaNeSt transceivers: 10 Gbps.
pub const LINK_RATE_BPS: f64 = 10e9;

/// Routing failure: `dst` cannot be reached from `src`.
///
/// The generators in this crate route totally by construction, so this can
/// only arise from wrappers that remove connectivity — today, [`Degraded`]
/// when injected link failures partition the network. Carried up through
/// [`Topology::try_route`] so bulk experiment drivers see a per-experiment
/// error instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteError {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Display name of the topology that failed to route.
    pub topology: String,
    /// Number of failed unidirectional links, when failures are in play.
    pub failed_links: usize,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} cannot reach {} after {} link failures",
            self.topology, self.src, self.dst, self.failed_links
        )
    }
}

impl std::error::Error for RouteError {}

/// A network topology with deterministic single-path routing.
///
/// Endpoints are the node ids `0..num_endpoints()`; routing is defined only
/// between endpoints. Implementations must guarantee:
///
/// * `route(s, s, ..)` appends nothing,
/// * the appended path is a loop-free walk `s → d` over physical links,
/// * `distance(s, d)` equals the length of `route(s, d, ..)`,
/// * routing is a pure function of `(s, d)`.
///
/// These invariants are exercised by this crate's property tests.
pub trait Topology: Send + Sync {
    /// Human-readable name, e.g. `NestGHC(t=2,u=4)`.
    fn name(&self) -> String;

    /// The underlying graph.
    fn network(&self) -> &Network;

    /// Number of compute endpoints.
    fn num_endpoints(&self) -> usize {
        self.network().num_endpoints()
    }

    /// Append the deterministic route from endpoint `src` to endpoint `dst`
    /// onto `path`. Appends nothing when `src == dst`.
    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>);

    /// Fallible routing: like [`Topology::route`], but reports an
    /// unreachable destination as a [`RouteError`] instead of panicking.
    ///
    /// The default forwards to `route`, which is total for every generator
    /// in this crate; wrappers that can lose connectivity ([`Degraded`])
    /// override it. Engines that consume untrusted configuration should
    /// call this instead of `route`.
    fn try_route(
        &self,
        src: NodeId,
        dst: NodeId,
        path: &mut Vec<LinkId>,
    ) -> Result<(), RouteError> {
        self.route(src, dst, path);
        Ok(())
    }

    /// Whether `link` is currently out of service. Always `false` for the
    /// healthy generators in this crate; [`Degraded`] overrides it so
    /// wrappers layered on top (notably [`FaultOverlay`]) can avoid links
    /// that were already failed before the run started.
    fn link_is_failed(&self, _link: LinkId) -> bool {
        false
    }

    /// Number of links currently out of service (for error reporting).
    fn num_failed_links(&self) -> usize {
        0
    }

    /// Number of physical link hops of the deterministic route.
    ///
    /// The default computes the route; generators override this with an O(1)
    /// closed form where one exists (all of them in this crate do).
    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        let mut path = Vec::new();
        self.route(src, dst, &mut path);
        path.len() as u32
    }

    /// Route into a fresh vector (convenience wrapper).
    fn route_vec(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let mut p = Vec::new();
        self.route(src, dst, &mut p);
        p
    }

    /// An inclusive upper bound on [`Topology::distance`] over all endpoint
    /// pairs, so histogram consumers can size buffers once instead of
    /// growing them per pair.
    ///
    /// The default is the loop-free-walk bound (a route never revisits a
    /// node, so it spans at most `num_nodes` links); generators override it
    /// with the exact diameter where a closed form exists. Fault wrappers
    /// keep the default: a BFS detour may legitimately exceed the nominal
    /// diameter.
    fn diameter_bound(&self) -> u32 {
        self.network().num_nodes() as u32
    }
}

impl Topology for Box<dyn Topology> {
    fn name(&self) -> String {
        self.as_ref().name()
    }
    fn network(&self) -> &Network {
        self.as_ref().network()
    }
    fn num_endpoints(&self) -> usize {
        self.as_ref().num_endpoints()
    }
    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        self.as_ref().route(src, dst, path)
    }
    fn try_route(
        &self,
        src: NodeId,
        dst: NodeId,
        path: &mut Vec<LinkId>,
    ) -> Result<(), RouteError> {
        self.as_ref().try_route(src, dst, path)
    }
    fn link_is_failed(&self, link: LinkId) -> bool {
        self.as_ref().link_is_failed(link)
    }
    fn num_failed_links(&self) -> usize {
        self.as_ref().num_failed_links()
    }
    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        self.as_ref().distance(src, dst)
    }
    fn diameter_bound(&self) -> u32 {
        self.as_ref().diameter_bound()
    }
}

impl Topology for std::sync::Arc<dyn Topology> {
    fn name(&self) -> String {
        self.as_ref().name()
    }
    fn network(&self) -> &Network {
        self.as_ref().network()
    }
    fn num_endpoints(&self) -> usize {
        self.as_ref().num_endpoints()
    }
    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        self.as_ref().route(src, dst, path)
    }
    fn try_route(
        &self,
        src: NodeId,
        dst: NodeId,
        path: &mut Vec<LinkId>,
    ) -> Result<(), RouteError> {
        self.as_ref().try_route(src, dst, path)
    }
    fn link_is_failed(&self, link: LinkId) -> bool {
        self.as_ref().link_is_failed(link)
    }
    fn num_failed_links(&self) -> usize {
        self.as_ref().num_failed_links()
    }
    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        self.as_ref().distance(src, dst)
    }
    fn diameter_bound(&self) -> u32 {
        self.as_ref().diameter_bound()
    }
}

/// Check the routing invariants for a `(src, dst)` pair; used by tests.
///
/// Returns the path length on success.
pub fn check_route(topo: &dyn Topology, src: NodeId, dst: NodeId) -> Result<u32, String> {
    let path = topo.route_vec(src, dst);
    exaflow_netgraph::validate_path(topo.network(), src, dst, &path)
        .map_err(|e| format!("{}: route {src}->{dst}: {e}", topo.name()))?;
    for &lid in &path {
        if topo.network().link(lid).is_virtual {
            return Err(format!(
                "{}: route {src}->{dst} traverses virtual link {lid}",
                topo.name()
            ));
        }
    }
    let d = topo.distance(src, dst);
    if d != path.len() as u32 {
        return Err(format!(
            "{}: distance({src},{dst}) = {d} but route has {} hops",
            topo.name(),
            path.len()
        ));
    }
    Ok(d)
}
