//! Mixed-radix coordinate arithmetic shared by the torus and the
//! generalised hypercube.
//!
//! A [`MixedRadix`] maps between linear indices and coordinate vectors for a
//! grid with per-dimension sizes `dims`. Dimension 0 is the fastest-varying
//! (least significant) digit, so linear index
//! `i = c0 + c1*dims[0] + c2*dims[0]*dims[1] + …`.

use serde::{Deserialize, Serialize};

/// Mixed-radix index ↔ coordinate mapping.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixedRadix {
    dims: Vec<u32>,
    /// `strides[i]` = product of dims below i.
    strides: Vec<u64>,
    total: u64,
}

impl MixedRadix {
    /// Create a mapping for the given per-dimension sizes.
    ///
    /// Panics if any dimension is zero or if the total size overflows `u64`.
    pub fn new(dims: &[u32]) -> Self {
        assert!(!dims.is_empty(), "at least one dimension required");
        let mut strides = Vec::with_capacity(dims.len());
        let mut acc: u64 = 1;
        for &d in dims {
            assert!(d > 0, "zero-sized dimension");
            strides.push(acc);
            acc = acc.checked_mul(d as u64).expect("grid size overflow");
        }
        MixedRadix {
            dims: dims.to_vec(),
            strides,
            total: acc,
        }
    }

    /// Per-dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of grid points.
    #[inline]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the grid is empty (never true: dims are positive).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Decode linear index `i` into `coords` (which is resized to fit).
    #[inline]
    pub fn decode_into(&self, i: u64, coords: &mut Vec<u32>) {
        debug_assert!(i < self.total, "index {i} out of range {}", self.total);
        coords.clear();
        let mut rest = i;
        for &d in &self.dims {
            coords.push((rest % d as u64) as u32);
            rest /= d as u64;
        }
    }

    /// Decode linear index `i` into a fresh vector.
    pub fn decode(&self, i: u64) -> Vec<u32> {
        let mut c = Vec::with_capacity(self.dims.len());
        self.decode_into(i, &mut c);
        c
    }

    /// Coordinate of `i` in dimension `dim` without materialising the vector.
    #[inline]
    pub fn coord(&self, i: u64, dim: usize) -> u32 {
        ((i / self.strides[dim]) % self.dims[dim] as u64) as u32
    }

    /// Encode coordinates into a linear index.
    #[inline]
    pub fn encode(&self, coords: &[u32]) -> u64 {
        debug_assert_eq!(coords.len(), self.dims.len());
        let mut i = 0u64;
        for (d, (&c, &s)) in coords.iter().zip(&self.strides).enumerate() {
            debug_assert!(c < self.dims[d], "coord {c} out of range in dim {d}");
            i += c as u64 * s;
        }
        i
    }

    /// Linear index of the neighbour of `i` whose coordinate in `dim` is
    /// replaced by `new_coord`.
    #[inline]
    pub fn with_coord(&self, i: u64, dim: usize, new_coord: u32) -> u64 {
        debug_assert!(new_coord < self.dims[dim]);
        let old = self.coord(i, dim);
        i.wrapping_add(
            (new_coord as u64)
                .wrapping_sub(old as u64)
                .wrapping_mul(self.strides[dim]),
        )
    }

    /// Minimal signed hop count from `a` to `b` along `dim` on a ring:
    /// positive = increasing direction. Ties (exactly half way) resolve to
    /// the positive direction, making DOR deterministic.
    #[inline]
    pub fn ring_delta(&self, a: u32, b: u32, dim: usize) -> i32 {
        let n = self.dims[dim] as i32;
        let fwd = (b as i32 - a as i32).rem_euclid(n);
        if fwd * 2 <= n {
            fwd
        } else {
            fwd - n
        }
    }

    /// Minimal (unsigned) ring distance between coordinates in `dim`.
    #[inline]
    pub fn ring_distance(&self, a: u32, b: u32, dim: usize) -> u32 {
        self.ring_delta(a, b, dim).unsigned_abs()
    }
}

/// Factor `n` into `ndims` near-equal factors (largest first), for sizing
/// generalised hypercubes. The product of the returned dims is ≥ `n` and is
/// the smallest such product achievable with this greedy scheme.
pub fn near_equal_dims(n: u64, ndims: usize) -> Vec<u32> {
    assert!(ndims > 0 && n > 0);
    let mut dims = vec![1u32; ndims];
    let mut product = 1u64;
    // Greedily grow the smallest dimension until the grid is large enough.
    while product < n {
        let (idx, _) = dims
            .iter()
            .enumerate()
            .min_by_key(|&(_, &d)| d)
            .expect("ndims > 0");
        product = product / dims[idx] as u64 * (dims[idx] as u64 + 1);
        dims[idx] += 1;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let m = MixedRadix::new(&[4, 3, 2]);
        assert_eq!(m.len(), 24);
        for i in 0..m.len() {
            let c = m.decode(i);
            assert_eq!(m.encode(&c), i);
        }
    }

    #[test]
    fn dim0_is_fastest() {
        let m = MixedRadix::new(&[4, 3]);
        assert_eq!(m.decode(0), vec![0, 0]);
        assert_eq!(m.decode(1), vec![1, 0]);
        assert_eq!(m.decode(4), vec![0, 1]);
    }

    #[test]
    fn coord_matches_decode() {
        let m = MixedRadix::new(&[5, 7, 3]);
        for i in (0..m.len()).step_by(11) {
            let c = m.decode(i);
            for (d, &expect) in c.iter().enumerate() {
                assert_eq!(m.coord(i, d), expect);
            }
        }
    }

    #[test]
    fn with_coord_replaces_single_dimension() {
        let m = MixedRadix::new(&[4, 4, 4]);
        let i = m.encode(&[1, 2, 3]);
        let j = m.with_coord(i, 1, 0);
        assert_eq!(m.decode(j), vec![1, 0, 3]);
        // Replacing with the same coordinate is the identity.
        assert_eq!(m.with_coord(i, 2, 3), i);
    }

    #[test]
    fn ring_delta_shortest_and_tiebreak() {
        let m = MixedRadix::new(&[8]);
        assert_eq!(m.ring_delta(0, 3, 0), 3);
        assert_eq!(m.ring_delta(0, 5, 0), -3);
        // Exactly halfway: tie resolves positive.
        assert_eq!(m.ring_delta(0, 4, 0), 4);
        assert_eq!(m.ring_delta(6, 2, 0), 4);
        assert_eq!(m.ring_distance(0, 5, 0), 3);
    }

    #[test]
    fn ring_delta_size_two() {
        let m = MixedRadix::new(&[2]);
        assert_eq!(m.ring_delta(0, 1, 0), 1);
        assert_eq!(m.ring_delta(1, 0, 0), 1);
        assert_eq!(m.ring_distance(1, 0, 0), 1);
    }

    #[test]
    fn ring_delta_size_one() {
        let m = MixedRadix::new(&[1]);
        assert_eq!(m.ring_delta(0, 0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_panics() {
        MixedRadix::new(&[4, 0]);
    }

    #[test]
    fn near_equal_dims_covers() {
        assert_eq!(near_equal_dims(256, 4), vec![4, 4, 4, 4]);
        let d = near_equal_dims(8192, 4);
        let product: u64 = d.iter().map(|&x| x as u64).product();
        assert!(product >= 8192);
        assert!(d.iter().all(|&x| (9..=10).contains(&x)));
        let d1 = near_equal_dims(17, 1);
        assert_eq!(d1, vec![17]);
        let d2 = near_equal_dims(1, 3);
        assert_eq!(d2, vec![1, 1, 1]);
    }

    #[test]
    fn near_equal_dims_is_tight_for_powers() {
        let d = near_equal_dims(65536, 4);
        let product: u64 = d.iter().map(|&x| x as u64).product();
        assert_eq!(product, 65536);
        assert_eq!(d, vec![16, 16, 16, 16]);
    }
}
