//! The paper's hybrid multi-tier topologies: `NestTree(t, u)` and
//! `NestGHC(t, u)`.
//!
//! The system is partitioned into disjoint `t×t×t` subtori of QFDBs (the
//! hard-wired lower tier). One QFDB per `u` is *uplinked* according to the
//! Figure 3 connection rules and attaches, as a port, to an upper-tier
//! topology — a 3-stage fattree (`NestTree`) or a generalised hypercube
//! (`NestGHC`). Uplink ports are numbered globally in subtorus order, so
//! physically adjacent subtori attach to adjacent upper-tier ports.
//!
//! Routing follows the paper exactly:
//!
//! * traffic within a subtorus stays in the subtorus (DOR), reducing
//!   pressure on the upper tier;
//! * traffic between subtori routes DOR from the source to its closest
//!   uplinked node (possibly itself), minimally through the upper tier to
//!   the uplinked node closest to the destination, then DOR to the
//!   destination.

use crate::connection::{ConnectionRule, UplinkMap};
use crate::ghc::GhcTier;
use crate::kary_tree::TreeTier;
use crate::mixed_radix::{near_equal_dims, MixedRadix};
use crate::torus::grid;
use crate::{Topology, LINK_RATE_BPS};
use exaflow_netgraph::{LinkId, Network, NetworkBuilder, NodeId};
use serde::{Deserialize, Serialize};

/// Which topology forms the upper tier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum UpperTierKind {
    /// A 3-stage k-ary tree (`NestTree`); arity is sized to fit the uplinks.
    Fattree,
    /// A generalised hypercube (`NestGHC`) with 16-port routers over a
    /// 4-dimensional near-balanced grid, per the paper's FPGA-router counts.
    GeneralizedHypercube,
}

impl UpperTierKind {
    /// The paper's name for the resulting hybrid.
    pub fn hybrid_name(self) -> &'static str {
        match self {
            UpperTierKind::Fattree => "NestTree",
            UpperTierKind::GeneralizedHypercube => "NestGHC",
        }
    }
}

/// Number of stages of every fattree in the study (paper §4.2: "we restrict
/// our study to fattrees with three stages").
pub const TREE_STAGES: u32 = 3;

/// Maximum endpoint ports per upper-tier GHC router (reverse-engineered
/// from the paper's Table 2: at u=1, 131072 uplinks need 8192 FPGA
/// routers, i.e. 16 ports each).
pub const GHC_MAX_PORTS_PER_ROUTER: u32 = 16;

/// Dimensions of the upper-tier GHC grid (4 dims reproduces the paper's
/// NestGHC(2,1) diameter of 6 = 2 endpoint hops + 4 router hops).
pub const GHC_NDIMS: usize = 4;

/// Size the upper-tier GHC for `uplinks` ports: the fewest routers (at most
/// [`GHC_MAX_PORTS_PER_ROUTER`] ports each) whose per-router fabric degree
/// `Σ(aᵢ − 1)` is at least **twice** the per-router port load. The 2×
/// margin reproduces the provisioning ratio of the paper's full-scale
/// design — 16-port FPGA routers on a grid with degree ≈ 35 — so the GHC
/// is not artificially oversubscribed relative to the paper when the
/// reproduction runs at reduced scales. At the paper's scale this yields
/// exactly its 8192 routers for u = 1.
///
/// Returns `(dims, ports_per_router)`.
pub fn ghc_upper_shape(uplinks: u64) -> (Vec<u32>, u32) {
    assert!(uplinks >= 1);
    let mut routers = uplinks.div_ceil(GHC_MAX_PORTS_PER_ROUTER as u64).max(1);
    loop {
        let dims = near_equal_dims(routers, GHC_NDIMS);
        let degree: u64 = dims.iter().map(|&a| (a - 1) as u64).sum();
        let ports = uplinks.div_ceil(routers);
        if degree >= 2 * ports || routers >= uplinks {
            return (dims, ports as u32);
        }
        routers *= 2;
    }
}

enum Upper {
    Tree(TreeTier),
    Ghc(GhcTier),
}

impl Upper {
    #[inline]
    fn route_ports(&self, a: u64, b: u64, path: &mut Vec<LinkId>) {
        match self {
            Upper::Tree(t) => t.route_ports(a, b, path),
            Upper::Ghc(g) => g.route_ports(a, b, path),
        }
    }

    #[inline]
    fn distance_ports(&self, a: u64, b: u64) -> u32 {
        match self {
            Upper::Tree(t) => t.distance_ports(a, b),
            Upper::Ghc(g) => g.distance_ports(a, b),
        }
    }

    #[inline]
    fn max_distance_ports(&self) -> u32 {
        match self {
            Upper::Tree(t) => t.max_distance_ports(),
            Upper::Ghc(g) => g.max_distance_ports(),
        }
    }
}

/// A torus nested into an upper-tier fattree or generalised hypercube.
pub struct Nested {
    net: Network,
    kind: UpperTierKind,
    rule: ConnectionRule,
    sub_shape: MixedRadix,
    sub_size: u64,
    num_subtori: u64,
    uplinks_per_sub: u64,
    uplink_map: UplinkMap,
    /// Per-subtorus DOR link tables, `sub_size * 2*ndims` entries each.
    torus_tables: Vec<Vec<u32>>,
    upper: Upper,
    num_upper_switches: u64,
}

impl Nested {
    /// Build a `NestTree(t,u)` or `NestGHC(t,u)` over `num_subtori`
    /// subtori of `t×t×t` QFDBs at 10 Gbps.
    pub fn new(kind: UpperTierKind, num_subtori: u64, t: u32, rule: ConnectionRule) -> Self {
        Self::with_capacity_bps(kind, num_subtori, t, rule, LINK_RATE_BPS)
    }

    /// Build with a custom link capacity.
    pub fn with_capacity_bps(
        kind: UpperTierKind,
        num_subtori: u64,
        t: u32,
        rule: ConnectionRule,
        capacity_bps: f64,
    ) -> Self {
        assert!(num_subtori >= 1, "at least one subtorus required");
        assert!(t >= 2, "subtorus must have at least 2 nodes per dimension");
        let sub_shape = MixedRadix::new(&[t, t, t]);
        let sub_size = sub_shape.len();
        let n = num_subtori * sub_size;
        assert!(
            n <= u32::MAX as u64 / 2,
            "system too large for u32 node ids"
        );
        let uplink_map = UplinkMap::new(&sub_shape, rule);
        let uplinks_per_sub = uplink_map.num_uplinks() as u64;
        let total_uplinks = num_subtori * uplinks_per_sub;

        let mut b = NetworkBuilder::new();
        b.add_endpoints(n as usize);

        // Lower tier: one disjoint torus per subtorus.
        let mut torus_tables = Vec::with_capacity(num_subtori as usize);
        for s in 0..num_subtori {
            let first = (s * sub_size) as u32;
            torus_tables.push(grid::build_links(&mut b, first, &sub_shape, capacity_bps));
        }

        // Uplinked QFDB node ids in global port order.
        let mut ports = Vec::with_capacity(total_uplinks as usize);
        for s in 0..num_subtori {
            for &local in uplink_map.uplinked() {
                ports.push(NodeId((s * sub_size) as u32 + local));
            }
        }

        let switches_before = b.num_nodes();
        let upper = match kind {
            UpperTierKind::Fattree => {
                let k = crate::kary_tree::KAryTree::arity_for_ports(total_uplinks, TREE_STAGES);
                Upper::Tree(TreeTier::build_into(
                    &mut b,
                    k,
                    TREE_STAGES,
                    &ports,
                    capacity_bps,
                ))
            }
            UpperTierKind::GeneralizedHypercube => {
                let (dims, ports_per_router) = ghc_upper_shape(total_uplinks);
                Upper::Ghc(GhcTier::build_into(
                    &mut b,
                    &dims,
                    ports_per_router,
                    &ports,
                    capacity_bps,
                ))
            }
        };
        let num_upper_switches = (b.num_nodes() - switches_before) as u64;

        Nested {
            net: b.build(),
            kind,
            rule,
            sub_shape,
            sub_size,
            num_subtori,
            uplinks_per_sub,
            uplink_map,
            torus_tables,
            upper,
            num_upper_switches,
        }
    }

    /// Nodes per subtorus dimension (the paper's `t`).
    pub fn t(&self) -> u32 {
        self.sub_shape.dims()[0]
    }

    /// QFDBs per uplink (the paper's `u`).
    pub fn u(&self) -> u32 {
        self.rule.u()
    }

    /// The connection rule in use.
    pub fn rule(&self) -> ConnectionRule {
        self.rule
    }

    /// The upper-tier kind.
    pub fn kind(&self) -> UpperTierKind {
        self.kind
    }

    /// Number of subtori.
    pub fn num_subtori(&self) -> u64 {
        self.num_subtori
    }

    /// QFDBs per subtorus (`t³`).
    pub fn subtorus_size(&self) -> u64 {
        self.sub_size
    }

    /// Total uplinks (upper-tier ports).
    pub fn num_uplinks(&self) -> u64 {
        self.num_subtori * self.uplinks_per_sub
    }

    /// Switches in the upper tier (as constructed).
    pub fn num_upper_switches(&self) -> u64 {
        self.num_upper_switches
    }

    /// The subtorus coordinate mapping.
    pub fn subtorus_shape(&self) -> &MixedRadix {
        &self.sub_shape
    }

    /// Subtorus index of an endpoint.
    #[inline]
    pub fn subtorus_of(&self, ep: NodeId) -> u64 {
        ep.0 as u64 / self.sub_size
    }

    /// Local index of an endpoint within its subtorus.
    #[inline]
    pub fn local_of(&self, ep: NodeId) -> u32 {
        (ep.0 as u64 % self.sub_size) as u32
    }

    /// Global upper-tier port index used by an endpoint (its closest
    /// uplinked node's port).
    #[inline]
    pub fn port_of(&self, ep: NodeId) -> u64 {
        let sub = self.subtorus_of(ep);
        sub * self.uplinks_per_sub + self.uplink_map.target_ordinal(self.local_of(ep)) as u64
    }

    /// Whether an endpoint is itself uplinked.
    pub fn is_uplinked(&self, ep: NodeId) -> bool {
        self.uplink_map.is_uplinked(self.local_of(ep))
    }

    /// Intra-subtorus DOR hop count from an endpoint to its uplink target.
    #[inline]
    fn hops_to_uplink(&self, ep: NodeId) -> u32 {
        let local = self.local_of(ep);
        grid::distance(
            &self.sub_shape,
            local as u64,
            self.uplink_map.target(local) as u64,
        )
    }
}

impl Topology for Nested {
    fn name(&self) -> String {
        format!("{}(t={},u={})", self.kind.hybrid_name(), self.t(), self.u())
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        if src == dst {
            return;
        }
        let s_sub = self.subtorus_of(src);
        let d_sub = self.subtorus_of(dst);
        let s_local = self.local_of(src) as u64;
        let d_local = self.local_of(dst) as u64;
        if s_sub == d_sub {
            // Paper rule: intra-subtorus traffic never leaves the subtorus.
            grid::route(
                &self.sub_shape,
                &self.torus_tables[s_sub as usize],
                s_local,
                d_local,
                path,
            );
            return;
        }
        let a_local = self.uplink_map.target(s_local as u32) as u64;
        let b_local = self.uplink_map.target(d_local as u32) as u64;
        grid::route(
            &self.sub_shape,
            &self.torus_tables[s_sub as usize],
            s_local,
            a_local,
            path,
        );
        self.upper
            .route_ports(self.port_of(src), self.port_of(dst), path);
        grid::route(
            &self.sub_shape,
            &self.torus_tables[d_sub as usize],
            b_local,
            d_local,
            path,
        );
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        if src == dst {
            return 0;
        }
        let s_sub = self.subtorus_of(src);
        let d_sub = self.subtorus_of(dst);
        if s_sub == d_sub {
            return grid::distance(
                &self.sub_shape,
                self.local_of(src) as u64,
                self.local_of(dst) as u64,
            );
        }
        self.hops_to_uplink(src)
            + self
                .upper
                .distance_ports(self.port_of(src), self.port_of(dst))
            + self.hops_to_uplink(dst)
    }

    fn diameter_bound(&self) -> u32 {
        // DOR to the uplink node, across the upper tier, DOR to the
        // destination; each DOR leg is bounded by the subtorus diameter.
        let sub_diam: u32 = self.sub_shape.dims().iter().map(|&d| d / 2).sum();
        2 * sub_diam + self.upper.max_distance_ports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_route;

    fn all_rules() -> [ConnectionRule; 4] {
        ConnectionRule::all()
    }

    #[test]
    fn figure2_examples_build() {
        // Figure 2b/2d: t=2, u=8 => one uplink per subtorus; 16 subtori give
        // a 4-ary 2-GHC-sized upper tier in the paper's drawing. We verify
        // our construction has the right uplink count.
        for kind in [UpperTierKind::Fattree, UpperTierKind::GeneralizedHypercube] {
            let n = Nested::new(kind, 16, 2, ConnectionRule::EighthNodes);
            assert_eq!(n.num_endpoints(), 16 * 8);
            assert_eq!(n.num_uplinks(), 16);
        }
    }

    #[test]
    fn routes_valid_all_kinds_and_rules() {
        for kind in [UpperTierKind::Fattree, UpperTierKind::GeneralizedHypercube] {
            for rule in all_rules() {
                let n = Nested::new(kind, 4, 2, rule);
                let e = n.num_endpoints() as u32;
                for s in 0..e {
                    for d in 0..e {
                        check_route(&n, NodeId(s), NodeId(d)).unwrap_or_else(|err| {
                            panic!("{err}");
                        });
                    }
                }
            }
        }
    }

    #[test]
    fn routes_valid_t4() {
        for kind in [UpperTierKind::Fattree, UpperTierKind::GeneralizedHypercube] {
            let n = Nested::new(kind, 3, 4, ConnectionRule::QuarterNodes);
            let e = n.num_endpoints() as u32;
            for s in (0..e).step_by(7) {
                for d in (0..e).step_by(3) {
                    check_route(&n, NodeId(s), NodeId(d)).unwrap();
                }
            }
        }
    }

    #[test]
    fn intra_subtorus_stays_local() {
        let n = Nested::new(UpperTierKind::Fattree, 4, 2, ConnectionRule::EighthNodes);
        // Endpoints 0..8 are subtorus 0; a route between them must not touch
        // any switch node.
        let path = n.route_vec(NodeId(0), NodeId(7));
        for lid in path {
            let link = n.network().link(lid);
            assert!(n.network().is_endpoint(link.src));
            assert!(n.network().is_endpoint(link.dst));
        }
    }

    #[test]
    fn inter_subtorus_uses_upper_tier() {
        let n = Nested::new(UpperTierKind::Fattree, 4, 2, ConnectionRule::EveryNode);
        let path = n.route_vec(NodeId(0), NodeId(8));
        assert!(path
            .iter()
            .any(|&lid| !n.network().is_endpoint(n.network().link(lid).dst)));
        // u=1 with both endpoints uplinked: pure upper-tier path.
        assert_eq!(n.distance(NodeId(0), NodeId(8)), path.len() as u32);
    }

    #[test]
    fn diameter_shrinks_with_uplink_density() {
        // The paper's Table 1 trend: denser uplinks (smaller u) shorten the
        // worst-case path (monotonically at fixed t).
        let diam = |n: &Nested| {
            let e = n.num_endpoints() as u32;
            let mut m = 0;
            for s in 0..e {
                for d in 0..e {
                    m = m.max(n.distance(NodeId(s), NodeId(d)));
                }
            }
            m
        };
        for kind in [UpperTierKind::Fattree, UpperTierKind::GeneralizedHypercube] {
            let d: Vec<u32> = [
                ConnectionRule::EveryNode,
                ConnectionRule::HalfNodes,
                ConnectionRule::QuarterNodes,
                ConnectionRule::EighthNodes,
            ]
            .into_iter()
            .map(|rule| diam(&Nested::new(kind, 16, 2, rule)))
            .collect();
            // The densest configuration has the smallest diameter, the
            // sparsest the largest. (Middle densities are not strictly
            // ordered at this tiny scale because the upper tier shrinks
            // with u.)
            for mid in &d[1..3] {
                assert!(d[0] <= *mid && *mid <= d[3], "{kind:?}: {d:?}");
            }
        }
    }

    #[test]
    fn port_of_maps_to_closest_uplink() {
        let n = Nested::new(UpperTierKind::Fattree, 2, 2, ConnectionRule::EighthNodes);
        // Subtorus 0: only local node 0 uplinked; all 8 locals map to port 0.
        for ep in 0..8u32 {
            assert_eq!(n.port_of(NodeId(ep)), 0);
        }
        for ep in 8..16u32 {
            assert_eq!(n.port_of(NodeId(ep)), 1);
        }
    }

    #[test]
    fn distance_symmetric_for_symmetric_rules() {
        // u=1: distance should be symmetric (both directions pure upper
        // tier + equal torus segments).
        let n = Nested::new(
            UpperTierKind::GeneralizedHypercube,
            8,
            2,
            ConnectionRule::EveryNode,
        );
        let e = n.num_endpoints() as u32;
        for s in (0..e).step_by(5) {
            for d in (0..e).step_by(7) {
                assert_eq!(
                    n.distance(NodeId(s), NodeId(d)),
                    n.distance(NodeId(d), NodeId(s))
                );
            }
        }
    }

    #[test]
    fn ghc_upper_shape_covers_port_load() {
        for uplinks in [1u64, 2, 16, 256, 1024, 16384, 131_072] {
            let (dims, p) = ghc_upper_shape(uplinks);
            assert_eq!(dims.len(), GHC_NDIMS);
            let routers: u64 = dims.iter().map(|&a| a as u64).product();
            assert!(routers * p as u64 >= uplinks, "uplinks={uplinks}");
            let degree: u64 = dims.iter().map(|&a| (a - 1) as u64).sum();
            assert!(
                degree >= 2 * p as u64 || routers >= uplinks,
                "uplinks={uplinks}: degree {degree} < 2x ports {p}"
            );
            assert!(p <= GHC_MAX_PORTS_PER_ROUTER);
        }
        // Paper scale at u=1: 16-port routers, like the Table 2 estimate.
        let (_, p) = ghc_upper_shape(131_072);
        assert_eq!(p, 16);
    }

    #[test]
    fn accessors() {
        let n = Nested::new(UpperTierKind::Fattree, 4, 2, ConnectionRule::HalfNodes);
        assert_eq!(n.t(), 2);
        assert_eq!(n.u(), 2);
        assert_eq!(n.num_subtori(), 4);
        assert_eq!(n.subtorus_size(), 8);
        assert_eq!(n.num_uplinks(), 16);
        assert_eq!(n.name(), "NestTree(t=2,u=2)");
        assert!(n.num_upper_switches() > 0);
        assert!(n.is_uplinked(NodeId(0)));
        assert!(!n.is_uplinked(NodeId(1)));
        assert_eq!(n.subtorus_of(NodeId(9)), 1);
        assert_eq!(n.local_of(NodeId(9)), 1);
    }
}
