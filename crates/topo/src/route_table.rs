//! Precomputed route tables: materialise every `(src, dst)` path of a
//! [`Topology`] once, then serve [`Topology::route`], [`Topology::try_route`]
//! and [`Topology::distance`] from a flat CSR array instead of re-deriving
//! the path per call.
//!
//! This is the per-topology artifact layer of the content-addressed topology
//! cache (`exaflow::TopoCache`): campaign runners that hammer one topology
//! with dozens of workloads pay the O(endpoints² · diameter) routing work
//! once at cache-insert time and O(path) memcpy per route thereafter.
//!
//! **Bit-identity is by construction.** [`RouteTable::build`] records the
//! exact output of the wrapped topology's own `route`, so a [`Tabled`]
//! topology is observationally indistinguishable from its inner one — same
//! paths, same distances, same name, same network. Fault wrappers compose
//! for the same reason: [`Degraded`](crate::Degraded) and
//! [`FaultOverlay`](crate::FaultOverlay) both ask the inner topology for its
//! *nominal* route and only reroute the pairs whose nominal path crosses a
//! down link, so a down link "invalidates" exactly the affected table rows
//! (those pairs take the wrapper's BFS detour) while every other pair keeps
//! being served straight from the shared, immutable table.
//!
//! Tables are only worth their memory below a size threshold
//! ([`DEFAULT_TABLE_MAX_ENDPOINTS`]); larger topologies keep on-demand
//! routing.

use crate::{RouteError, Topology};
use exaflow_netgraph::{LinkId, Network, NodeId};

/// Default largest endpoint count for which the topology cache materialises
/// a route table. At 512 endpoints a table holds 512² = 262 144 paths —
/// a few MiB for the topologies in this workspace — and builds in well
/// under a second; above that, on-demand routing wins on memory and
/// insert-time latency.
pub const DEFAULT_TABLE_MAX_ENDPOINTS: usize = 512;

/// All-pairs routes of a topology in CSR form: the path for `(src, dst)`
/// is `links[offsets[src·n + dst] .. offsets[src·n + dst + 1]]`.
#[derive(Clone, Debug)]
pub struct RouteTable {
    num_endpoints: usize,
    /// `num_endpoints² + 1` offsets into `links`.
    offsets: Vec<u32>,
    /// Concatenated per-pair paths, pair-major (`src·n + dst`).
    links: Vec<LinkId>,
    /// Longest stored path, i.e. the exact diameter of the tabled topology.
    max_hops: u32,
}

impl RouteTable {
    /// Build the table by exhaustively invoking `topo.route` for every
    /// ordered endpoint pair. The recorded paths are byte-for-byte the
    /// routes the topology itself would produce.
    pub fn build(topo: &dyn Topology) -> RouteTable {
        let n = topo.num_endpoints();
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut links: Vec<LinkId> = Vec::new();
        offsets.push(0);
        let mut path = Vec::new();
        let mut max_hops = 0u32;
        for src in 0..n as u32 {
            for dst in 0..n as u32 {
                path.clear();
                if src != dst {
                    topo.route(NodeId(src), NodeId(dst), &mut path);
                }
                max_hops = max_hops.max(path.len() as u32);
                links.extend_from_slice(&path);
                let end = u32::try_from(links.len())
                    .expect("route table exceeds u32 link capacity; raise the size threshold");
                offsets.push(end);
            }
        }
        RouteTable {
            num_endpoints: n,
            offsets,
            links,
            max_hops,
        }
    }

    /// Number of endpoints the table covers.
    pub fn num_endpoints(&self) -> usize {
        self.num_endpoints
    }

    /// Total number of stored link hops across all pairs.
    pub fn total_hops(&self) -> usize {
        self.links.len()
    }

    /// Longest stored path — the exact diameter of the tabled topology.
    pub fn max_hops(&self) -> u32 {
        self.max_hops
    }

    /// The precomputed path for `(src, dst)`; empty when `src == dst`.
    pub fn path(&self, src: NodeId, dst: NodeId) -> &[LinkId] {
        let pair = src.index() * self.num_endpoints + dst.index();
        let lo = self.offsets[pair] as usize;
        let hi = self.offsets[pair + 1] as usize;
        &self.links[lo..hi]
    }
}

/// A topology whose routing is served from a precomputed [`RouteTable`].
///
/// Everything except the route lookup forwards to the inner topology, so a
/// `Tabled<T>` reports the same name, network, and endpoint count, and its
/// routes are identical to `T`'s by construction. Fault wrappers layered on
/// top ([`Degraded`](crate::Degraded), [`FaultOverlay`](crate::FaultOverlay))
/// see the same nominal paths and therefore make the same reroute decisions.
pub struct Tabled<T: Topology> {
    inner: T,
    table: RouteTable,
}

impl<T: Topology> Tabled<T> {
    /// Wrap `inner`, building its full route table eagerly.
    pub fn new(inner: T) -> Tabled<T> {
        let table = RouteTable::build(&inner);
        Tabled { inner, table }
    }

    /// The wrapped topology.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The precomputed table.
    pub fn table(&self) -> &RouteTable {
        &self.table
    }
}

impl<T: Topology> Topology for Tabled<T> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn network(&self) -> &Network {
        self.inner.network()
    }
    fn num_endpoints(&self) -> usize {
        self.inner.num_endpoints()
    }
    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        path.extend_from_slice(self.table.path(src, dst));
    }
    fn try_route(
        &self,
        src: NodeId,
        dst: NodeId,
        path: &mut Vec<LinkId>,
    ) -> Result<(), RouteError> {
        // The table was built from a total topology (generators route
        // totally by construction; fault wrappers are layered *outside*
        // the table, never inside), so lookup cannot fail.
        path.extend_from_slice(self.table.path(src, dst));
        Ok(())
    }
    fn link_is_failed(&self, link: LinkId) -> bool {
        self.inner.link_is_failed(link)
    }
    fn num_failed_links(&self) -> usize {
        self.inner.num_failed_links()
    }
    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        self.table.path(src, dst).len() as u32
    }

    fn diameter_bound(&self) -> u32 {
        // The table holds every pair's path, so the bound is exact — a
        // distance fast path the inner topology may not have.
        self.table.max_hops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_route, KAryTree, Torus};

    #[test]
    fn table_paths_match_on_demand_routing() {
        let torus = Torus::new(&[4, 4, 2]);
        let tabled = Tabled::new(Torus::new(&[4, 4, 2]));
        let n = torus.num_endpoints() as u32;
        for src in (0..n).map(NodeId) {
            for dst in (0..n).map(NodeId) {
                assert_eq!(
                    tabled.route_vec(src, dst),
                    torus.route_vec(src, dst),
                    "pair ({src:?},{dst:?})"
                );
                assert_eq!(tabled.distance(src, dst), torus.distance(src, dst));
            }
        }
    }

    #[test]
    fn tabled_preserves_routing_invariants() {
        let tabled = Tabled::new(KAryTree::new(4, 2));
        let n = tabled.num_endpoints() as u32;
        for src in (0..n).map(NodeId) {
            for dst in (0..n).map(NodeId) {
                check_route(&tabled, src, dst).unwrap();
            }
        }
        assert_eq!(tabled.name(), KAryTree::new(4, 2).name());
        assert!(!tabled.link_is_failed(LinkId(0)));
        assert_eq!(tabled.num_failed_links(), 0);
    }

    #[test]
    fn self_routes_are_empty() {
        let tabled = Tabled::new(Torus::new(&[3, 3]));
        for ep in (0..tabled.num_endpoints() as u32).map(NodeId) {
            assert!(tabled.route_vec(ep, ep).is_empty());
            let mut p = Vec::new();
            tabled.try_route(ep, ep, &mut p).unwrap();
            assert!(p.is_empty());
        }
    }
}
