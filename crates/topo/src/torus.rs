//! d-dimensional torus with dimension-order routing.
//!
//! The torus is a *direct* network: every node is a compute endpoint that
//! also switches traffic (in ExaNeSt, the QFDB's FPGA fabric implements the
//! router). Each node links to its two neighbours per dimension with
//! wrap-around; a dimension of size 2 contributes a single duplex cable and
//! a dimension of size 1 contributes none.
//!
//! Routing is deterministic dimension-order routing (DOR): dimensions are
//! corrected in index order, always taking the shorter way around the ring
//! (ties break towards the positive direction).
//!
//! The crate-private `grid` submodule exposes the link-construction and
//! DOR-routing machinery over an arbitrary base node id so the nested
//! hybrid topologies can stamp out many disjoint subtori inside one shared
//! network.

use crate::mixed_radix::MixedRadix;
use crate::{Topology, LINK_RATE_BPS};
use exaflow_netgraph::{LinkId, Network, NetworkBuilder, NodeId};

/// Torus link construction and DOR routing over a node id range.
pub(crate) mod grid {
    use super::*;

    pub(crate) const NO_LINK: u32 = u32::MAX;

    /// Create torus links among the `shape.len()` nodes starting at node id
    /// `first` (the nodes must already exist in the builder). Returns the
    /// link table: `table[local * 2*ndims + 2*dim + dir]` with dir 0 = +1
    /// neighbour, 1 = −1 neighbour; `NO_LINK` where the ring is degenerate.
    pub(crate) fn build_links(
        b: &mut NetworkBuilder,
        first: u32,
        shape: &MixedRadix,
        capacity_bps: f64,
    ) -> Vec<u32> {
        let n = shape.len();
        let ndims = shape.ndims();
        let dims = shape.dims();
        let stride = 2 * ndims;
        let mut table = vec![NO_LINK; n as usize * stride];
        for node in 0..n {
            for dim in 0..ndims {
                let size = dims[dim];
                if size <= 1 {
                    continue;
                }
                let c = shape.coord(node, dim);
                let plus = shape.with_coord(node, dim, (c + 1) % size);
                let lid = b.add_link(
                    NodeId(first + node as u32),
                    NodeId(first + plus as u32),
                    capacity_bps,
                );
                table[node as usize * stride + 2 * dim] = lid.0;
                if size == 2 {
                    // +1 and −1 coincide: the single pair serves both
                    // directions (the reverse link is added by the peer's
                    // own +1 pass).
                    table[node as usize * stride + 2 * dim + 1] = lid.0;
                }
            }
        }
        // Dedicated −1-direction links for rings longer than 2.
        for node in 0..n {
            for dim in 0..ndims {
                let size = dims[dim];
                if size <= 2 {
                    continue;
                }
                let c = shape.coord(node, dim);
                let minus = shape.with_coord(node, dim, (c + size - 1) % size);
                let lid = b.add_link(
                    NodeId(first + node as u32),
                    NodeId(first + minus as u32),
                    capacity_bps,
                );
                table[node as usize * stride + 2 * dim + 1] = lid.0;
            }
        }
        table
    }

    /// Append the DOR route between local node indices `src` and `dst`.
    pub(crate) fn route(
        shape: &MixedRadix,
        table: &[u32],
        src: u64,
        dst: u64,
        path: &mut Vec<LinkId>,
    ) {
        if src == dst {
            return;
        }
        let ndims = shape.ndims();
        let stride = 2 * ndims;
        let mut at = src;
        for dim in 0..ndims {
            let a = shape.coord(at, dim);
            let b = shape.coord(dst, dim);
            let delta = shape.ring_delta(a, b, dim);
            let positive = delta >= 0;
            let size = shape.dims()[dim];
            let mut c = a;
            for _ in 0..delta.unsigned_abs() {
                let idx = at as usize * stride + 2 * dim + usize::from(!positive);
                let raw = table[idx];
                debug_assert_ne!(raw, NO_LINK, "missing torus link at {at} dim {dim}");
                path.push(LinkId(raw));
                c = if positive {
                    (c + 1) % size
                } else {
                    (c + size - 1) % size
                };
                at = shape.with_coord(at, dim, c);
            }
        }
        debug_assert_eq!(at, dst);
    }

    /// Exact DOR hop count between local node indices.
    #[inline]
    pub(crate) fn distance(shape: &MixedRadix, src: u64, dst: u64) -> u32 {
        let mut d = 0;
        for dim in 0..shape.ndims() {
            d += shape.ring_distance(shape.coord(src, dim), shape.coord(dst, dim), dim);
        }
        d
    }
}

/// A d-dimensional torus of endpoints.
#[derive(Debug)]
pub struct Torus {
    net: Network,
    shape: MixedRadix,
    link_table: Vec<u32>,
}

impl Torus {
    /// Build a torus with the given per-dimension sizes and 10 Gbps links.
    pub fn new(dims: &[u32]) -> Self {
        Self::with_capacity_bps(dims, LINK_RATE_BPS)
    }

    /// Build a torus with a custom link capacity.
    pub fn with_capacity_bps(dims: &[u32], capacity_bps: f64) -> Self {
        let shape = MixedRadix::new(dims);
        let n = shape.len() as usize;
        let ndims = shape.ndims();
        let mut b = NetworkBuilder::with_capacity(n, n * 2 * ndims);
        b.add_endpoints(n);
        let link_table = grid::build_links(&mut b, 0, &shape, capacity_bps);
        Torus {
            net: b.build(),
            shape,
            link_table,
        }
    }

    /// Per-dimension sizes.
    pub fn dims(&self) -> &[u32] {
        self.shape.dims()
    }

    /// The coordinate mapping.
    pub fn shape(&self) -> &MixedRadix {
        &self.shape
    }

    /// Endpoint id at the given coordinates.
    pub fn node_at(&self, coords: &[u32]) -> NodeId {
        NodeId(self.shape.encode(coords) as u32)
    }

    /// Coordinates of an endpoint.
    pub fn coords_of(&self, node: NodeId) -> Vec<u32> {
        self.shape.decode(node.0 as u64)
    }

    /// Torus diameter: sum over dimensions of `floor(size/2)`.
    pub fn diameter(&self) -> u32 {
        self.shape.dims().iter().map(|&d| d / 2).sum()
    }

    /// Exact average DOR distance over ordered pairs `src != dst`.
    pub fn average_distance(&self) -> f64 {
        average_distance_for_dims(self.shape.dims())
    }
}

/// Exact average torus distance for the given dims without building the
/// network (used to report the paper's full-scale 64×64×32 reference).
pub fn average_distance_for_dims(dims: &[u32]) -> f64 {
    let shape = MixedRadix::new(dims);
    let n = shape.len() as f64;
    if n <= 1.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for (dim, &size) in shape.dims().iter().enumerate() {
        let total: u64 = (0..size as u64)
            .map(|k| shape.ring_distance(0, k as u32, dim) as u64)
            .sum();
        sum += total as f64 / size as f64;
    }
    sum * n / (n - 1.0)
}

impl Topology for Torus {
    fn name(&self) -> String {
        let dims: Vec<String> = self.shape.dims().iter().map(|d| d.to_string()).collect();
        format!("Torus({})", dims.join("x"))
    }

    fn network(&self) -> &Network {
        &self.net
    }

    fn route(&self, src: NodeId, dst: NodeId, path: &mut Vec<LinkId>) {
        grid::route(
            &self.shape,
            &self.link_table,
            src.0 as u64,
            dst.0 as u64,
            path,
        );
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        grid::distance(&self.shape, src.0 as u64, dst.0 as u64)
    }

    fn diameter_bound(&self) -> u32 {
        self.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_route;
    use exaflow_netgraph::bfs_distances_physical;

    #[test]
    fn link_counts() {
        // 4x4x2: dims of size 4 contribute 2 unidirectional links per node,
        // the size-2 dim contributes one duplex pair per node pair.
        let t = Torus::new(&[4, 4, 2]);
        assert_eq!(t.network().num_endpoints(), 32);
        assert_eq!(t.network().num_links(), 32 * (2 + 2 + 1));
    }

    #[test]
    fn dim_of_size_one_has_no_links() {
        let t = Torus::new(&[3, 1]);
        assert_eq!(t.network().num_links(), 3 * 2);
        assert_eq!(t.distance(NodeId(0), NodeId(2)), 1);
    }

    #[test]
    fn routes_valid_and_match_distance() {
        let t = Torus::new(&[4, 3, 2]);
        let n = t.num_endpoints() as u32;
        for s in 0..n {
            for d in 0..n {
                check_route(&t, NodeId(s), NodeId(d)).unwrap();
            }
        }
    }

    #[test]
    fn distance_agrees_with_bfs() {
        // DOR in a torus is minimal, so DOR distance == BFS distance.
        let t = Torus::new(&[5, 4]);
        let bfs = bfs_distances_physical(t.network(), NodeId(7));
        for d in 0..t.num_endpoints() as u32 {
            assert_eq!(t.distance(NodeId(7), NodeId(d)), bfs[d as usize]);
        }
    }

    #[test]
    fn diameter_formula() {
        assert_eq!(Torus::new(&[8, 8, 4]).diameter(), 4 + 4 + 2);
        assert_eq!(Torus::new(&[5, 3]).diameter(), 2 + 1);
    }

    #[test]
    fn paper_full_scale_torus_reference() {
        // Table 1 caption: the 131072-node torus (64x64x32) has diameter 80
        // and average distance 40.
        let dims = [64u32, 64, 32];
        let diameter: u32 = dims.iter().map(|&d| d / 2).sum();
        assert_eq!(diameter, 80);
        let avg = average_distance_for_dims(&dims);
        assert!((avg - 40.0).abs() < 0.01, "avg = {avg}");
    }

    #[test]
    fn average_distance_exact_on_ring() {
        let t = Torus::new(&[4]);
        let expect = (1.0 + 2.0 + 1.0) / 3.0;
        assert!((t.average_distance() - expect).abs() < 1e-12);
    }

    #[test]
    fn average_distance_matches_brute_force() {
        let t = Torus::new(&[4, 3]);
        let n = t.num_endpoints() as u32;
        let mut sum = 0u64;
        let mut count = 0u64;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    sum += t.distance(NodeId(s), NodeId(d)) as u64;
                    count += 1;
                }
            }
        }
        let brute = sum as f64 / count as f64;
        assert!((t.average_distance() - brute).abs() < 1e-12);
    }

    #[test]
    fn wraparound_is_used() {
        let t = Torus::new(&[8]);
        assert_eq!(t.distance(NodeId(0), NodeId(6)), 2);
        assert_eq!(t.route_vec(NodeId(0), NodeId(6)).len(), 2);
    }

    #[test]
    fn tie_breaks_positive() {
        let t = Torus::new(&[4]);
        // 0 -> 2 is distance 2 either way; DOR must go positive: 0->1->2.
        let path = t.route_vec(NodeId(0), NodeId(2));
        assert_eq!(t.network().link(path[0]).dst, NodeId(1));
    }

    #[test]
    fn coords_roundtrip() {
        let t = Torus::new(&[4, 3, 2]);
        let n = t.node_at(&[3, 2, 1]);
        assert_eq!(t.coords_of(n), vec![3, 2, 1]);
    }

    #[test]
    fn dor_corrects_dimensions_in_order() {
        let t = Torus::new(&[4, 4]);
        // (0,0) -> (2,2): first hops move along dim 0.
        let path = t.route_vec(t.node_at(&[0, 0]), t.node_at(&[2, 2]));
        assert_eq!(path.len(), 4);
        let first_dst = t.network().link(path[0]).dst;
        assert_eq!(t.coords_of(first_dst), vec![1, 0]);
    }
}
