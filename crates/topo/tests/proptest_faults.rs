//! Property tests for fault-tolerant rerouting: on any topology family,
//! under any mix of static ([`Degraded`]) and dynamic ([`FaultOverlay`])
//! link failures, every route the wrappers produce is a contiguous
//! physical walk from source to destination that avoids every
//! currently-failed link — and a pair they cannot route is a typed
//! error, never a bogus path.

use exaflow_netgraph::{LinkId, Network, NodeId};
use exaflow_topo::{
    ConnectionRule, Degraded, FaultOverlay, GeneralizedHypercube, KAryTree, Nested, Topology,
    Torus, UpperTierKind,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Assert `path` is a contiguous walk `src → dst` over physical links.
fn assert_contiguous(
    net: &Network,
    src: NodeId,
    dst: NodeId,
    path: &[LinkId],
) -> Result<(), TestCaseError> {
    if src == dst {
        prop_assert!(path.is_empty(), "self-route must be empty, got {path:?}");
        return Ok(());
    }
    prop_assert!(!path.is_empty(), "empty path for {src:?} -> {dst:?}");
    prop_assert_eq!(net.link(path[0]).src, src);
    prop_assert_eq!(net.link(path[path.len() - 1]).dst, dst);
    for w in path.windows(2) {
        prop_assert_eq!(net.link(w[0]).dst, net.link(w[1]).src);
    }
    for &l in path {
        prop_assert!(!net.link(l).is_virtual, "path crosses virtual link {l:?}");
    }
    Ok(())
}

/// Route every sampled pair on a degraded topology and check the
/// invariants: contiguity, failed-link avoidance, typed partitions.
fn check_degraded<T: Topology>(degraded: &Degraded<T>, seed: u64) -> Result<(), TestCaseError> {
    let e = degraded.num_endpoints() as u64;
    let failed: Vec<LinkId> = degraded.failed_links().collect();
    let mut s = seed;
    for _ in 0..8 {
        // SplitMix64 step: cheap deterministic pair sampling.
        s = s
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let src = NodeId((s % e) as u32);
        let dst = NodeId(((s >> 32) % e) as u32);
        let mut path = Vec::new();
        match degraded.try_route(src, dst, &mut path) {
            Ok(()) => {
                assert_contiguous(degraded.network(), src, dst, &path)?;
                for &l in &failed {
                    prop_assert!(
                        !path.contains(&l),
                        "route {src:?} -> {dst:?} crosses failed link {l:?}"
                    );
                }
            }
            Err(err) => {
                // A partition is a legal outcome; the error must name the
                // pair and leave the buffer clean.
                prop_assert_eq!((err.src, err.dst), (src, dst));
                prop_assert!(path.is_empty());
            }
        }
    }
    Ok(())
}

/// Drive a [`FaultOverlay`] through fail/route/restore cycles and check
/// that every produced route is contiguous and avoids every link that is
/// down *at that moment* (static or dynamic).
fn check_overlay(topo: &dyn Topology, seed: u64) -> Result<(), TestCaseError> {
    let net = topo.network();
    let e = topo.num_endpoints() as u64;
    let nl = net.num_links() as u64;
    let mut overlay = FaultOverlay::new(topo);
    let mut s = seed;
    let mut step = || {
        s = s
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s
    };
    for round in 0..6 {
        // Alternate failing and restoring a pseudo-random link, so the
        // cache sees both invalidation paths.
        let link = LinkId((step() % nl) as u32);
        if round % 3 == 2 {
            overlay.restore_link(link);
        } else {
            overlay.fail_link(link);
        }
        let r = step();
        let src = NodeId((r % e) as u32);
        let dst = NodeId(((r >> 32) % e) as u32);
        let mut path = Vec::new();
        match overlay.try_route(src, dst, &mut path) {
            Ok(()) => {
                assert_contiguous(net, src, dst, &path)?;
                for &l in &path {
                    prop_assert!(
                        !overlay.is_down(l),
                        "route {src:?} -> {dst:?} crosses down link {l:?}"
                    );
                }
                // Routing is memoised but must stay deterministic: a
                // second call under the same failure set agrees.
                let mut again = Vec::new();
                overlay.try_route(src, dst, &mut again).unwrap();
                prop_assert_eq!(&path, &again);
            }
            Err(err) => {
                prop_assert_eq!((err.src, err.dst), (src, dst));
                prop_assert!(path.is_empty());
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn degraded_torus_reroutes_avoid_failures(
        dims in prop::collection::vec(2u32..5, 1..4),
        cables in 0usize..6,
        fail_seed in any::<u64>(),
        pair_seed in any::<u64>(),
    ) {
        let d = Degraded::with_random_failures(Torus::new(&dims), cables, fail_seed);
        check_degraded(&d, pair_seed)?;
    }

    #[test]
    fn degraded_fattree_reroutes_avoid_failures(
        k in 2u32..5,
        n in 2u32..4,
        cables in 0usize..6,
        fail_seed in any::<u64>(),
        pair_seed in any::<u64>(),
    ) {
        let d = Degraded::with_random_failures(KAryTree::new(k, n), cables, fail_seed);
        check_degraded(&d, pair_seed)?;
    }

    #[test]
    fn degraded_ghc_reroutes_avoid_failures(
        dims in prop::collection::vec(2u32..5, 1..3),
        cables in 0usize..6,
        fail_seed in any::<u64>(),
        pair_seed in any::<u64>(),
    ) {
        let d = Degraded::with_random_failures(
            GeneralizedHypercube::new(&dims, 2),
            cables,
            fail_seed,
        );
        check_degraded(&d, pair_seed)?;
    }

    #[test]
    fn degraded_nested_reroutes_avoid_failures(
        subtori in 1u64..6,
        u in prop::sample::select(vec![1u32, 2, 4, 8]),
        tree in any::<bool>(),
        cables in 0usize..6,
        fail_seed in any::<u64>(),
        pair_seed in any::<u64>(),
    ) {
        let kind = if tree { UpperTierKind::Fattree } else { UpperTierKind::GeneralizedHypercube };
        let topo = Nested::new(kind, subtori, 2, ConnectionRule::from_u(u).unwrap());
        let d = Degraded::with_random_failures(topo, cables, fail_seed);
        check_degraded(&d, pair_seed)?;
    }

    #[test]
    fn overlay_torus_routes_avoid_down_links(
        dims in prop::collection::vec(2u32..5, 1..4),
        seed in any::<u64>(),
    ) {
        check_overlay(&Torus::new(&dims), seed)?;
    }

    #[test]
    fn overlay_fattree_routes_avoid_down_links(
        k in 2u32..5,
        n in 2u32..4,
        seed in any::<u64>(),
    ) {
        check_overlay(&KAryTree::new(k, n), seed)?;
    }

    #[test]
    fn overlay_ghc_routes_avoid_down_links(
        dims in prop::collection::vec(2u32..5, 1..3),
        seed in any::<u64>(),
    ) {
        check_overlay(&GeneralizedHypercube::new(&dims, 2), seed)?;
    }

    #[test]
    fn overlay_nested_routes_avoid_down_links(
        subtori in 1u64..6,
        u in prop::sample::select(vec![1u32, 2, 4, 8]),
        tree in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let kind = if tree { UpperTierKind::Fattree } else { UpperTierKind::GeneralizedHypercube };
        let topo = Nested::new(kind, subtori, 2, ConnectionRule::from_u(u).unwrap());
        check_overlay(&topo, seed)?;
    }

    #[test]
    fn overlay_over_degraded_avoids_both_failure_sets(
        dims in prop::collection::vec(3u32..5, 2..4),
        cables in 1usize..4,
        fail_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let degraded = Degraded::with_random_failures(Torus::new(&dims), cables, fail_seed);
        let static_failed: Vec<LinkId> = degraded.failed_links().collect();
        let net = degraded.network();
        let e = degraded.num_endpoints() as u64;
        let mut overlay = FaultOverlay::new(&degraded);
        // Dynamically fail one more pseudo-random link on top.
        overlay.fail_link(LinkId((seed % net.num_links() as u64) as u32));
        let src = NodeId((seed % e) as u32);
        let dst = NodeId(((seed >> 32) % e) as u32);
        let mut path = Vec::new();
        if overlay.try_route(src, dst, &mut path).is_ok() {
            assert_contiguous(net, src, dst, &path)?;
            for &l in &path {
                prop_assert!(!overlay.is_down(l), "crosses dynamically-down {l:?}");
                prop_assert!(!static_failed.contains(&l), "crosses statically-failed {l:?}");
            }
        } else {
            prop_assert!(path.is_empty());
        }
    }
}
