//! Property tests for the precomputed route-table layer: on random small
//! instances of every topology family, a [`Tabled`] wrapper must be
//! observationally identical to on-demand routing — the exact same path
//! (not just the same length) for **every** ordered endpoint pair — and
//! fault wrappers layered on top of the table must agree with the same
//! wrappers layered on the raw topology, route-for-route and
//! error-for-error, under randomly sampled down-link sets.

use exaflow_netgraph::{LinkId, NodeId};
use exaflow_topo::{
    ConnectionRule, Degraded, FaultOverlay, GeneralizedHypercube, KAryTree, Nested, Tabled,
    Topology, Torus, UpperTierKind,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// All-pairs exhaustive comparison: the table serves byte-for-byte the
/// path `raw.try_route` derives, and the distances agree. Generators are
/// deterministic but not `Clone`, so instances come from a factory.
fn check_all_pairs<T: Topology>(make: impl Fn() -> T) -> Result<(), TestCaseError> {
    let raw = make();
    let tabled = Tabled::new(make());
    prop_assert_eq!(tabled.num_endpoints(), raw.num_endpoints());
    prop_assert_eq!(tabled.name(), raw.name());
    let n = raw.num_endpoints() as u32;
    for src in (0..n).map(NodeId) {
        for dst in (0..n).map(NodeId) {
            let mut want = Vec::new();
            let mut got = Vec::new();
            raw.try_route(src, dst, &mut want).unwrap();
            tabled.try_route(src, dst, &mut got).unwrap();
            prop_assert_eq!(
                &got,
                &want,
                "table path diverged for {:?} -> {:?}",
                src,
                dst
            );
            prop_assert_eq!(tabled.distance(src, dst), raw.distance(src, dst));
        }
    }
    Ok(())
}

/// Fault composition: `Degraded` over a table and `Degraded` over the raw
/// topology must make identical decisions for every pair — same detour or
/// same typed partition error — because both see the same nominal routes.
fn check_degraded_composition<T: Topology>(
    make: impl Fn() -> T,
    cables: usize,
    fail_seed: u64,
) -> Result<(), TestCaseError> {
    let want = Degraded::with_random_failures(make(), cables, fail_seed);
    let got = Degraded::with_random_failures(Tabled::new(make()), cables, fail_seed);
    // The same seed draws the same cable *set*; iteration order is
    // hash-state dependent, so compare sorted.
    let mut failed_want: Vec<LinkId> = want.failed_links().collect();
    let mut failed_got: Vec<LinkId> = got.failed_links().collect();
    failed_want.sort_by_key(|l| l.index());
    failed_got.sort_by_key(|l| l.index());
    prop_assert_eq!(&failed_got, &failed_want, "failure draws diverged");
    let n = want.num_endpoints() as u32;
    for src in (0..n).map(NodeId) {
        for dst in (0..n).map(NodeId) {
            let mut pw = Vec::new();
            let mut pg = Vec::new();
            let rw = want.try_route(src, dst, &mut pw);
            let rg = got.try_route(src, dst, &mut pg);
            match (rw, rg) {
                (Ok(()), Ok(())) => prop_assert_eq!(
                    &pg,
                    &pw,
                    "degraded path diverged for {:?} -> {:?} over {:?}",
                    src,
                    dst,
                    &failed_want
                ),
                (Err(ew), Err(eg)) => {
                    prop_assert_eq!((eg.src, eg.dst), (ew.src, ew.dst));
                }
                (rw, rg) => {
                    return Err(TestCaseError(format!(
                        "routability diverged for {src:?} -> {dst:?}: raw {rw:?} vs tabled {rg:?}"
                    )))
                }
            }
        }
    }
    Ok(())
}

/// Dynamic faults: drive identical fail/restore sequences through overlays
/// on the raw and on the tabled topology; every sampled pair must agree.
/// Down links invalidate exactly the affected table rows — the overlay
/// detours those pairs and keeps serving the rest straight from the table.
fn check_overlay_composition<T: Topology>(
    make: impl Fn() -> T,
    seed: u64,
) -> Result<(), TestCaseError> {
    let raw = make();
    let tabled = Tabled::new(make());
    let mut over_raw = FaultOverlay::new(&raw);
    let mut over_tab = FaultOverlay::new(&tabled);
    let e = raw.num_endpoints() as u64;
    let nl = raw.network().num_links() as u64;
    let mut s = seed;
    let mut step = || {
        s = s
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s
    };
    for round in 0..8 {
        let link = LinkId((step() % nl) as u32);
        if round % 3 == 2 {
            over_raw.restore_link(link);
            over_tab.restore_link(link);
        } else {
            over_raw.fail_link(link);
            over_tab.fail_link(link);
        }
        let r = step();
        let src = NodeId((r % e) as u32);
        let dst = NodeId(((r >> 32) % e) as u32);
        let mut pw = Vec::new();
        let mut pg = Vec::new();
        match (
            over_raw.try_route(src, dst, &mut pw),
            over_tab.try_route(src, dst, &mut pg),
        ) {
            (Ok(()), Ok(())) => prop_assert_eq!(&pg, &pw, "overlay path diverged"),
            (Err(ew), Err(eg)) => prop_assert_eq!((eg.src, eg.dst), (ew.src, ew.dst)),
            (rw, rg) => {
                return Err(TestCaseError(format!(
                    "overlay routability diverged for {src:?} -> {dst:?}: {rw:?} vs {rg:?}"
                )))
            }
        }
    }
    Ok(())
}

fn nested(subtori: u64, u: u32, tree: bool) -> Nested {
    let kind = if tree {
        UpperTierKind::Fattree
    } else {
        UpperTierKind::GeneralizedHypercube
    };
    Nested::new(kind, subtori, 2, ConnectionRule::from_u(u).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn torus_tables_match_on_demand(
        dims in prop::collection::vec(2u32..5, 1..4),
    ) {
        check_all_pairs(|| Torus::new(&dims))?;
    }

    #[test]
    fn fattree_tables_match_on_demand(k in 2u32..5, n in 2u32..4) {
        check_all_pairs(|| KAryTree::new(k, n))?;
    }

    #[test]
    fn ghc_tables_match_on_demand(
        dims in prop::collection::vec(2u32..5, 1..3),
        ports in 1u32..4,
    ) {
        check_all_pairs(|| GeneralizedHypercube::new(&dims, ports))?;
    }

    #[test]
    fn nested_tables_match_on_demand(
        subtori in 1u64..6,
        u in prop::sample::select(vec![1u32, 2, 4]),
        tree in any::<bool>(),
    ) {
        check_all_pairs(|| nested(subtori, u, tree))?;
    }

    #[test]
    fn torus_degraded_composition_is_identical(
        dims in prop::collection::vec(2u32..5, 1..4),
        cables in 0usize..6,
        fail_seed in any::<u64>(),
    ) {
        check_degraded_composition(|| Torus::new(&dims), cables, fail_seed)?;
    }

    #[test]
    fn fattree_degraded_composition_is_identical(
        k in 2u32..4,
        n in 2u32..4,
        cables in 0usize..6,
        fail_seed in any::<u64>(),
    ) {
        check_degraded_composition(|| KAryTree::new(k, n), cables, fail_seed)?;
    }

    #[test]
    fn ghc_degraded_composition_is_identical(
        dims in prop::collection::vec(2u32..5, 1..3),
        cables in 0usize..6,
        fail_seed in any::<u64>(),
    ) {
        check_degraded_composition(|| GeneralizedHypercube::new(&dims, 2), cables, fail_seed)?;
    }

    #[test]
    fn nested_degraded_composition_is_identical(
        subtori in 1u64..5,
        u in prop::sample::select(vec![1u32, 2, 4]),
        tree in any::<bool>(),
        cables in 0usize..4,
        fail_seed in any::<u64>(),
    ) {
        check_degraded_composition(|| nested(subtori, u, tree), cables, fail_seed)?;
    }

    #[test]
    fn overlay_composition_is_identical(
        dims in prop::collection::vec(2u32..5, 1..4),
        seed in any::<u64>(),
    ) {
        check_overlay_composition(|| Torus::new(&dims), seed)?;
    }

    #[test]
    fn overlay_composition_is_identical_on_trees(
        k in 2u32..5,
        n in 2u32..4,
        seed in any::<u64>(),
    ) {
        check_overlay_composition(|| KAryTree::new(k, n), seed)?;
    }
}
