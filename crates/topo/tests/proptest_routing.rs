//! Property tests for the routing invariants of every topology family:
//! routes are valid loop-free physical walks whose length equals the
//! analytic distance, routing is deterministic, and minimal where the
//! topology guarantees minimality.

use exaflow_netgraph::{bfs_distances_physical, NodeId};
use exaflow_topo::{
    check_route, ConnectionRule, Dragonfly, GeneralizedHypercube, Jellyfish, KAryTree, Nested,
    Topology, Torus, UpperTierKind,
};
use proptest::prelude::*;

fn torus_dims() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(1u32..6, 1..4)
}

/// Exhaustively cover the jellyfish parameter space the property test
/// samples from: every `(switches, graph_seed)` combination must yield a
/// connected graph (construction panics otherwise), so the proptest below
/// can never trip over an unlucky sample.
#[test]
fn jellyfish_proptest_space_is_constructible() {
    for switches in 4u32..12 {
        let fabric_degree = if switches % 2 == 0 { 3 } else { 4 };
        for graph_seed in 0u64..16 {
            let j = Jellyfish::new(switches, 1, fabric_degree, graph_seed);
            check_route(&j, NodeId(0), NodeId(switches - 1)).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn torus_routes_valid(dims in torus_dims(), seed in any::<u64>()) {
        let t = Torus::new(&dims);
        let n = t.num_endpoints() as u64;
        let s = NodeId((seed % n) as u32);
        let d = NodeId(((seed >> 32) % n) as u32);
        check_route(&t, s, d).unwrap();
    }

    #[test]
    fn torus_distance_minimal(dims in torus_dims(), src in any::<u64>()) {
        let t = Torus::new(&dims);
        let n = t.num_endpoints() as u64;
        let s = NodeId((src % n) as u32);
        let bfs = bfs_distances_physical(t.network(), s);
        for d in 0..n as u32 {
            prop_assert_eq!(t.distance(s, NodeId(d)), bfs[d as usize]);
        }
    }

    #[test]
    fn tree_routes_valid(k in 2u32..6, n in 1u32..4, seed in any::<u64>()) {
        let t = KAryTree::new(k, n);
        let e = t.num_endpoints() as u64;
        let s = NodeId((seed % e) as u32);
        let d = NodeId(((seed >> 32) % e) as u32);
        check_route(&t, s, d).unwrap();
    }

    #[test]
    fn tree_partial_routes_valid(k in 2u32..5, n in 2u32..4, frac in 1u64..100, seed in any::<u64>()) {
        let ports = (k as u64).pow(n);
        let eps = ((ports * frac / 100).max(1)) as usize;
        let t = KAryTree::with_endpoints(k, n, eps);
        let s = NodeId((seed % eps as u64) as u32);
        let d = NodeId(((seed >> 32) % eps as u64) as u32);
        check_route(&t, s, d).unwrap();
    }

    #[test]
    fn tree_distance_minimal(k in 2u32..5, n in 1u32..4, src in any::<u64>()) {
        let t = KAryTree::new(k, n);
        let e = t.num_endpoints() as u64;
        let s = NodeId((src % e) as u32);
        let bfs = bfs_distances_physical(t.network(), s);
        for d in 0..e as u32 {
            prop_assert_eq!(t.distance(s, NodeId(d)), bfs[d as usize]);
        }
    }

    #[test]
    fn ghc_routes_valid(
        dims in prop::collection::vec(1u32..5, 1..4),
        ports in 1u32..4,
        seed in any::<u64>(),
    ) {
        let g = GeneralizedHypercube::new(&dims, ports);
        let e = g.num_endpoints() as u64;
        let s = NodeId((seed % e) as u32);
        let d = NodeId(((seed >> 32) % e) as u32);
        check_route(&g, s, d).unwrap();
    }

    #[test]
    fn ghc_distance_minimal(dims in prop::collection::vec(2u32..5, 1..3), src in any::<u64>()) {
        let g = GeneralizedHypercube::new(&dims, 2);
        let e = g.num_endpoints() as u64;
        let s = NodeId((src % e) as u32);
        let bfs = bfs_distances_physical(g.network(), s);
        for d in 0..e as u32 {
            prop_assert_eq!(g.distance(s, NodeId(d)), bfs[d as usize]);
        }
    }

    #[test]
    fn nested_routes_valid(
        subtori in 1u64..9,
        t in prop::sample::select(vec![2u32, 4]),
        u in prop::sample::select(vec![1u32, 2, 4, 8]),
        tree in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let kind = if tree { UpperTierKind::Fattree } else { UpperTierKind::GeneralizedHypercube };
        let rule = ConnectionRule::from_u(u).unwrap();
        let topo = Nested::new(kind, subtori, t, rule);
        let e = topo.num_endpoints() as u64;
        let s = NodeId((seed % e) as u32);
        let d = NodeId(((seed >> 32) % e) as u32);
        check_route(&topo, s, d).unwrap();
    }

    #[test]
    fn nested_routing_deterministic(
        subtori in 1u64..6,
        u in prop::sample::select(vec![1u32, 2, 4, 8]),
        seed in any::<u64>(),
    ) {
        let topo = Nested::new(
            UpperTierKind::GeneralizedHypercube,
            subtori,
            2,
            ConnectionRule::from_u(u).unwrap(),
        );
        let e = topo.num_endpoints() as u64;
        let s = NodeId((seed % e) as u32);
        let d = NodeId(((seed >> 32) % e) as u32);
        prop_assert_eq!(topo.route_vec(s, d), topo.route_vec(s, d));
    }

    #[test]
    fn dragonfly_routes_valid_and_within_diameter(
        groups_frac in 1u64..100,
        a in 2u32..5,
        p in 1u32..4,
        h in 1u32..4,
        seed in any::<u64>(),
    ) {
        // Any group count from 2 up to the full a·h + 1.
        let max_groups = (a * h + 1) as u64;
        let groups = (2 + groups_frac * (max_groups - 2) / 100).min(max_groups) as u32;
        let g = Dragonfly::new(groups, a, p, h);
        let e = g.num_endpoints() as u64;
        let s = NodeId((seed % e) as u32);
        let d = NodeId(((seed >> 32) % e) as u32);
        let len = check_route(&g, s, d).unwrap();
        // Minimal dragonfly routing: injection + (local, global, local) +
        // ejection — never more than five physical cables.
        prop_assert!(len <= 5, "dragonfly route {s}->{d} takes {len} links");
    }

    #[test]
    fn dragonfly_balanced_routes_valid(p in 1u32..4, seed in any::<u64>()) {
        let g = Dragonfly::balanced(p);
        let e = g.num_endpoints() as u64;
        let s = NodeId((seed % e) as u32);
        let d = NodeId(((seed >> 32) % e) as u32);
        let len = check_route(&g, s, d).unwrap();
        prop_assert!(len <= 5);
    }

    #[test]
    fn jellyfish_routes_valid_and_minimal(
        switches in 4u32..12,
        endpoint_ports in 1u32..4,
        graph_seed in 0u64..16,
        seed in any::<u64>(),
    ) {
        // Keep switches * fabric_degree even so the regular graph exists.
        let fabric_degree = if switches % 2 == 0 { 3 } else { 4 };
        let j = Jellyfish::new(switches, endpoint_ports, fabric_degree, graph_seed);
        let e = j.num_endpoints() as u64;
        let s = NodeId((seed % e) as u32);
        let d = NodeId(((seed >> 32) % e) as u32);
        // check_route already asserts length == distance(); pin the other
        // side of that equation to the graph-theoretic shortest path.
        check_route(&j, s, d).unwrap();
        let bfs = bfs_distances_physical(j.network(), s);
        prop_assert_eq!(j.distance(s, d), bfs[d.0 as usize]);
    }

    #[test]
    fn nested_intra_subtorus_never_uses_switches(
        subtori in 1u64..6,
        u in prop::sample::select(vec![1u32, 2, 4, 8]),
        seed in any::<u64>(),
    ) {
        let topo = Nested::new(
            UpperTierKind::Fattree,
            subtori,
            2,
            ConnectionRule::from_u(u).unwrap(),
        );
        let sub = topo.subtorus_size();
        let s_local = seed % sub;
        let d_local = (seed >> 32) % sub;
        let path = topo.route_vec(NodeId(s_local as u32), NodeId(d_local as u32));
        for lid in path {
            let link = topo.network().link(lid);
            prop_assert!(topo.network().is_endpoint(link.src));
            prop_assert!(topo.network().is_endpoint(link.dst));
        }
    }
}

/// `diameter_bound` must dominate every pairwise distance, and where the
/// generator has a closed-form diameter the bound is exact (torus, tree,
/// GHC, and any `Tabled` wrapper).
#[test]
fn diameter_bound_dominates_all_pairs() {
    use exaflow_topo::Tabled;

    let topos: Vec<(Box<dyn Topology>, bool)> = vec![
        (Box::new(Torus::new(&[4, 4, 2])), true),
        (Box::new(Torus::new(&[5, 3])), true),
        (Box::new(KAryTree::new(4, 2)), true),
        (Box::new(KAryTree::with_endpoints(4, 2, 9)), true),
        (Box::new(GeneralizedHypercube::new(&[4, 4], 2)), true),
        (
            Box::new(Nested::new(
                UpperTierKind::Fattree,
                4,
                2,
                ConnectionRule::EveryNode,
            )),
            false,
        ),
        (
            Box::new(Nested::new(
                UpperTierKind::GeneralizedHypercube,
                4,
                2,
                ConnectionRule::EighthNodes,
            )),
            false,
        ),
        (Box::new(Dragonfly::new(3, 2, 2, 1)), false),
        (Box::new(Jellyfish::new(6, 2, 3, 7)), false),
        (Box::new(Tabled::new(Torus::new(&[4, 4, 2]))), true),
        (
            Box::new(Tabled::new(Nested::new(
                UpperTierKind::Fattree,
                4,
                2,
                ConnectionRule::EveryNode,
            ))),
            true,
        ),
    ];
    for (topo, exact) in &topos {
        let n = topo.num_endpoints() as u32;
        let bound = topo.diameter_bound();
        let mut max = 0u32;
        for s in (0..n).map(NodeId) {
            for d in (0..n).map(NodeId) {
                max = max.max(topo.distance(s, d));
            }
        }
        assert!(
            max <= bound,
            "{}: diameter_bound {bound} < observed diameter {max}",
            topo.name()
        );
        if *exact {
            assert_eq!(
                bound,
                max,
                "{}: bound should equal the exact diameter",
                topo.name()
            );
        }
    }
}
