//! Collective operations: the non-optimised Reduce and the logarithmic
//! AllReduce.

use crate::mapping::TaskMapping;
use crate::Workload;
use exaflow_sim::{FlowDag, FlowDagBuilder, FlowId};

/// Non-optimised N-to-1 Reduce: every task sends its contribution straight
/// to the root task.
///
/// The paper uses this deliberately pathological pattern to study hot-spot
/// behaviour: all flows converge on the root's consumption port, which
/// serialises delivery and makes the result topology-insensitive.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Reduce {
    /// Number of participating tasks (root included).
    pub tasks: usize,
    /// Contribution size per task, bytes.
    pub bytes: u64,
}

impl Workload for Reduce {
    fn name(&self) -> &'static str {
        "Reduce"
    }

    fn num_tasks(&self) -> usize {
        self.tasks
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        assert!(mapping.len() >= self.tasks);
        let root = mapping.node_of(0);
        let mut b = FlowDagBuilder::with_capacity(self.tasks - 1, 0);
        for t in 1..self.tasks {
            b.add_flow(mapping.node_of(t), root, self.bytes, &[]);
        }
        b.build()
    }
}

/// Optimised AllReduce: recursive doubling, `log2(tasks)` rounds
/// (Thakur & Gropp). Requires a power-of-two task count.
///
/// In round `r`, task `i` exchanges `bytes` with partner `i XOR 2^r`; a
/// task's round-`r` exchange starts only after its round-`r−1` send *and*
/// receive have completed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AllReduce {
    /// Number of tasks; must be a power of two >= 2.
    pub tasks: usize,
    /// Exchange size per round, bytes.
    pub bytes: u64,
}

impl Workload for AllReduce {
    fn name(&self) -> &'static str {
        "AllReduce"
    }

    fn num_tasks(&self) -> usize {
        self.tasks
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        assert!(
            self.tasks.is_power_of_two() && self.tasks >= 2,
            "AllReduce requires a power-of-two task count, got {}",
            self.tasks
        );
        assert!(mapping.len() >= self.tasks);
        let rounds = self.tasks.trailing_zeros();
        let mut b = FlowDagBuilder::with_capacity(
            self.tasks * rounds as usize,
            2 * self.tasks * rounds as usize,
        );
        // send[i] / recv[i]: previous round's flows touching task i.
        let mut send: Vec<Option<FlowId>> = vec![None; self.tasks];
        let mut recv: Vec<Option<FlowId>> = vec![None; self.tasks];
        for r in 0..rounds {
            let mut new_send = vec![None; self.tasks];
            for i in 0..self.tasks {
                let partner = i ^ (1 << r);
                let mut deps = Vec::with_capacity(2);
                if let Some(s) = send[i] {
                    deps.push(s);
                }
                if let Some(rcv) = recv[i] {
                    deps.push(rcv);
                }
                let f = b.add_flow(
                    mapping.node_of(i),
                    mapping.node_of(partner),
                    self.bytes,
                    &deps,
                );
                new_send[i] = Some(f);
            }
            // The flow i received in this round is partner's send.
            let new_recv: Vec<_> = (0..self.tasks).map(|i| new_send[i ^ (1 << r)]).collect();
            send = new_send;
            recv = new_recv;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaflow_sim::FlowId;

    fn map(n: usize) -> TaskMapping {
        TaskMapping::linear(n, n)
    }

    #[test]
    fn reduce_shape() {
        let w = Reduce {
            tasks: 8,
            bytes: 100,
        };
        let dag = w.generate(&map(8));
        assert_eq!(dag.len(), 7);
        assert_eq!(dag.num_edges(), 0);
        for f in dag.flows() {
            assert_eq!(f.dst, 0);
            assert_ne!(f.src, 0);
            assert_eq!(f.bytes, 100);
        }
    }

    #[test]
    fn allreduce_shape() {
        let w = AllReduce {
            tasks: 8,
            bytes: 64,
        };
        let dag = w.generate(&map(8));
        // 3 rounds x 8 flows.
        assert_eq!(dag.len(), 24);
        // Round 0 flows have no deps; later rounds have 2 deps each.
        let no_dep = (0..dag.len())
            .filter(|&f| dag.preds(FlowId(f as u32)).is_empty())
            .count();
        assert_eq!(no_dep, 8);
        assert_eq!(dag.num_edges(), 2 * 16);
    }

    #[test]
    fn allreduce_partners_are_xor() {
        let w = AllReduce { tasks: 4, bytes: 1 };
        let dag = w.generate(&map(4));
        // Round 0: partners differ in bit 0.
        for f in &dag.flows()[0..4] {
            assert_eq!(f.src ^ f.dst, 1);
        }
        // Round 1: bit 1.
        for f in &dag.flows()[4..8] {
            assert_eq!(f.src ^ f.dst, 2);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn allreduce_rejects_non_pow2() {
        AllReduce { tasks: 6, bytes: 1 }.generate(&map(6));
    }

    #[test]
    fn respects_mapping() {
        let mapping = TaskMapping::strided(4, 16, 4);
        let dag = Reduce { tasks: 4, bytes: 1 }.generate(&mapping);
        for f in dag.flows() {
            assert_eq!(f.dst, 0);
            assert!(f.src % 4 == 0);
        }
    }
}
