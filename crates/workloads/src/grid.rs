//! 3-D virtual task grid shared by Sweep3D, Flood and Near-Neighbours.

/// A `gx × gy × gz` grid of tasks, task id = `x + gx*(y + gy*z)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Grid3 {
    /// Tasks along X.
    pub gx: u32,
    /// Tasks along Y.
    pub gy: u32,
    /// Tasks along Z.
    pub gz: u32,
}

impl Grid3 {
    /// Create a grid; all dimensions must be positive.
    pub fn new(gx: u32, gy: u32, gz: u32) -> Self {
        assert!(gx > 0 && gy > 0 && gz > 0, "grid dims must be positive");
        Grid3 { gx, gy, gz }
    }

    /// A near-cubic grid with at least... exactly `n` tasks when `n` has a
    /// suitable factorisation: chooses `gx >= gy >= gz` with `gx*gy*gz <= n`
    /// as close to the cube root as possible (never exceeds `n` tasks).
    pub fn fitting(n: usize) -> Self {
        assert!(n >= 1);
        let c = (n as f64).cbrt().floor() as u32;
        let gz = c.max(1);
        let rest = n as u32 / gz;
        let c2 = (rest as f64).sqrt().floor() as u32;
        let gy = c2.max(1);
        let gx = (rest / gy).max(1);
        Grid3::new(gx.max(gy), gy.min(gx).max(1), gz)
    }

    /// Total number of tasks.
    pub fn len(&self) -> usize {
        (self.gx * self.gy * self.gz) as usize
    }

    /// Whether the grid is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Task id of `(x, y, z)`.
    #[inline]
    pub fn id(&self, x: u32, y: u32, z: u32) -> usize {
        debug_assert!(x < self.gx && y < self.gy && z < self.gz);
        (x + self.gx * (y + self.gy * z)) as usize
    }

    /// Coordinates of a task id.
    #[inline]
    pub fn coords(&self, id: usize) -> (u32, u32, u32) {
        let id = id as u32;
        (
            id % self.gx,
            (id / self.gx) % self.gy,
            id / (self.gx * self.gy),
        )
    }

    /// Iterate all task coordinates in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.len()).map(|i| self.coords(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coords_roundtrip() {
        let g = Grid3::new(4, 3, 2);
        assert_eq!(g.len(), 24);
        for i in 0..g.len() {
            let (x, y, z) = g.coords(i);
            assert_eq!(g.id(x, y, z), i);
        }
    }

    #[test]
    fn fitting_never_exceeds() {
        for n in [1usize, 7, 8, 27, 60, 64, 100, 512, 1000, 4096] {
            let g = Grid3::fitting(n);
            assert!(g.len() <= n, "n={n} got {:?}", g);
            assert!(g.len() >= n / 4, "n={n} too small: {:?}", g);
        }
    }

    #[test]
    fn fitting_exact_cubes() {
        let g = Grid3::fitting(64);
        assert_eq!(g.len(), 64);
        let g = Grid3::fitting(512);
        assert_eq!(g.len(), 512);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        Grid3::new(0, 1, 1);
    }
}
