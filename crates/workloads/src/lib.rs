//! Application-inspired workload generators.
//!
//! Every workload of the paper's §4.1, generated as a causal [`FlowDag`]
//! over *tasks* which a [`TaskMapping`] places onto topology endpoints:
//!
//! | paper name        | type                       | pressure |
//! |-------------------|----------------------------|----------|
//! | Reduce            | [`Reduce`]                 | light    |
//! | AllReduce         | [`AllReduce`]              | heavy    |
//! | MapReduce         | [`MapReduce`]              | light    |
//! | Sweep3D           | [`Sweep3d`]                | light    |
//! | Flood             | [`Flood`]                  | light    |
//! | Near Neighbors    | [`NearNeighbors`]          | heavy    |
//! | n-Bodies          | [`NBodies`]                | heavy    |
//! | UnstructuredApp   | [`UnstructuredApp`]        | heavy    |
//! | UnstructuredMgnt  | [`UnstructuredMgnt`]       | light    |
//! | UnstructuredHR    | [`UnstructuredHotRegion`]  | heavy    |
//! | Bisection         | [`Bisection`]              | heavy    |
//!
//! The heavy/light split above mirrors the paper's Figure 4 / Figure 5
//! grouping ("heavy" = long periods of congestion with a large proportion of
//! endpoints injecting at once; "light" = inter-message causality limits
//! concurrency).
//!
//! Generators model NIC behaviour the way a flow-level simulator must:
//! where a real implementation would emit many messages from one task, the
//! task's flows are chained (serialised per sender) so a single endpoint
//! does not enjoy unbounded parallel injection.
//!
//! All randomised workloads take an explicit seed and are fully
//! reproducible.

pub mod collectives;
pub mod grid;
pub mod mapping;
pub mod mapreduce;
pub mod nbodies;
pub mod spec;
pub mod sweep;
pub mod unstructured;

pub use collectives::{AllReduce, Reduce};
pub use grid::Grid3;
pub use mapping::TaskMapping;
pub use mapreduce::MapReduce;
pub use nbodies::NBodies;
pub use spec::WorkloadSpec;
pub use sweep::{Flood, NearNeighbors, Sweep3d};
pub use unstructured::{Bisection, UnstructuredApp, UnstructuredHotRegion, UnstructuredMgnt};

use exaflow_sim::FlowDag;

/// A workload generator: produces the flow DAG for a given task placement.
pub trait Workload {
    /// Paper name of the workload.
    fn name(&self) -> &'static str;

    /// Number of tasks the workload spans.
    fn num_tasks(&self) -> usize;

    /// Generate the flow DAG with tasks placed by `mapping`.
    ///
    /// Panics if `mapping` has fewer slots than [`Workload::num_tasks`].
    fn generate(&self, mapping: &TaskMapping) -> FlowDag;
}
