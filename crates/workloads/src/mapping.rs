//! Task → endpoint placement policies.
//!
//! The paper's simulator (INRFlow) separates workload generation from
//! scheduling: tasks are mapped onto physical endpoints by a placement
//! policy. We provide the three classics: linear (consecutive), strided,
//! and random.

use exaflow_netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An immutable task → endpoint table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskMapping {
    table: Vec<u32>,
}

impl TaskMapping {
    /// Task `i` on endpoint `i`.
    pub fn linear(tasks: usize, endpoints: usize) -> Self {
        assert!(tasks <= endpoints, "{tasks} tasks > {endpoints} endpoints");
        TaskMapping {
            table: (0..tasks as u32).collect(),
        }
    }

    /// Task `i` on endpoint `(i * stride) % endpoints`, with collision
    /// avoidance by requiring `gcd(stride, endpoints) * tasks <= endpoints`
    /// — the simple sufficient condition `stride * tasks <= endpoints` is
    /// enforced instead for clarity.
    pub fn strided(tasks: usize, endpoints: usize, stride: usize) -> Self {
        assert!(stride >= 1);
        assert!(
            tasks * stride <= endpoints,
            "{tasks} tasks with stride {stride} exceed {endpoints} endpoints"
        );
        TaskMapping {
            table: (0..tasks).map(|i| (i * stride) as u32).collect(),
        }
    }

    /// Random placement without collisions (a uniform sample of endpoints),
    /// deterministic in `seed`.
    pub fn random(tasks: usize, endpoints: usize, seed: u64) -> Self {
        assert!(tasks <= endpoints, "{tasks} tasks > {endpoints} endpoints");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut all: Vec<u32> = (0..endpoints as u32).collect();
        all.shuffle(&mut rng);
        all.truncate(tasks);
        TaskMapping { table: all }
    }

    /// Build from an explicit table (must be collision-free).
    pub fn from_table(table: Vec<u32>) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(table.len());
        for &e in &table {
            assert!(seen.insert(e), "endpoint {e} assigned to two tasks");
        }
        TaskMapping { table }
    }

    /// Number of mapped tasks.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Endpoint of task `task`.
    #[inline]
    pub fn node_of(&self, task: usize) -> NodeId {
        NodeId(self.table[task])
    }

    /// The raw table.
    pub fn table(&self) -> &[u32] {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_identity() {
        let m = TaskMapping::linear(4, 8);
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            assert_eq!(m.node_of(i), NodeId(i as u32));
        }
    }

    #[test]
    fn strided_spreads() {
        let m = TaskMapping::strided(4, 16, 4);
        assert_eq!(m.table(), &[0, 4, 8, 12]);
    }

    #[test]
    fn random_is_deterministic_and_collision_free() {
        let a = TaskMapping::random(50, 100, 7);
        let b = TaskMapping::random(50, 100, 7);
        assert_eq!(a, b);
        let c = TaskMapping::random(50, 100, 8);
        assert_ne!(a, c);
        let mut seen = std::collections::HashSet::new();
        for i in 0..a.len() {
            assert!(seen.insert(a.node_of(i)));
            assert!(a.node_of(i).0 < 100);
        }
    }

    #[test]
    #[should_panic(expected = "tasks > ")]
    fn too_many_tasks_panics() {
        TaskMapping::linear(9, 8);
    }

    #[test]
    #[should_panic(expected = "assigned to two tasks")]
    fn collision_detected() {
        TaskMapping::from_table(vec![1, 2, 1]);
    }

    #[test]
    fn empty_is_fine() {
        let m = TaskMapping::linear(0, 0);
        assert!(m.is_empty());
    }
}
