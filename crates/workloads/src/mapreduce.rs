//! MapReduce: distribute → map+shuffle → gather (Dean & Ghemawat).

use crate::mapping::TaskMapping;
use crate::Workload;
use exaflow_sim::{FlowDag, FlowDagBuilder, FlowId};

/// The paper's MapReduce model: a root task partitions and distributes the
/// input; workers map and shuffle all-to-all; results return to the root.
///
/// Each worker's shuffle messages are serialised (one NIC per node), with
/// destinations visited in rotated order `i+1, i+2, …` so the all-to-all
/// advances as disjoint rounds rather than N² simultaneous flows.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MapReduce {
    /// Number of tasks (task 0 is the root and also a worker).
    pub tasks: usize,
    /// Bytes of input partition sent root → worker.
    pub distribute_bytes: u64,
    /// Bytes of each worker-to-worker shuffle message.
    pub shuffle_bytes: u64,
    /// Bytes of each worker's result sent back to the root.
    pub gather_bytes: u64,
}

impl Workload for MapReduce {
    fn name(&self) -> &'static str {
        "MapReduce"
    }

    fn num_tasks(&self) -> usize {
        self.tasks
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        let n = self.tasks;
        assert!(n >= 2, "MapReduce needs at least two tasks");
        assert!(mapping.len() >= n);
        let root = mapping.node_of(0);
        let mut b = FlowDagBuilder::with_capacity(n * (n + 1), 2 * n * n);

        // Phase 1: distribute. Root sends partition to every worker.
        let mut distribute: Vec<Option<FlowId>> = vec![None; n];
        for (t, slot) in distribute.iter_mut().enumerate().skip(1) {
            *slot = Some(b.add_flow(root, mapping.node_of(t), self.distribute_bytes, &[]));
        }

        // Phase 2: shuffle. Worker i sends to every j != i, serialised per
        // sender, first message gated on its distribute receive.
        // shuffle_in[j] collects the flows arriving at j.
        let mut shuffle_in: Vec<Vec<FlowId>> = vec![Vec::with_capacity(n - 1); n];
        let mut last_send: Vec<Option<FlowId>> = distribute.clone();
        for step in 1..n {
            for (i, last) in last_send.iter_mut().enumerate() {
                let j = (i + step) % n;
                let deps: Vec<FlowId> = (*last).into_iter().collect();
                let f = b.add_flow(
                    mapping.node_of(i),
                    mapping.node_of(j),
                    self.shuffle_bytes,
                    &deps,
                );
                *last = Some(f);
                shuffle_in[j].push(f);
            }
        }

        // Phase 3: gather. Worker j reduces what it received and reports to
        // the root; gated on all shuffle flows into j.
        for (j, inflows) in shuffle_in.iter().enumerate().skip(1) {
            b.add_flow(mapping.node_of(j), root, self.gather_bytes, inflows);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize) -> FlowDag {
        MapReduce {
            tasks: n,
            distribute_bytes: 1000,
            shuffle_bytes: 100,
            gather_bytes: 10,
        }
        .generate(&TaskMapping::linear(n, n))
    }

    #[test]
    fn flow_counts() {
        let n = 8;
        let dag = gen(n);
        // distribute: n-1, shuffle: n*(n-1), gather: n-1.
        assert_eq!(dag.len(), (n - 1) + n * (n - 1) + (n - 1));
    }

    #[test]
    fn shuffle_covers_all_pairs() {
        let n = 6;
        let dag = gen(n);
        let mut pairs = std::collections::HashSet::new();
        for f in dag.flows() {
            if f.bytes == 100 {
                assert_ne!(f.src, f.dst);
                assert!(pairs.insert((f.src, f.dst)), "duplicate pair");
            }
        }
        assert_eq!(pairs.len(), n * (n - 1));
    }

    #[test]
    fn gather_depends_on_all_inbound_shuffles() {
        let n = 4;
        let dag = gen(n);
        // Gathers are the last n-1 flows.
        for idx in dag.len() - (n - 1)..dag.len() {
            let preds = dag.preds(exaflow_sim::FlowId(idx as u32));
            assert_eq!(preds.len(), n - 1);
        }
    }

    #[test]
    fn sender_chains_are_serialised() {
        let n = 4;
        let dag = gen(n);
        // Any shuffle flow beyond a sender's first must depend on exactly
        // one earlier flow of the same source.
        for idx in 0..dag.len() {
            let f = dag.flow(exaflow_sim::FlowId(idx as u32));
            if f.bytes != 100 {
                continue;
            }
            let preds = dag.preds(exaflow_sim::FlowId(idx as u32));
            assert!(preds.len() <= 1);
            if let Some(&p) = preds.first() {
                let pf = dag.flow(exaflow_sim::FlowId(p));
                // predecessor is either the distribute into src or an
                // earlier shuffle send from src.
                assert!(pf.dst == f.src || pf.src == f.src);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_task_rejected() {
        gen(1);
    }
}
