//! n-Bodies: ring-based force exchange.

use crate::mapping::TaskMapping;
use crate::Workload;
use exaflow_sim::{FlowDag, FlowDagBuilder};

/// The paper's n-Bodies model: tasks sit on a virtual ring; every task
/// starts a chain of messages that travels clockwise across half the ring
/// (each body's state visits the `tasks/2` following tasks, accumulating
/// pairwise interactions).
///
/// All `tasks` chains run concurrently; within a chain, hop `s+1` starts
/// when hop `s` completes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NBodies {
    /// Number of tasks on the ring.
    pub tasks: usize,
    /// Bytes per chain hop.
    pub bytes: u64,
}

impl Workload for NBodies {
    fn name(&self) -> &'static str {
        "n-Bodies"
    }

    fn num_tasks(&self) -> usize {
        self.tasks
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        assert!(self.tasks >= 2, "n-Bodies needs at least two tasks");
        assert!(mapping.len() >= self.tasks);
        let n = self.tasks;
        let hops = n / 2;
        let mut b = FlowDagBuilder::with_capacity(n * hops, n * hops);
        for start in 0..n {
            let mut prev = None;
            for s in 0..hops {
                let from = (start + s) % n;
                let to = (start + s + 1) % n;
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(b.add_flow(
                    mapping.node_of(from),
                    mapping.node_of(to),
                    self.bytes,
                    &deps,
                ));
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exaflow_sim::FlowId;

    #[test]
    fn flow_count() {
        let dag = NBodies { tasks: 8, bytes: 1 }.generate(&TaskMapping::linear(8, 8));
        assert_eq!(dag.len(), 8 * 4);
    }

    #[test]
    fn chains_are_serial() {
        let dag = NBodies { tasks: 6, bytes: 1 }.generate(&TaskMapping::linear(6, 6));
        // Each chain of 3 hops: hop 0 no deps, hops 1..: one dep each.
        for c in 0..6u32 {
            let base = c * 3;
            assert!(dag.preds(FlowId(base)).is_empty());
            assert_eq!(dag.preds(FlowId(base + 1)), &[base]);
            assert_eq!(dag.preds(FlowId(base + 2)), &[base + 1]);
        }
    }

    #[test]
    fn hops_go_clockwise() {
        let dag = NBodies { tasks: 4, bytes: 1 }.generate(&TaskMapping::linear(4, 4));
        for f in dag.flows() {
            assert_eq!((f.src + 1) % 4, f.dst);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_task_rejected() {
        NBodies { tasks: 1, bytes: 1 }.generate(&TaskMapping::linear(1, 1));
    }
}
