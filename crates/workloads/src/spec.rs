//! A serialisable, dynamic workload description.
//!
//! [`WorkloadSpec`] is the configuration-facing union of every generator in
//! this crate; the facade crate's experiment configs and the CLI use it to
//! describe runs declaratively (JSON).

use crate::collectives::{AllReduce, Reduce};
use crate::grid::Grid3;
use crate::mapping::TaskMapping;
use crate::mapreduce::MapReduce;
use crate::nbodies::NBodies;
use crate::sweep::{Flood, NearNeighbors, Sweep3d};
use crate::unstructured::{Bisection, UnstructuredApp, UnstructuredHotRegion, UnstructuredMgnt};
use crate::Workload;
use exaflow_sim::FlowDag;
use serde::{Deserialize, Serialize};

/// Every workload of the paper, as tagged configuration data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "workload", rename_all = "snake_case")]
pub enum WorkloadSpec {
    /// Non-optimised N-to-1 reduce.
    Reduce { tasks: usize, bytes: u64 },
    /// Logarithmic (recursive-doubling) allreduce.
    AllReduce { tasks: usize, bytes: u64 },
    /// Distribute / shuffle / gather.
    MapReduce {
        tasks: usize,
        distribute_bytes: u64,
        shuffle_bytes: u64,
        gather_bytes: u64,
    },
    /// Single diagonal wavefront over a 3-D task grid.
    Sweep3d {
        gx: u32,
        gy: u32,
        gz: u32,
        bytes: u64,
    },
    /// Pipelined wavefronts from one corner.
    Flood {
        gx: u32,
        gy: u32,
        gz: u32,
        bytes: u64,
        waves: u32,
    },
    /// 6-point stencil exchange.
    NearNeighbors {
        gx: u32,
        gy: u32,
        gz: u32,
        bytes: u64,
        iterations: u32,
        periodic: bool,
    },
    /// Ring half-circumference chains.
    NBodies { tasks: usize, bytes: u64 },
    /// Uniform random fixed-size messages.
    UnstructuredApp {
        tasks: usize,
        flows_per_task: usize,
        bytes: u64,
        seed: u64,
    },
    /// Kandula-style management traffic mixture.
    UnstructuredMgnt {
        tasks: usize,
        flows_per_task: usize,
        seed: u64,
    },
    /// Random traffic with a hot destination region.
    UnstructuredHr {
        tasks: usize,
        flows_per_task: usize,
        bytes: u64,
        hot_fraction: f64,
        hot_probability: f64,
        seed: u64,
    },
    /// Random pairwise exchange, re-paired every round.
    Bisection {
        tasks: usize,
        rounds: u32,
        bytes: u64,
        seed: u64,
    },
}

impl WorkloadSpec {
    /// Check the spec's own parameters, before any topology is involved.
    ///
    /// Every constraint a generator would otherwise `assert!` on —
    /// minimum task counts, power-of-two AllReduce, positive grid
    /// dimensions, probability ranges — is reported here as an `Err`
    /// message instead, so config-driven callers can surface a typed
    /// error rather than a panic. [`generate`](Self::generate) still
    /// asserts as a second line of defence.
    pub fn validate(&self) -> Result<(), String> {
        fn grid(gx: u32, gy: u32, gz: u32) -> Result<(), String> {
            if gx == 0 || gy == 0 || gz == 0 {
                return Err(format!(
                    "grid dimensions must be positive, got {gx}x{gy}x{gz}"
                ));
            }
            Ok(())
        }
        fn at_least(tasks: usize, min: usize, who: &str) -> Result<(), String> {
            if tasks < min {
                return Err(format!("{who} needs at least {min} tasks, got {tasks}"));
            }
            Ok(())
        }
        fn fraction(value: f64, what: &str) -> Result<(), String> {
            if !(0.0..=1.0).contains(&value) {
                return Err(format!("{what} must be within [0, 1], got {value}"));
            }
            Ok(())
        }
        match *self {
            WorkloadSpec::Reduce { tasks, .. } => at_least(tasks, 1, "Reduce"),
            WorkloadSpec::AllReduce { tasks, .. } => {
                if !tasks.is_power_of_two() || tasks < 2 {
                    return Err(format!(
                        "AllReduce requires a power-of-two task count >= 2, got {tasks}"
                    ));
                }
                Ok(())
            }
            WorkloadSpec::MapReduce { tasks, .. } => at_least(tasks, 2, "MapReduce"),
            WorkloadSpec::Sweep3d { gx, gy, gz, .. } => grid(gx, gy, gz),
            WorkloadSpec::Flood {
                gx, gy, gz, waves, ..
            } => {
                grid(gx, gy, gz)?;
                if waves == 0 {
                    return Err("Flood needs at least one wave".into());
                }
                Ok(())
            }
            WorkloadSpec::NearNeighbors {
                gx,
                gy,
                gz,
                iterations,
                ..
            } => {
                grid(gx, gy, gz)?;
                if iterations == 0 {
                    return Err("NearNeighbors needs at least one iteration".into());
                }
                Ok(())
            }
            WorkloadSpec::NBodies { tasks, .. } => at_least(tasks, 2, "n-Bodies"),
            WorkloadSpec::UnstructuredApp { tasks, .. } => at_least(tasks, 2, "UnstructuredApp"),
            WorkloadSpec::UnstructuredMgnt { tasks, .. } => at_least(tasks, 2, "UnstructuredMgnt"),
            WorkloadSpec::UnstructuredHr {
                tasks,
                hot_fraction,
                hot_probability,
                ..
            } => {
                at_least(tasks, 2, "UnstructuredHR")?;
                fraction(hot_fraction, "hot_fraction")?;
                fraction(hot_probability, "hot_probability")
            }
            WorkloadSpec::Bisection { tasks, rounds, .. } => {
                if tasks < 2 || tasks % 2 != 0 {
                    return Err(format!("Bisection needs an even task count, got {tasks}"));
                }
                if rounds == 0 {
                    return Err("Bisection needs at least one round".into());
                }
                Ok(())
            }
        }
    }

    /// Instantiate the generator and produce the DAG.
    pub fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        self.as_workload().generate(mapping)
    }

    /// Paper name of the workload.
    pub fn name(&self) -> &'static str {
        self.as_workload().name()
    }

    /// Number of tasks the workload spans.
    pub fn num_tasks(&self) -> usize {
        self.as_workload().num_tasks()
    }

    /// Whether the paper groups this workload with the heavy set (Figure 4)
    /// rather than the light set (Figure 5).
    pub fn is_heavy(&self) -> bool {
        matches!(
            self,
            WorkloadSpec::AllReduce { .. }
                | WorkloadSpec::NearNeighbors { .. }
                | WorkloadSpec::NBodies { .. }
                | WorkloadSpec::UnstructuredApp { .. }
                | WorkloadSpec::UnstructuredHr { .. }
                | WorkloadSpec::Bisection { .. }
        )
    }

    fn as_workload(&self) -> Box<dyn Workload> {
        match *self {
            WorkloadSpec::Reduce { tasks, bytes } => Box::new(Reduce { tasks, bytes }),
            WorkloadSpec::AllReduce { tasks, bytes } => Box::new(AllReduce { tasks, bytes }),
            WorkloadSpec::MapReduce {
                tasks,
                distribute_bytes,
                shuffle_bytes,
                gather_bytes,
            } => Box::new(MapReduce {
                tasks,
                distribute_bytes,
                shuffle_bytes,
                gather_bytes,
            }),
            WorkloadSpec::Sweep3d { gx, gy, gz, bytes } => Box::new(Sweep3d {
                grid: Grid3::new(gx, gy, gz),
                bytes,
            }),
            WorkloadSpec::Flood {
                gx,
                gy,
                gz,
                bytes,
                waves,
            } => Box::new(Flood {
                grid: Grid3::new(gx, gy, gz),
                bytes,
                waves,
            }),
            WorkloadSpec::NearNeighbors {
                gx,
                gy,
                gz,
                bytes,
                iterations,
                periodic,
            } => Box::new(NearNeighbors {
                grid: Grid3::new(gx, gy, gz),
                bytes,
                iterations,
                periodic,
            }),
            WorkloadSpec::NBodies { tasks, bytes } => Box::new(NBodies { tasks, bytes }),
            WorkloadSpec::UnstructuredApp {
                tasks,
                flows_per_task,
                bytes,
                seed,
            } => Box::new(UnstructuredApp {
                tasks,
                flows_per_task,
                bytes,
                seed,
            }),
            WorkloadSpec::UnstructuredMgnt {
                tasks,
                flows_per_task,
                seed,
            } => Box::new(UnstructuredMgnt {
                tasks,
                flows_per_task,
                seed,
            }),
            WorkloadSpec::UnstructuredHr {
                tasks,
                flows_per_task,
                bytes,
                hot_fraction,
                hot_probability,
                seed,
            } => Box::new(UnstructuredHotRegion {
                tasks,
                flows_per_task,
                bytes,
                hot_fraction,
                hot_probability,
                seed,
            }),
            WorkloadSpec::Bisection {
                tasks,
                rounds,
                bytes,
                seed,
            } => Box::new(Bisection {
                tasks,
                rounds,
                bytes,
                seed,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs(tasks: usize) -> Vec<WorkloadSpec> {
        let g = Grid3::fitting(tasks);
        vec![
            WorkloadSpec::Reduce { tasks, bytes: 10 },
            WorkloadSpec::AllReduce { tasks, bytes: 10 },
            WorkloadSpec::MapReduce {
                tasks,
                distribute_bytes: 10,
                shuffle_bytes: 10,
                gather_bytes: 10,
            },
            WorkloadSpec::Sweep3d {
                gx: g.gx,
                gy: g.gy,
                gz: g.gz,
                bytes: 10,
            },
            WorkloadSpec::Flood {
                gx: g.gx,
                gy: g.gy,
                gz: g.gz,
                bytes: 10,
                waves: 2,
            },
            WorkloadSpec::NearNeighbors {
                gx: g.gx,
                gy: g.gy,
                gz: g.gz,
                bytes: 10,
                iterations: 2,
                periodic: true,
            },
            WorkloadSpec::NBodies { tasks, bytes: 10 },
            WorkloadSpec::UnstructuredApp {
                tasks,
                flows_per_task: 3,
                bytes: 10,
                seed: 1,
            },
            WorkloadSpec::UnstructuredMgnt {
                tasks,
                flows_per_task: 3,
                seed: 1,
            },
            WorkloadSpec::UnstructuredHr {
                tasks,
                flows_per_task: 3,
                bytes: 10,
                hot_fraction: 0.125,
                hot_probability: 0.5,
                seed: 1,
            },
            WorkloadSpec::Bisection {
                tasks,
                rounds: 2,
                bytes: 10,
                seed: 1,
            },
        ]
    }

    #[test]
    fn valid_specs_validate() {
        for spec in all_specs(8) {
            assert_eq!(spec.validate(), Ok(()), "{}", spec.name());
        }
    }

    #[test]
    fn invalid_specs_are_rejected_with_reasons() {
        let bad = [
            WorkloadSpec::AllReduce { tasks: 3, bytes: 1 },
            WorkloadSpec::AllReduce { tasks: 0, bytes: 1 },
            WorkloadSpec::Reduce { tasks: 0, bytes: 1 },
            WorkloadSpec::MapReduce {
                tasks: 1,
                distribute_bytes: 1,
                shuffle_bytes: 1,
                gather_bytes: 1,
            },
            WorkloadSpec::Sweep3d {
                gx: 0,
                gy: 2,
                gz: 2,
                bytes: 1,
            },
            WorkloadSpec::Flood {
                gx: 2,
                gy: 2,
                gz: 2,
                bytes: 1,
                waves: 0,
            },
            WorkloadSpec::NearNeighbors {
                gx: 2,
                gy: 2,
                gz: 2,
                bytes: 1,
                iterations: 0,
                periodic: false,
            },
            WorkloadSpec::NBodies { tasks: 1, bytes: 1 },
            WorkloadSpec::UnstructuredApp {
                tasks: 1,
                flows_per_task: 1,
                bytes: 1,
                seed: 0,
            },
            WorkloadSpec::UnstructuredHr {
                tasks: 4,
                flows_per_task: 1,
                bytes: 1,
                hot_fraction: 1.5,
                hot_probability: 0.5,
                seed: 0,
            },
            WorkloadSpec::UnstructuredHr {
                tasks: 4,
                flows_per_task: 1,
                bytes: 1,
                hot_fraction: 0.5,
                hot_probability: f64::NAN,
                seed: 0,
            },
            WorkloadSpec::Bisection {
                tasks: 5,
                rounds: 1,
                bytes: 1,
                seed: 0,
            },
            WorkloadSpec::Bisection {
                tasks: 4,
                rounds: 0,
                bytes: 1,
                seed: 0,
            },
        ];
        for spec in bad {
            let err = match spec.validate() {
                Err(e) => e,
                Ok(()) => panic!("{spec:?} should not validate"),
            };
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn all_eleven_generate() {
        let mapping = TaskMapping::linear(16, 16);
        let specs = all_specs(16);
        assert_eq!(specs.len(), 11, "the paper studies 11 workloads");
        for spec in &specs {
            let dag = spec.generate(&mapping);
            assert!(!dag.is_empty(), "{} generated nothing", spec.name());
        }
    }

    #[test]
    fn heavy_light_split_matches_figures() {
        let heavy: Vec<&str> = all_specs(16)
            .iter()
            .filter(|s| s.is_heavy())
            .map(|s| s.name())
            .collect();
        assert_eq!(
            heavy,
            vec![
                "AllReduce",
                "NearNeighbors",
                "n-Bodies",
                "UnstructuredApp",
                "UnstructuredHR",
                "Bisection"
            ]
        );
    }

    #[test]
    fn serde_roundtrip() {
        for spec in all_specs(16) {
            let json = serde_json::to_string(&spec).unwrap();
            let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn json_is_tagged() {
        let spec = WorkloadSpec::Reduce { tasks: 4, bytes: 1 };
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"workload\":\"reduce\""), "{json}");
    }
}
