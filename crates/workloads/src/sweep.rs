//! Grid-structured workloads: Sweep3D wavefronts, Flood, and the
//! Near-Neighbours stencil.

use crate::grid::Grid3;
use crate::mapping::TaskMapping;
use crate::Workload;
use exaflow_sim::{FlowDag, FlowDagBuilder, FlowId};

/// Sweep3D: a single wavefront of the deterministic particle-transport
/// kernel. The task grid is traversed diagonally from corner `(0,0,0)`;
/// each task forwards to its `+X`, `+Y`, `+Z` neighbours once all of its
/// inbound data has arrived.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Sweep3d {
    /// Virtual task grid.
    pub grid: Grid3,
    /// Bytes forwarded along each grid edge.
    pub bytes: u64,
}

impl Workload for Sweep3d {
    fn name(&self) -> &'static str {
        "Sweep3D"
    }

    fn num_tasks(&self) -> usize {
        self.grid.len()
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        assert!(mapping.len() >= self.grid.len());
        let mut b = FlowDagBuilder::with_capacity(3 * self.grid.len(), 9 * self.grid.len());
        emit_wave(
            &mut b,
            &self.grid,
            mapping,
            self.bytes,
            &mut vec![Vec::new(); self.grid.len()],
            None,
        );
        b.build()
    }
}

/// Flood: like Sweep3D but the corner task emits `waves` successive
/// wavefronts that pipeline through the grid, exerting much heavier
/// pressure (paper §4.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Flood {
    /// Virtual task grid.
    pub grid: Grid3,
    /// Bytes forwarded along each grid edge per wave.
    pub bytes: u64,
    /// Number of pipelined wavefronts.
    pub waves: u32,
}

impl Workload for Flood {
    fn name(&self) -> &'static str {
        "Flood"
    }

    fn num_tasks(&self) -> usize {
        self.grid.len()
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        assert!(self.waves >= 1, "Flood needs at least one wave");
        assert!(mapping.len() >= self.grid.len());
        let n = self.grid.len();
        let mut b = FlowDagBuilder::with_capacity(
            3 * n * self.waves as usize,
            12 * n * self.waves as usize,
        );
        // For pipelining, a task's wave-w sends additionally depend on its
        // wave-(w-1) sends (it must finish forwarding the previous wave).
        let mut prev_out: Option<Vec<Vec<FlowId>>> = None;
        for _ in 0..self.waves {
            let mut inflows = vec![Vec::new(); n];
            let out = emit_wave(
                &mut b,
                &self.grid,
                mapping,
                self.bytes,
                &mut inflows,
                prev_out.as_deref(),
            );
            prev_out = Some(out);
        }
        b.build()
    }
}

/// Emit one wavefront. `inflows[t]` accumulates flows arriving at task `t`
/// within this wave; a task's sends depend on all of them, plus (for Flood)
/// the same task's sends of the previous wave (`prev_out`).
///
/// Returns the per-task list of this wave's outbound flows.
fn emit_wave(
    b: &mut FlowDagBuilder,
    grid: &Grid3,
    mapping: &TaskMapping,
    bytes: u64,
    inflows: &mut [Vec<FlowId>],
    prev_out: Option<&[Vec<FlowId>]>,
) -> Vec<Vec<FlowId>> {
    let mut out = vec![Vec::with_capacity(3); grid.len()];
    // Tasks in id order: all predecessors (lower coordinates) come first.
    for (x, y, z) in grid.iter() {
        let t = grid.id(x, y, z);
        let mut deps: Vec<FlowId> = inflows[t].clone();
        if let Some(prev) = prev_out {
            deps.extend_from_slice(&prev[t]);
        }
        let src = mapping.node_of(t);
        let mut neighbours = [None; 3];
        if x + 1 < grid.gx {
            neighbours[0] = Some(grid.id(x + 1, y, z));
        }
        if y + 1 < grid.gy {
            neighbours[1] = Some(grid.id(x, y + 1, z));
        }
        if z + 1 < grid.gz {
            neighbours[2] = Some(grid.id(x, y, z + 1));
        }
        for nb in neighbours.into_iter().flatten() {
            let f = b.add_flow(src, mapping.node_of(nb), bytes, &deps);
            inflows[nb].push(f);
            out[t].push(f);
        }
    }
    out
}

/// Near-Neighbours: the 6-point stencil exchange of LAMMPS/RegCM-style
/// codes. Every task exchanges with its grid neighbours simultaneously,
/// for `iterations` rounds; a task's round-r exchanges wait for all of its
/// round-(r−1) sends and receives.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NearNeighbors {
    /// Virtual task grid.
    pub grid: Grid3,
    /// Bytes per neighbour exchange.
    pub bytes: u64,
    /// Number of stencil iterations.
    pub iterations: u32,
    /// Periodic boundaries (torus-like virtual grid) or open boundaries.
    pub periodic: bool,
}

impl NearNeighbors {
    fn neighbours(&self, x: u32, y: u32, z: u32) -> Vec<usize> {
        let g = &self.grid;
        let mut out = Vec::with_capacity(6);
        let dims = [g.gx, g.gy, g.gz];
        let pos = [x, y, z];
        for d in 0..3 {
            for dir in [-1i64, 1] {
                let size = dims[d] as i64;
                if size == 1 {
                    continue;
                }
                let c = pos[d] as i64 + dir;
                let c = if self.periodic {
                    (c + size) % size
                } else if (0..size).contains(&c) {
                    c
                } else {
                    continue;
                };
                let mut q = pos;
                q[d] = c as u32;
                let id = g.id(q[0], q[1], q[2]);
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        out
    }
}

impl Workload for NearNeighbors {
    fn name(&self) -> &'static str {
        "NearNeighbors"
    }

    fn num_tasks(&self) -> usize {
        self.grid.len()
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        assert!(self.iterations >= 1);
        assert!(mapping.len() >= self.grid.len());
        let n = self.grid.len();
        let mut b = FlowDagBuilder::with_capacity(
            6 * n * self.iterations as usize,
            24 * n * self.iterations as usize,
        );
        // prev[t]: flows of the previous round touching task t.
        let mut prev: Vec<Vec<FlowId>> = vec![Vec::new(); n];
        for _ in 0..self.iterations {
            let mut cur_send: Vec<Vec<FlowId>> = vec![Vec::with_capacity(6); n];
            let mut cur_recv: Vec<Vec<FlowId>> = vec![Vec::with_capacity(6); n];
            for (x, y, z) in self.grid.iter() {
                let t = self.grid.id(x, y, z);
                for nb in self.neighbours(x, y, z) {
                    let f = b.add_flow(
                        mapping.node_of(t),
                        mapping.node_of(nb),
                        self.bytes,
                        &prev[t],
                    );
                    cur_send[t].push(f);
                    cur_recv[nb].push(f);
                }
            }
            for t in 0..n {
                prev[t] = cur_send[t]
                    .iter()
                    .chain(cur_recv[t].iter())
                    .copied()
                    .collect();
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: usize) -> TaskMapping {
        TaskMapping::linear(n, n)
    }

    #[test]
    fn sweep_flow_count() {
        let g = Grid3::new(3, 3, 3);
        let dag = Sweep3d { grid: g, bytes: 10 }.generate(&map(27));
        // Edges: 3 dims * (gx-1)*gy*gz style: 2*3*3 per dim * 3 dims = 54.
        assert_eq!(dag.len(), 54);
    }

    #[test]
    fn sweep_corner_has_no_deps_interior_does() {
        let g = Grid3::new(3, 3, 3);
        let dag = Sweep3d { grid: g, bytes: 10 }.generate(&map(27));
        // First three flows leave the (0,0,0) corner with no deps.
        for i in 0..3 {
            assert!(dag.preds(FlowId(i)).is_empty());
        }
        // Flows out of higher tasks have deps.
        let with_deps = (0..dag.len())
            .filter(|&i| !dag.preds(FlowId(i as u32)).is_empty())
            .count();
        assert!(with_deps > 40);
    }

    #[test]
    fn flood_scales_with_waves() {
        let g = Grid3::new(3, 3, 1);
        let one = Flood {
            grid: g,
            bytes: 1,
            waves: 1,
        }
        .generate(&map(9));
        let four = Flood {
            grid: g,
            bytes: 1,
            waves: 4,
        }
        .generate(&map(9));
        assert_eq!(four.len(), 4 * one.len());
        // Pipelining: wave 2's corner flows depend on wave 1's corner flows.
        let per_wave = one.len();
        let w2_first = per_wave; // first flow of wave 2
        assert!(!four.preds(FlowId(w2_first as u32)).is_empty());
    }

    #[test]
    fn stencil_flow_count_periodic() {
        let g = Grid3::new(4, 4, 4);
        let dag = NearNeighbors {
            grid: g,
            bytes: 1,
            iterations: 2,
            periodic: true,
        }
        .generate(&map(64));
        // Periodic: every task sends 6 flows per iteration.
        assert_eq!(dag.len(), 64 * 6 * 2);
    }

    #[test]
    fn stencil_open_boundaries_fewer_flows() {
        let g = Grid3::new(4, 4, 4);
        let open = NearNeighbors {
            grid: g,
            bytes: 1,
            iterations: 1,
            periodic: false,
        }
        .generate(&map(64));
        assert!(open.len() < 64 * 6);
        // 3 dims * 2*(4-1)*16 directed edges... : per dim (4-1)*16 pairs *2
        assert_eq!(open.len(), 3 * 2 * 3 * 16);
    }

    #[test]
    fn stencil_size2_dims_dont_duplicate() {
        // With periodic boundaries and a size-2 dimension, -1 and +1 reach
        // the same neighbour; it must be exchanged once, not twice.
        let g = Grid3::new(2, 1, 1);
        let dag = NearNeighbors {
            grid: g,
            bytes: 1,
            iterations: 1,
            periodic: true,
        }
        .generate(&map(2));
        assert_eq!(dag.len(), 2);
    }

    #[test]
    fn stencil_rounds_serialised() {
        let g = Grid3::new(3, 1, 1);
        let dag = NearNeighbors {
            grid: g,
            bytes: 1,
            iterations: 2,
            periodic: false,
        }
        .generate(&map(3));
        // Second-iteration flows depend on first-iteration ones.
        let half = dag.len() / 2;
        for i in half..dag.len() {
            assert!(!dag.preds(FlowId(i as u32)).is_empty());
        }
    }
}
