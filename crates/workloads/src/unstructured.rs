//! Unstructured traffic: random application traffic, datacentre management
//! traffic, hot-region traffic, and random pairwise bisection exchange.

use crate::mapping::TaskMapping;
use crate::Workload;
use exaflow_sim::{FlowDag, FlowDagBuilder, FlowId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// UnstructuredApp: fixed-length messages between uniformly random task
/// pairs, modelling an unstructured application whose data is partitioned
/// evenly across tasks. Each task's sends are serialised (one NIC).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct UnstructuredApp {
    /// Number of tasks.
    pub tasks: usize,
    /// Messages sent per task.
    pub flows_per_task: usize,
    /// Fixed message size, bytes.
    pub bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Workload for UnstructuredApp {
    fn name(&self) -> &'static str {
        "UnstructuredApp"
    }

    fn num_tasks(&self) -> usize {
        self.tasks
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        random_pairs(
            self.tasks,
            self.flows_per_task,
            mapping,
            self.seed,
            |_rng| self.bytes,
            uniform_other,
        )
    }
}

/// UnstructuredMgnt: the traffic produced by management software in large
/// datacentres, following the size characterisation of Kandula et al.
/// (IMC'09): the vast majority of flows are mice of a few KB, with a heavy
/// elephant tail.
///
/// **Substitution note (DESIGN.md §5):** the original trace is private; we
/// reproduce the published summary statistics with a three-component
/// log-uniform mixture — 80% mice (100 B – 10 KB), 15% medium (10 KB –
/// 1 MB), 5% elephants (1 MB – 50 MB).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct UnstructuredMgnt {
    /// Number of tasks.
    pub tasks: usize,
    /// Messages sent per task.
    pub flows_per_task: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Draw a flow size from the Kandula-style mixture.
pub fn mgnt_flow_bytes(rng: &mut impl Rng) -> u64 {
    let class: f64 = rng.random();
    let (lo, hi): (f64, f64) = if class < 0.80 {
        (100.0, 10e3)
    } else if class < 0.95 {
        (10e3, 1e6)
    } else {
        (1e6, 50e6)
    };
    // Log-uniform within the class.
    let u: f64 = rng.random();
    (lo * (hi / lo).powf(u)) as u64
}

impl Workload for UnstructuredMgnt {
    fn name(&self) -> &'static str {
        "UnstructuredMgnt"
    }

    fn num_tasks(&self) -> usize {
        self.tasks
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        random_pairs(
            self.tasks,
            self.flows_per_task,
            mapping,
            self.seed,
            mgnt_flow_bytes,
            uniform_other,
        )
    }
}

/// UnstructuredHR: like [`UnstructuredApp`] but a subset of *hot* tasks is
/// disproportionately likely to be targeted.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct UnstructuredHotRegion {
    /// Number of tasks.
    pub tasks: usize,
    /// Messages sent per task.
    pub flows_per_task: usize,
    /// Fixed message size, bytes.
    pub bytes: u64,
    /// Fraction of tasks that are hot (the paper does not specify; we use
    /// 1/8 by default in the presets).
    pub hot_fraction: f64,
    /// Probability that a message targets the hot set.
    pub hot_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Workload for UnstructuredHotRegion {
    fn name(&self) -> &'static str {
        "UnstructuredHR"
    }

    fn num_tasks(&self) -> usize {
        self.tasks
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        assert!((0.0..=1.0).contains(&self.hot_fraction));
        assert!((0.0..=1.0).contains(&self.hot_probability));
        let hot = ((self.tasks as f64 * self.hot_fraction).round() as usize).max(1);
        let hot_probability = self.hot_probability;
        random_pairs(
            self.tasks,
            self.flows_per_task,
            mapping,
            self.seed,
            |_rng| self.bytes,
            move |rng, src, n| {
                // Hot tasks are 0..hot (the mapping decides where they sit).
                loop {
                    let dst = if rng.random::<f64>() < hot_probability {
                        rng.random_range(0..hot)
                    } else {
                        rng.random_range(0..n)
                    };
                    if dst != src {
                        return dst;
                    }
                }
            },
        )
    }
}

/// Bisection: tasks perform pairwise exchanges, re-pairing under a fresh
/// random perfect matching every round. This workload stresses the
/// network's bisection bandwidth (hence the name).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Bisection {
    /// Number of tasks; must be even.
    pub tasks: usize,
    /// Number of re-pairing rounds.
    pub rounds: u32,
    /// Bytes exchanged in each direction of a pair.
    pub bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Workload for Bisection {
    fn name(&self) -> &'static str {
        "Bisection"
    }

    fn num_tasks(&self) -> usize {
        self.tasks
    }

    fn generate(&self, mapping: &TaskMapping) -> FlowDag {
        assert!(
            self.tasks >= 2 && self.tasks.is_multiple_of(2),
            "Bisection needs an even task count"
        );
        assert!(self.rounds >= 1);
        assert!(mapping.len() >= self.tasks);
        let n = self.tasks;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut b =
            FlowDagBuilder::with_capacity(n * self.rounds as usize, 2 * n * self.rounds as usize);
        // prev[t]: the two flows (send+recv) task t took part in last round.
        let mut prev: Vec<Vec<FlowId>> = vec![Vec::new(); n];
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.rounds {
            order.shuffle(&mut rng);
            let mut cur: Vec<Vec<FlowId>> = vec![Vec::with_capacity(2); n];
            for pair in order.chunks_exact(2) {
                let (a, c) = (pair[0], pair[1]);
                let deps_a: Vec<FlowId> = prev[a].iter().chain(prev[c].iter()).copied().collect();
                let f1 = b.add_flow(mapping.node_of(a), mapping.node_of(c), self.bytes, &deps_a);
                let f2 = b.add_flow(mapping.node_of(c), mapping.node_of(a), self.bytes, &deps_a);
                cur[a].extend([f1, f2]);
                cur[c].extend([f1, f2]);
            }
            prev = cur;
        }
        b.build()
    }
}

/// Common machinery: `tasks` senders each emit `flows_per_task` messages to
/// destinations drawn by `pick_dst`, with sizes drawn by `size_of`, chained
/// per sender.
fn random_pairs(
    tasks: usize,
    flows_per_task: usize,
    mapping: &TaskMapping,
    seed: u64,
    mut size_of: impl FnMut(&mut StdRng) -> u64,
    mut pick_dst: impl FnMut(&mut StdRng, usize, usize) -> usize,
) -> FlowDag {
    assert!(tasks >= 2, "need at least two tasks");
    assert!(mapping.len() >= tasks);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = FlowDagBuilder::with_capacity(tasks * flows_per_task, tasks * flows_per_task);
    let mut last: Vec<Option<FlowId>> = vec![None; tasks];
    // Round-robin the senders so flow ids interleave fairly.
    for _ in 0..flows_per_task {
        for (src, slot) in last.iter_mut().enumerate() {
            let dst = pick_dst(&mut rng, src, tasks);
            debug_assert_ne!(dst, src);
            let bytes = size_of(&mut rng);
            let deps: Vec<FlowId> = (*slot).into_iter().collect();
            *slot = Some(b.add_flow(mapping.node_of(src), mapping.node_of(dst), bytes, &deps));
        }
    }
    b.build()
}

fn uniform_other(rng: &mut StdRng, src: usize, n: usize) -> usize {
    let dst = rng.random_range(0..n - 1);
    if dst >= src {
        dst + 1
    } else {
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: usize) -> TaskMapping {
        TaskMapping::linear(n, n)
    }

    #[test]
    fn app_counts_and_no_self_traffic() {
        let w = UnstructuredApp {
            tasks: 16,
            flows_per_task: 10,
            bytes: 500,
            seed: 3,
        };
        let dag = w.generate(&map(16));
        assert_eq!(dag.len(), 160);
        for f in dag.flows() {
            assert_ne!(f.src, f.dst);
            assert_eq!(f.bytes, 500);
        }
    }

    #[test]
    fn app_deterministic_in_seed() {
        let w = |seed| UnstructuredApp {
            tasks: 8,
            flows_per_task: 4,
            bytes: 1,
            seed,
        };
        let a = w(1).generate(&map(8));
        let b = w(1).generate(&map(8));
        let c = w(2).generate(&map(8));
        assert_eq!(a.flows(), b.flows());
        assert_ne!(a.flows(), c.flows());
    }

    #[test]
    fn mgnt_sizes_follow_mixture() {
        let mut rng = StdRng::seed_from_u64(42);
        let sizes: Vec<u64> = (0..20_000).map(|_| mgnt_flow_bytes(&mut rng)).collect();
        let mice = sizes.iter().filter(|&&s| s <= 10_000).count() as f64 / 20_000.0;
        let elephants = sizes.iter().filter(|&&s| s >= 1_000_000).count() as f64 / 20_000.0;
        assert!((mice - 0.8).abs() < 0.02, "mice fraction {mice}");
        assert!(
            (elephants - 0.05).abs() < 0.01,
            "elephant fraction {elephants}"
        );
        assert!(sizes.iter().all(|&s| (100..=50_000_000).contains(&s)));
    }

    #[test]
    fn hot_region_is_hot() {
        let w = UnstructuredHotRegion {
            tasks: 64,
            flows_per_task: 50,
            bytes: 1,
            hot_fraction: 0.125,
            hot_probability: 0.5,
            seed: 9,
        };
        let dag = w.generate(&map(64));
        let hot_targets = dag.flows().iter().filter(|f| f.dst < 8).count() as f64;
        let frac = hot_targets / dag.len() as f64;
        // ~0.5 + 0.5*(8/64) ≈ 0.56 expected.
        assert!(frac > 0.4, "hot fraction {frac}");
        assert!(frac < 0.7, "hot fraction {frac}");
    }

    #[test]
    fn bisection_rounds_pair_everyone() {
        let w = Bisection {
            tasks: 8,
            rounds: 3,
            bytes: 7,
            seed: 5,
        };
        let dag = w.generate(&map(8));
        assert_eq!(dag.len(), 8 * 3);
        // Every round: each task appears in exactly one pair (2 flows).
        for r in 0..3 {
            let flows = &dag.flows()[r * 8..(r + 1) * 8];
            let mut touched = std::collections::HashMap::new();
            for f in flows {
                *touched.entry(f.src).or_insert(0) += 1;
                *touched.entry(f.dst).or_insert(0) += 1;
            }
            assert_eq!(touched.len(), 8);
            assert!(touched.values().all(|&c| c == 2));
        }
    }

    #[test]
    fn bisection_rounds_depend_on_previous() {
        let w = Bisection {
            tasks: 4,
            rounds: 2,
            bytes: 1,
            seed: 1,
        };
        let dag = w.generate(&map(4));
        for i in 4..8 {
            assert!(!dag.preds(FlowId(i as u32)).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "even task count")]
    fn bisection_odd_rejected() {
        Bisection {
            tasks: 5,
            rounds: 1,
            bytes: 1,
            seed: 0,
        }
        .generate(&map(5));
    }

    #[test]
    fn uniform_other_never_self() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let d = uniform_other(&mut rng, 3, 10);
            assert_ne!(d, 3);
            assert!(d < 10);
        }
    }

    #[test]
    fn sender_chains_serialised() {
        let w = UnstructuredApp {
            tasks: 4,
            flows_per_task: 3,
            bytes: 1,
            seed: 0,
        };
        let dag = w.generate(&map(4));
        // Flows are emitted round-robin: flow (round*4 + src). Each flow
        // after round 0 depends on the same sender's previous flow.
        for round in 1..3u32 {
            for src in 0..4u32 {
                let id = FlowId(round * 4 + src);
                assert_eq!(dag.preds(id), &[(round - 1) * 4 + src]);
            }
        }
    }
}
