//! Property tests over the workload generators: all DAGs are well-formed,
//! reference only mapped endpoints, and are deterministic in their seeds.

use exaflow_sim::FlowId;
use exaflow_workloads::{TaskMapping, WorkloadSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    let tasks = 2usize..40;
    prop_oneof![
        tasks.clone().prop_map(|t| WorkloadSpec::Reduce {
            tasks: t,
            bytes: 100
        }),
        (1u32..6).prop_map(|p| WorkloadSpec::AllReduce {
            tasks: 1 << p,
            bytes: 100
        }),
        tasks.clone().prop_map(|t| WorkloadSpec::MapReduce {
            tasks: t,
            distribute_bytes: 10,
            shuffle_bytes: 10,
            gather_bytes: 10,
        }),
        (1u32..5, 1u32..5, 1u32..5).prop_map(|(x, y, z)| WorkloadSpec::Sweep3d {
            gx: x,
            gy: y,
            gz: z,
            bytes: 10,
        }),
        (1u32..4, 1u32..4, 1u32..4, 1u32..4).prop_map(|(x, y, z, w)| WorkloadSpec::Flood {
            gx: x,
            gy: y,
            gz: z,
            bytes: 10,
            waves: w,
        }),
        (1u32..5, 1u32..5, 1u32..5, 1u32..3, any::<bool>()).prop_map(|(x, y, z, it, p)| {
            WorkloadSpec::NearNeighbors {
                gx: x,
                gy: y,
                gz: z,
                bytes: 10,
                iterations: it,
                periodic: p,
            }
        }),
        tasks.clone().prop_map(|t| WorkloadSpec::NBodies {
            tasks: t.max(2),
            bytes: 10
        }),
        (tasks.clone(), 1usize..5, any::<u64>()).prop_map(|(t, f, s)| {
            WorkloadSpec::UnstructuredApp {
                tasks: t,
                flows_per_task: f,
                bytes: 10,
                seed: s,
            }
        }),
        (tasks.clone(), 1usize..5, any::<u64>()).prop_map(|(t, f, s)| {
            WorkloadSpec::UnstructuredMgnt {
                tasks: t,
                flows_per_task: f,
                seed: s,
            }
        }),
        (tasks.clone(), 1usize..5, any::<u64>()).prop_map(|(t, f, s)| {
            WorkloadSpec::UnstructuredHr {
                tasks: t,
                flows_per_task: f,
                bytes: 10,
                hot_fraction: 0.25,
                hot_probability: 0.5,
                seed: s,
            }
        }),
        (1usize..20, 1u32..4, any::<u64>()).prop_map(|(t, r, s)| WorkloadSpec::Bisection {
            tasks: 2 * t,
            rounds: r,
            bytes: 10,
            seed: s,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dags_are_well_formed(spec in arb_spec(), extra in 0usize..10, strided in any::<bool>()) {
        let tasks = spec.num_tasks();
        let endpoints = tasks + extra;
        let mapping = if strided && 2 * tasks <= endpoints {
            TaskMapping::strided(tasks, endpoints, 2)
        } else {
            TaskMapping::linear(tasks, endpoints)
        };
        let dag = spec.generate(&mapping);
        let allowed: std::collections::HashSet<u32> =
            mapping.table().iter().copied().collect();
        for (i, f) in dag.flows().iter().enumerate() {
            prop_assert!(allowed.contains(&f.src), "{}: flow {i} src", spec.name());
            prop_assert!(allowed.contains(&f.dst), "{}: flow {i} dst", spec.name());
            // Dependencies reference earlier flows only (acyclicity).
            for &p in dag.preds(FlowId(i as u32)) {
                prop_assert!((p as usize) < i);
            }
        }
    }

    #[test]
    fn generators_deterministic(spec in arb_spec()) {
        let mapping = TaskMapping::linear(spec.num_tasks(), spec.num_tasks());
        let a = spec.generate(&mapping);
        let b = spec.generate(&mapping);
        prop_assert_eq!(a.flows(), b.flows());
        prop_assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn serde_roundtrip(spec in arb_spec()) {
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(spec, back);
    }
}
